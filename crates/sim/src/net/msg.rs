//! The daemon wire vocabulary: every frame payload is one [`NetMsg`] in the
//! canonical `primitives::wire` encoding.
//!
//! Protocol traffic ([`NetMsg::Setup`], [`NetMsg::Round`]) carries the same
//! opaque payload bytes the in-process engine moves between nodes, tagged
//! with `(round, seq)` so a receiver can reproduce the engine's inbox order
//! exactly: deliveries sorted by (round, sender, seq) match the simulator's
//! "senders in `NodeId` order, each sender's outbox in send order" merge.
//! Marks are the soft round barrier; events and reports stream each node's
//! output log and final state to the collector.

use crate::message::{NodeId, OutputEvent};
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use proauth_telemetry::MetricsDelta;

/// One frame's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// First frame on every connection: who is dialing, and a digest of the
    /// scenario configuration so mismatched invocations fail fast instead of
    /// hanging on divergent schedules.
    Hello {
        /// The dialing node (0 = the chaos proxy, collector-bound dials use
        /// their node id).
        node: u32,
        /// Scenario digest; peers reject a Hello whose `run_id` differs.
        run_id: u64,
    },
    /// A setup-phase protocol message (faithful delivery by model).
    Setup {
        /// Setup round it was sent in.
        setup_round: u64,
        /// Index in the sender's expanded outbox this round (inbox ordering).
        seq: u32,
        /// Claimed sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// Setup barrier: the sender has transmitted all its `setup_round`
    /// messages (TCP/Unix streams are FIFO, so the mark arriving implies the
    /// messages arrived).
    SetupMark {
        /// Completed setup round.
        setup_round: u64,
        /// Sender.
        from: NodeId,
    },
    /// A post-setup protocol message.
    Round {
        /// Round it was sent in (delivered the following round, or later if
        /// the adversary delays it).
        round: u64,
        /// Index in the sender's expanded outbox this round.
        seq: u32,
        /// Claimed sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// Soft round barrier: the sender has transmitted all its round-`round`
    /// messages. Receivers advance when every live peer's mark has arrived
    /// or the wall-clock deadline expires, whichever is first.
    RoundMark {
        /// Completed round.
        round: u64,
        /// Sender.
        from: NodeId,
    },
    /// One output-log event, streamed node → collector as it is emitted.
    Event {
        /// Emitting node.
        node: NodeId,
        /// Round the event was logged at.
        round: u64,
        /// The event.
        event: OutputEvent,
    },
    /// A node's end-of-run report to the collector.
    Report(NodeReport),
    /// Clean-shutdown marker; the sender closes after this.
    Bye {
        /// Departing node.
        node: u32,
    },
    /// A node's registry increments since its previous `Metrics` frame,
    /// streamed node → collector once per round. Applying a node's deltas in
    /// order reconstructs its registry exactly (see `telemetry::delta`).
    Metrics {
        /// Reporting node.
        node: u32,
        /// Round the delta covers (the node's just-completed round).
        round: u64,
        /// The increments.
        delta: MetricsDelta,
    },
    /// A node's per-round health beacon (liveness + pacing view).
    Beacon(HealthBeacon),
    /// A security- or liveness-relevant event promoted out of the metrics
    /// stream, with severity. Node-originated (forgery rejects, break-in
    /// observations) or collector-originated (Def-7 budget accounting).
    Alarm(Alarm),
    /// One round's flight-recorder trace events (JSONL bytes) from a node,
    /// merged by the collector in `NodeId` order into the cluster trace.
    Trace {
        /// Emitting node.
        node: u32,
        /// Round the events belong to.
        round: u64,
        /// Concatenated JSONL event lines, exactly as a local sink would
        /// have received them.
        events: Vec<u8>,
    },
    /// Re-handshake from a restarted node: sent right after `Hello` on every
    /// connection of its new incarnation. Carries the durable round
    /// watermark so peers can replay the barrier marks the rejoiner missed
    /// while it was down and resynchronize it at the next round barrier.
    Rejoin {
        /// The rejoining node.
        node: u32,
        /// Scenario digest — a rejoin into a different run is rejected just
        /// like a mismatched `Hello`.
        run_id: u64,
        /// Rounds the node durably completed before the crash (it resumes
        /// executing at round `watermark`).
        watermark: u64,
    },
    /// Reply to a `Rejoin`: the responder's current round, giving the
    /// rejoiner a live-cluster position so it can pace its catch-up instead
    /// of waiting out full round deadlines for rounds the cluster already
    /// left behind.
    RejoinAck {
        /// Responding node (0 = the chaos proxy / collector).
        node: u32,
        /// The responder's current round.
        round: u64,
    },
}

/// Alarm severity, ordered worst-last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Noteworthy but expected under the configured adversary.
    Info = 0,
    /// Degradation that consumes Definition-7 budget.
    Warning = 1,
    /// A guarantee is (or is about to be) void: budget exceeded, forgery
    /// accepted, refresh liveness lost.
    Critical = 2,
}

impl Severity {
    /// Stable lowercase label (exposition + scoreboard).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl Encode for Severity {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for Severity {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Severity::Info),
            1 => Ok(Severity::Warning),
            2 => Ok(Severity::Critical),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// One entry in the typed alarm stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Originating node (0 = the collector itself, e.g. budget accounting).
    pub node: u32,
    /// Round the condition was observed at.
    pub round: u64,
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable kind, e.g. `forgery_reject`, `break_in`,
    /// `impaired`, `recovered`, `mark_timeout`, `budget_exceeded`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl Encode for Alarm {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.node);
        w.put_u64(self.round);
        self.severity.encode(w);
        self.kind.encode(w);
        self.detail.encode(w);
    }
}

impl Decode for Alarm {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Alarm {
            node: r.get_u32()?,
            round: r.get_u64()?,
            severity: Severity::decode(r)?,
            kind: String::decode(r)?,
            detail: String::decode(r)?,
        })
    }
}

/// A node's per-round liveness report: where it is in the schedule, how far
/// behind wall-clock pacing it is, and the transport pressure it sees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthBeacon {
    /// Reporting node.
    pub node: u32,
    /// The round the node just completed.
    pub round: u64,
    /// The pacing interval the node is currently using (adaptive or fixed).
    pub round_ms: u64,
    /// Wall-clock lag behind the nominal `round_ms` schedule, in ms
    /// (0 when running at or ahead of schedule).
    pub lag_ms: u64,
    /// Messages buffered for future rounds at beacon time.
    pub inbox_depth: u64,
    /// Cumulative frames that arrived after their delivery round.
    pub late_frames: u64,
    /// Cumulative rounds advanced on deadline expiry.
    pub mark_timeouts: u64,
    /// Peer connections currently open.
    pub peers_live: u32,
    /// Protocol envelopes sent in the completed round.
    pub sent_round: u64,
    /// Alerts raised in the completed round.
    pub alerts_round: u64,
}

impl Encode for HealthBeacon {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.node);
        w.put_u64(self.round);
        w.put_u64(self.round_ms);
        w.put_u64(self.lag_ms);
        w.put_u64(self.inbox_depth);
        w.put_u64(self.late_frames);
        w.put_u64(self.mark_timeouts);
        w.put_u32(self.peers_live);
        w.put_u64(self.sent_round);
        w.put_u64(self.alerts_round);
    }
}

impl Decode for HealthBeacon {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HealthBeacon {
            node: r.get_u32()?,
            round: r.get_u64()?,
            round_ms: r.get_u64()?,
            lag_ms: r.get_u64()?,
            inbox_depth: r.get_u64()?,
            late_frames: r.get_u64()?,
            mark_timeouts: r.get_u64()?,
            peers_live: r.get_u32()?,
            sent_round: r.get_u64()?,
            alerts_round: r.get_u64()?,
        })
    }
}

/// A node's final accounting, shipped to the collector in one frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: u32,
    /// Rounds executed.
    pub rounds: u64,
    /// Protocol envelopes sent.
    pub sent: u64,
    /// Protocol envelopes received.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Alerts emitted.
    pub alerts: u64,
    /// Frames that arrived after their nominal delivery round (adversary
    /// delay, or pacing pressure) and were delivered in a later round.
    pub late_frames: u64,
    /// Rounds advanced on deadline expiry instead of a complete mark set.
    pub mark_timeouts: u64,
    /// Frames observed more than once (same `(round, from, seq)` key).
    pub dup_frames: u64,
    /// Frames whose `seq` regressed within a `(round, from)` stream —
    /// evidence of reordering between sender and receiver.
    pub reorder_frames: u64,
    /// The node's ROM as frozen at the end of setup (key-ordered).
    pub rom_keys: Vec<String>,
    /// ROM values, parallel to `rom_keys`.
    pub rom_values: Vec<Vec<u8>>,
}

impl Encode for NodeReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.node);
        w.put_u64(self.rounds);
        w.put_u64(self.sent);
        w.put_u64(self.received);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.alerts);
        w.put_u64(self.late_frames);
        w.put_u64(self.mark_timeouts);
        w.put_u64(self.dup_frames);
        w.put_u64(self.reorder_frames);
        self.rom_keys.encode(w);
        self.rom_values.encode(w);
    }
}

impl Decode for NodeReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let report = NodeReport {
            node: r.get_u32()?,
            rounds: r.get_u64()?,
            sent: r.get_u64()?,
            received: r.get_u64()?,
            bytes_sent: r.get_u64()?,
            alerts: r.get_u64()?,
            late_frames: r.get_u64()?,
            mark_timeouts: r.get_u64()?,
            dup_frames: r.get_u64()?,
            reorder_frames: r.get_u64()?,
            rom_keys: Vec::<String>::decode(r)?,
            rom_values: Vec::<Vec<u8>>::decode(r)?,
        };
        if report.rom_keys.len() != report.rom_values.len() {
            return Err(WireError::BadLength);
        }
        Ok(report)
    }
}

impl Encode for NetMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NetMsg::Hello { node, run_id } => {
                w.put_u8(1);
                w.put_u32(*node);
                w.put_u64(*run_id);
            }
            NetMsg::Setup {
                setup_round,
                seq,
                from,
                to,
                payload,
            } => {
                w.put_u8(2);
                w.put_u64(*setup_round);
                w.put_u32(*seq);
                from.encode(w);
                to.encode(w);
                w.put_bytes(payload);
            }
            NetMsg::SetupMark { setup_round, from } => {
                w.put_u8(3);
                w.put_u64(*setup_round);
                from.encode(w);
            }
            NetMsg::Round {
                round,
                seq,
                from,
                to,
                payload,
            } => {
                w.put_u8(4);
                w.put_u64(*round);
                w.put_u32(*seq);
                from.encode(w);
                to.encode(w);
                w.put_bytes(payload);
            }
            NetMsg::RoundMark { round, from } => {
                w.put_u8(5);
                w.put_u64(*round);
                from.encode(w);
            }
            NetMsg::Event { node, round, event } => {
                w.put_u8(6);
                node.encode(w);
                w.put_u64(*round);
                event.encode(w);
            }
            NetMsg::Report(report) => {
                w.put_u8(7);
                report.encode(w);
            }
            NetMsg::Bye { node } => {
                w.put_u8(8);
                w.put_u32(*node);
            }
            NetMsg::Metrics { node, round, delta } => {
                w.put_u8(9);
                w.put_u32(*node);
                w.put_u64(*round);
                delta.encode(w);
            }
            NetMsg::Beacon(beacon) => {
                w.put_u8(10);
                beacon.encode(w);
            }
            NetMsg::Alarm(alarm) => {
                w.put_u8(11);
                alarm.encode(w);
            }
            NetMsg::Trace { node, round, events } => {
                w.put_u8(12);
                w.put_u32(*node);
                w.put_u64(*round);
                w.put_bytes(events);
            }
            NetMsg::Rejoin {
                node,
                run_id,
                watermark,
            } => {
                w.put_u8(13);
                w.put_u32(*node);
                w.put_u64(*run_id);
                w.put_u64(*watermark);
            }
            NetMsg::RejoinAck { node, round } => {
                w.put_u8(14);
                w.put_u32(*node);
                w.put_u64(*round);
            }
        }
    }
}

impl Decode for NetMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            1 => NetMsg::Hello {
                node: r.get_u32()?,
                run_id: r.get_u64()?,
            },
            2 => NetMsg::Setup {
                setup_round: r.get_u64()?,
                seq: r.get_u32()?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
                payload: r.get_bytes()?,
            },
            3 => NetMsg::SetupMark {
                setup_round: r.get_u64()?,
                from: NodeId::decode(r)?,
            },
            4 => NetMsg::Round {
                round: r.get_u64()?,
                seq: r.get_u32()?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
                payload: r.get_bytes()?,
            },
            5 => NetMsg::RoundMark {
                round: r.get_u64()?,
                from: NodeId::decode(r)?,
            },
            6 => NetMsg::Event {
                node: NodeId::decode(r)?,
                round: r.get_u64()?,
                event: OutputEvent::decode(r)?,
            },
            7 => NetMsg::Report(NodeReport::decode(r)?),
            8 => NetMsg::Bye { node: r.get_u32()? },
            9 => NetMsg::Metrics {
                node: r.get_u32()?,
                round: r.get_u64()?,
                delta: MetricsDelta::decode(r)?,
            },
            10 => NetMsg::Beacon(HealthBeacon::decode(r)?),
            11 => NetMsg::Alarm(Alarm::decode(r)?),
            12 => NetMsg::Trace {
                node: r.get_u32()?,
                round: r.get_u64()?,
                events: r.get_bytes()?,
            },
            13 => NetMsg::Rejoin {
                node: r.get_u32()?,
                run_id: r.get_u64()?,
                watermark: r.get_u64()?,
            },
            14 => NetMsg::RejoinAck {
                node: r.get_u32()?,
                round: r.get_u64()?,
            },
            t => return Err(WireError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmsg_roundtrip() {
        let msgs = vec![
            NetMsg::Hello { node: 3, run_id: 99 },
            NetMsg::Setup {
                setup_round: 2,
                seq: 7,
                from: NodeId(1),
                to: NodeId(4),
                payload: vec![1, 2, 3],
            },
            NetMsg::SetupMark {
                setup_round: 2,
                from: NodeId(1),
            },
            NetMsg::Round {
                round: 40,
                seq: 0,
                from: NodeId(5),
                to: NodeId(2),
                payload: vec![],
            },
            NetMsg::RoundMark {
                round: 40,
                from: NodeId(5),
            },
            NetMsg::Event {
                node: NodeId(2),
                round: 41,
                event: OutputEvent::Accepted {
                    from: NodeId(5),
                    msg: b"hb:5:40".to_vec(),
                },
            },
            NetMsg::Report(NodeReport {
                node: 2,
                rounds: 72,
                sent: 1000,
                received: 990,
                bytes_sent: 123456,
                alerts: 0,
                late_frames: 3,
                mark_timeouts: 1,
                dup_frames: 2,
                reorder_frames: 4,
                rom_keys: vec!["v_cert".into()],
                rom_values: vec![vec![9; 32]],
            }),
            NetMsg::Bye { node: 2 },
            NetMsg::Metrics {
                node: 3,
                round: 12,
                delta: {
                    let mut d = MetricsDelta::default();
                    d.counters.insert("uls/accepted".into(), 4);
                    d.maxes.insert("engine/peak".into(), 17);
                    d
                },
            },
            NetMsg::Beacon(HealthBeacon {
                node: 3,
                round: 12,
                round_ms: 180,
                lag_ms: 4,
                inbox_depth: 6,
                late_frames: 1,
                mark_timeouts: 0,
                peers_live: 4,
                sent_round: 8,
                alerts_round: 0,
            }),
            NetMsg::Alarm(Alarm {
                node: 3,
                round: 12,
                severity: Severity::Critical,
                kind: "budget_exceeded".into(),
                detail: "impaired 7 > t 6 in unit 1".into(),
            }),
            NetMsg::Trace {
                node: 3,
                round: 12,
                events: b"{\"ev\":\"tick\",\"node\":3,\"round\":12}\n".to_vec(),
            },
            NetMsg::Rejoin {
                node: 7,
                run_id: 99,
                watermark: 23,
            },
            NetMsg::RejoinAck { node: 4, round: 26 },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(NetMsg::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(NetMsg::from_bytes(&[]).is_err());
        assert!(NetMsg::from_bytes(&[0]).is_err());
        assert!(NetMsg::from_bytes(&[99, 1, 2]).is_err());
        // Valid prefix + trailing garbage is rejected (strict decode).
        let mut bytes = NetMsg::Bye { node: 1 }.to_bytes();
        bytes.push(0);
        assert!(NetMsg::from_bytes(&bytes).is_err());
        // NodeId 0 is never valid on the wire.
        let bad = NetMsg::SetupMark {
            setup_round: 0,
            from: NodeId(1),
        }
        .to_bytes()
        .iter()
        .enumerate()
        .map(|(i, b)| if i >= 9 { 0 } else { *b }) // zero the from field
        .collect::<Vec<u8>>();
        assert!(NetMsg::from_bytes(&bad).is_err());
    }
}
