//! Shamir secret sharing over `Z_q`.
//!
//! The building block for the distributed key generation
//! ([`crate::dkg`]), threshold signing ([`crate::thresh`]), and the proactive
//! refresh protocol ([`crate::refresh`]).
//!
//! A degree-`t` polynomial `f` hides the secret `f(0)`; node `i` (1-based)
//! holds the share `f(i)`. Any `t+1` shares reconstruct via Lagrange
//! interpolation; any `t` reveal nothing.
//!
//! # Examples
//!
//! ```
//! use proauth_crypto::group::{Group, GroupId};
//! use proauth_crypto::shamir::Polynomial;
//! use proauth_primitives::bigint::BigUint;
//!
//! let group = Group::new(GroupId::Toy64);
//! let mut rng = rand::thread_rng();
//! let secret = group.random_scalar(&mut rng);
//! let poly = Polynomial::random_with_secret(&group, 2, secret.clone(), &mut rng);
//! let shares: Vec<_> = (1u32..=5).map(|i| (i, poly.eval_at(i))).collect();
//! let rec = proauth_crypto::shamir::interpolate_at_zero(&group, &shares[0..3]);
//! assert_eq!(rec, secret);
//! ```

use crate::group::Group;
use proauth_primitives::bigint::BigUint;

/// A polynomial over `Z_q` in coefficient form (degree = `coeffs.len() - 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    group: Group,
    /// `coeffs[k]` is the coefficient of `x^k`.
    coeffs: Vec<BigUint>,
}

impl Polynomial {
    /// A uniformly random polynomial of degree `degree`.
    pub fn random<R: rand::RngCore>(group: &Group, degree: usize, rng: &mut R) -> Self {
        let coeffs = (0..=degree).map(|_| group.random_scalar(rng)).collect();
        Polynomial {
            group: group.clone(),
            coeffs,
        }
    }

    /// A random polynomial of degree `degree` with fixed constant term.
    pub fn random_with_secret<R: rand::RngCore>(
        group: &Group,
        degree: usize,
        secret: BigUint,
        rng: &mut R,
    ) -> Self {
        let mut coeffs = vec![secret.rem(group.q())];
        coeffs.extend((0..degree).map(|_| group.random_scalar(rng)));
        Polynomial {
            group: group.clone(),
            coeffs,
        }
    }

    /// A random polynomial of degree `degree` with a *root* at `point`
    /// (`f(point) = 0`), i.e. `f(x) = (x - point)·e(x)` for random `e`.
    ///
    /// Used by Herzberg-style share recovery: helpers jointly blind the share
    /// polynomial with polynomials that vanish exactly at the recovering
    /// node's evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0` (a nonzero constant cannot have a root).
    pub fn random_with_root<R: rand::RngCore>(
        group: &Group,
        degree: usize,
        point: u32,
        rng: &mut R,
    ) -> Self {
        assert!(degree >= 1, "degree-0 polynomial cannot have a root");
        let e = Self::random(group, degree - 1, rng);
        // f(x) = (x - point) * e(x)
        let q = group.q();
        let neg_point = group.scalar_neg(&BigUint::from_u64(point as u64));
        let mut coeffs = vec![BigUint::zero(); degree + 1];
        for (k, ek) in e.coeffs.iter().enumerate() {
            // x * ek * x^k  contributes to coeff k+1
            coeffs[k + 1] = coeffs[k + 1].add_mod(ek, q);
            // (-point) * ek * x^k contributes to coeff k
            coeffs[k] = coeffs[k].add_mod(&neg_point.mul_mod(ek, q), q);
        }
        Polynomial {
            group: group.clone(),
            coeffs,
        }
    }

    /// Builds a polynomial from explicit coefficients (reduced mod `q`).
    pub fn from_coeffs(group: &Group, coeffs: Vec<BigUint>) -> Self {
        let coeffs = coeffs.into_iter().map(|c| c.rem(group.q())).collect();
        Polynomial {
            group: group.clone(),
            coeffs,
        }
    }

    /// The coefficients, constant term first.
    pub fn coeffs(&self) -> &[BigUint] {
        &self.coeffs
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// The secret `f(0)`.
    pub fn secret(&self) -> &BigUint {
        &self.coeffs[0]
    }

    /// Evaluates at the (1-based) node index `i` by Horner's rule.
    pub fn eval_at(&self, i: u32) -> BigUint {
        self.eval_scalar(&BigUint::from_u64(i as u64))
    }

    /// Evaluates at an arbitrary scalar point.
    pub fn eval_scalar(&self, x: &BigUint) -> BigUint {
        let q = self.group.q();
        let mut acc = BigUint::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.mul_mod(x, q).add_mod(c, q);
        }
        acc
    }
}

/// Lagrange coefficient `λ_j` for reconstructing `f(0)` from the points
/// `indices` (all distinct, 1-based): `λ_j = Π_{m≠j} m / (m - j) mod q`.
///
/// # Panics
///
/// Panics if `j` is not in `indices` or indices are not distinct.
pub fn lagrange_coeff_at_zero(group: &Group, indices: &[u32], j: u32) -> BigUint {
    lagrange_coeff_at(group, indices, j, 0)
}

/// Lagrange coefficient for evaluating at an arbitrary point `x0`:
/// `λ_j(x0) = Π_{m≠j} (x0 - m) / (j - m)` over the index set.
///
/// # Panics
///
/// Panics if `j ∉ indices` or indices repeat.
pub fn lagrange_coeff_at(group: &Group, indices: &[u32], j: u32, x0: u32) -> BigUint {
    assert!(indices.contains(&j), "j must be one of the indices");
    let q = group.q();
    let to_s = |v: u32| BigUint::from_u64(v as u64).rem(q);
    let xj = to_s(j);
    let x0s = to_s(x0);
    let mut num = BigUint::one();
    let mut den = BigUint::one();
    for &m in indices {
        if m == j {
            continue;
        }
        assert_ne!(m, j);
        let xm = to_s(m);
        num = num.mul_mod(&x0s.sub_mod(&xm, q), q);
        den = den.mul_mod(&xj.sub_mod(&xm, q), q);
    }
    let den_inv = group
        .scalar_inv(&den)
        .expect("distinct indices below q give nonzero denominator");
    num.mul_mod(&den_inv, q)
}

/// All Lagrange coefficients `λ_j(0)` for the index set at once, with one
/// modular inversion total (Montgomery's batch-inversion trick on the
/// per-index denominators) instead of one per coefficient. Bit-identical to
/// calling [`lagrange_coeff_at_zero`] per index.
///
/// # Panics
///
/// Panics if `indices` is empty or contains repeats.
pub fn lagrange_coeffs_at_zero(group: &Group, indices: &[u32]) -> Vec<(u32, BigUint)> {
    assert!(!indices.is_empty(), "empty index set");
    let q = group.q();
    let to_s = |v: u32| BigUint::from_u64(v as u64).rem(q);
    // Numerator and denominator per index.
    let mut nums = Vec::with_capacity(indices.len());
    let mut dens = Vec::with_capacity(indices.len());
    for &j in indices {
        let xj = to_s(j);
        let mut num = BigUint::one();
        let mut den = BigUint::one();
        for &m in indices {
            if m == j {
                continue;
            }
            let xm = to_s(m);
            num = num.mul_mod(&BigUint::zero().sub_mod(&xm, q), q);
            den = den.mul_mod(&xj.sub_mod(&xm, q), q);
        }
        nums.push(num);
        dens.push(den);
    }
    // Batch inversion: prefix products, one inverse, unwind backwards.
    let mut prefix = Vec::with_capacity(dens.len());
    let mut acc = BigUint::one();
    for d in &dens {
        prefix.push(acc.clone());
        acc = acc.mul_mod(d, q);
    }
    let mut inv_acc = group
        .scalar_inv(&acc)
        .expect("distinct indices below q give nonzero denominators");
    let mut out = vec![(0u32, BigUint::zero()); indices.len()];
    for k in (0..indices.len()).rev() {
        let den_inv = inv_acc.mul_mod(&prefix[k], q);
        inv_acc = inv_acc.mul_mod(&dens[k], q);
        out[k] = (indices[k], nums[k].mul_mod(&den_inv, q));
    }
    out
}

/// Reconstructs `f(0)` from `(index, share)` points.
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate indices.
pub fn interpolate_at_zero(group: &Group, points: &[(u32, BigUint)]) -> BigUint {
    interpolate_at(group, points, 0)
}

/// Reconstructs `f(x0)` from `(index, share)` points.
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate indices.
pub fn interpolate_at(group: &Group, points: &[(u32, BigUint)], x0: u32) -> BigUint {
    assert!(!points.is_empty(), "need at least one point");
    let indices: Vec<u32> = points.iter().map(|(i, _)| *i).collect();
    let q = group.q();
    let mut acc = BigUint::zero();
    for (i, share) in points {
        let lambda = lagrange_coeff_at(group, &indices, *i, x0);
        acc = acc.add_mod(&lambda.mul_mod(share, q), q);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::new(GroupId::Toy64), StdRng::seed_from_u64(11))
    }

    #[test]
    fn share_and_reconstruct() {
        let (group, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let poly = Polynomial::random_with_secret(&group, 2, secret.clone(), &mut rng);
        let shares: Vec<(u32, BigUint)> = (1..=7).map(|i| (i, poly.eval_at(i))).collect();
        // Any 3 of 7 reconstruct.
        for window in [&shares[0..3], &shares[2..5], &shares[4..7]] {
            assert_eq!(interpolate_at_zero(&group, window), secret);
        }
    }

    #[test]
    fn too_few_shares_give_wrong_secret() {
        let (group, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let poly = Polynomial::random_with_secret(&group, 3, secret.clone(), &mut rng);
        let shares: Vec<(u32, BigUint)> = (1..=3).map(|i| (i, poly.eval_at(i))).collect();
        // 3 shares of a degree-3 polynomial: interpolation yields garbage
        // (w.h.p. not the secret).
        assert_ne!(interpolate_at_zero(&group, &shares), secret);
    }

    #[test]
    fn batched_coefficients_match_per_index() {
        let (group, _) = setup();
        for indices in [vec![1u32, 2, 3], vec![4, 9, 2, 13, 7], vec![5]] {
            let batched = lagrange_coeffs_at_zero(&group, &indices);
            assert_eq!(batched.len(), indices.len());
            for (j, lambda) in &batched {
                assert_eq!(*lambda, lagrange_coeff_at_zero(&group, &indices, *j));
            }
        }
    }

    #[test]
    fn interpolate_at_general_point() {
        let (group, mut rng) = setup();
        let poly = Polynomial::random(&group, 2, &mut rng);
        let shares: Vec<(u32, BigUint)> = (1..=3).map(|i| (i, poly.eval_at(i))).collect();
        assert_eq!(interpolate_at(&group, &shares, 9), poly.eval_at(9));
    }

    #[test]
    fn root_polynomial_vanishes_at_point() {
        let (group, mut rng) = setup();
        for point in [1u32, 3, 7] {
            let poly = Polynomial::random_with_root(&group, 2, point, &mut rng);
            assert!(poly.eval_at(point).is_zero(), "f({point}) = 0");
            assert_eq!(poly.degree(), 2);
            // Not identically zero (w.h.p.).
            assert!(!poly.eval_at(point + 1).is_zero());
        }
    }

    #[test]
    fn lagrange_coeffs_sum_correctly() {
        let (group, mut rng) = setup();
        // Constant polynomial: all shares equal secret, so Σλ_j = 1.
        let secret = group.random_scalar(&mut rng);
        let indices = [2u32, 5, 9];
        let mut sum = proauth_primitives::bigint::BigUint::zero();
        for &j in &indices {
            sum = group.scalar_add(&sum, &lagrange_coeff_at_zero(&group, &indices, j));
        }
        assert!(sum.is_one());
        let _ = secret;
    }

    #[test]
    fn eval_matches_horner_reference() {
        let (group, _) = setup();
        // f(x) = 3 + 2x + x^2 mod q
        let poly = Polynomial::from_coeffs(
            &group,
            vec![
                BigUint::from_u64(3),
                BigUint::from_u64(2),
                BigUint::from_u64(1),
            ],
        );
        assert_eq!(poly.eval_at(0), BigUint::from_u64(3));
        assert_eq!(poly.eval_at(1), BigUint::from_u64(6));
        assert_eq!(poly.eval_at(5), BigUint::from_u64(3 + 10 + 25));
        assert_eq!(poly.secret(), &BigUint::from_u64(3));
    }

    #[test]
    #[should_panic(expected = "j must be one of the indices")]
    fn lagrange_requires_member_index() {
        let (group, _) = setup();
        let _ = lagrange_coeff_at_zero(&group, &[1, 2, 3], 4);
    }
}
