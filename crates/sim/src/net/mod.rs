//! Real-network daemon mode: the socket-backed engine.
//!
//! The in-process round engine ([`crate::runner`]) and this module are two
//! backends of the same protocol core ([`crate::driver`]). Here each node is
//! a separate OS process speaking length-prefixed [`msg::NetMsg`] frames —
//! canonical `primitives::wire` encoding — over TCP or Unix-domain sockets,
//! multiplexed by a hand-rolled `poll(2)` loop ([`poll`], zero dependencies).
//!
//! Module map:
//!
//! * [`frame`] — length-prefixed frame codec with a streaming decoder;
//! * [`msg`] — the wire vocabulary (`Hello`, `Setup`, `Round`, marks,
//!   events, reports, `Bye`);
//! * [`poll`] — the `poll(2)` readiness loop;
//! * [`peer`] — address plans, listeners, and framed non-blocking
//!   connections with reconnect support;
//! * [`daemon`] — the node process main loop (setup barriers, paced rounds);
//! * [`proxy`] — the chaos proxy: deterministic delay/duplicate/reorder/
//!   partition on real packets;
//! * [`client`] — the collector that reassembles a `SimResult`-shaped
//!   outcome (output logs, ROMs, reports, goodput) from the streams;
//! * [`status`] — the live observability plane: the merged registry, health
//!   beacons, Def-7 budget alarms, the status socket's Prometheus / JSON /
//!   `top` renderers, and the cluster-trace assembler;
//! * [`state`] — durable per-node state (write-once ROM image + round
//!   watermark, crash-consistent, digest-verified) backing the self-healing
//!   rejoin path after a process-level crash.
//!
//! Determinism carries over from the simulator: protocol payloads are the
//! same bytes, randomness is the same per-(node, round) derivation, and
//! inbox order is reproduced by sorting deliveries on `(round, sender, seq)`
//! — so a faithful daemon run reaches outcomes bit-identical to `run_ul`
//! under the same seed, and a chaos run stays within the UL adversary's
//! legal actions (delay, duplication, reordering).

pub mod client;
pub mod daemon;
pub mod frame;
pub mod msg;
pub mod peer;
pub mod poll;
pub mod proxy;
pub mod state;
pub mod status;

pub use client::{collect, Collector, CollectorConfig, DaemonOutcome};
pub use daemon::{run_node, NodeLoop, NodeNetConfig};
pub use frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME};
pub use msg::{Alarm, HealthBeacon, NetMsg, NodeReport, Severity};
pub use status::{LiveState, StatusConn, TraceAssembler, TraceSpec};
pub use peer::{AddrPlan, Conn, Endpoint, NetListener, NetStream};
pub use proxy::{run_proxy, ChaosNetSpec, Partition, Proxy, ProxyConfig, ProxyStats};
pub use state::{Load, StateDir, Watermark};
