//! E11 — whole-system simulation throughput (supplementary): physical
//! rounds per second of a full ULS network by size, authentication mode,
//! and round-engine configuration.
//!
//! Not a paper claim, but the number a user sizing an experiment wants: how
//! much wall-clock a unit costs at each scale, what the session-MAC mode
//! buys at the system level (E9 measures it per message), and what the
//! persistent worker pool buys over the serial engine.
//!
//! Two parts:
//!
//! 1. a criterion group (`e11/unit`) timing one refresh unit at small `n`
//!    with `Throughput::Elements(rounds)`, so the report carries rounds/s;
//! 2. a serial-vs-pool **ablation** at `n ∈ {13, 32}` (single timed runs —
//!    a full n=32 unit is too slow to sample repeatedly), printed as a
//!    table and appended to the `CRITERION_JSON` file when set.
//!
//! Why the ablation stops at n = 32: PARTIAL-AGREEMENT step 3 relays every
//! majority member's certified message to every node through DISPERSE —
//! Θ(n³) envelopes per node per refresh, the complexity the paper itself
//! flags in §6 (its relaxations cut the DISPERSE fan-out, not the relay
//! count). At n = 64 one refresh unit materialises >10⁸ transient envelopes
//! (tens of GB), which no round engine fixes; n = 32 with the §6 relaxed
//! fan-out is the largest size that runs in bounded memory.
//!
//! Run `CRITERION_JSON=BENCH_e11.json cargo bench --bench
//! e11_system_throughput` to regenerate the recorded baseline.

use criterion::{Criterion, Throughput};
use proauth_bench::print_table;
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::disperse::DisperseMode;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::report::ThroughputSummary;
use proauth_sim::runner::{run_ul, SimConfig, SimStats};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Round engine under test.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Serial,
    Pool(usize),
}

impl Engine {
    fn label(self) -> String {
        match self {
            Engine::Serial => "serial".into(),
            Engine::Pool(w) => format!("pool{w}"),
        }
    }
}

fn sim_cfg(n: usize, t: usize, units: u64, engine: Engine) -> SimConfig {
    let schedule = uls_schedule(8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = 87;
    match engine {
        Engine::Serial => cfg.parallel = false,
        Engine::Pool(w) => {
            cfg.parallel = true;
            cfg.threads = w;
        }
    }
    cfg
}

fn run_one(n: usize, t: usize, mode: AuthMode, engine: Engine) -> (SimStats, u64, Duration) {
    let cfg = sim_cfg(n, t, 2, engine);
    let total_rounds = cfg.total_rounds;
    let group = Group::new(GroupId::Toy64);
    let start = Instant::now();
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            c.auth_mode = mode;
            // Large networks use the §6 relaxation so DISPERSE volume stays
            // O(n·t) instead of O(n²).
            if n >= 32 {
                c.disperse = DisperseMode::Relaxed { fanout: 2 * t + 1 };
            }
            UlsNode::new(c, id, HeartbeatApp::default())
        },
        &mut FaithfulUl,
    );
    (result.stats, total_rounds, start.elapsed())
}

/// Part 1: sampled timings of one 2-unit run at small n, rounds/s reported
/// via the criterion `Throughput` API.
fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11/unit");
    for n in [5usize, 9, 13] {
        let t = (n - 1) / 2;
        let rounds = uls_schedule(8).unit_rounds * 2;
        group.throughput(Throughput::Elements(rounds));
        for (mode, label) in [(AuthMode::Sign, "sign"), (AuthMode::SessionMac, "mac")] {
            group.bench_function(format!("n{n}/{label}"), |b| {
                b.iter(|| run_one(n, t, mode, Engine::Serial));
            });
        }
    }
    group.finish();
}

/// Part 2: serial-vs-pool ablation, one timed run per row.
fn ablation() {
    let engines = [Engine::Serial, Engine::Pool(1), Engine::Pool(2), Engine::Pool(8)];
    let mut rows = Vec::new();
    let mut json_lines = Vec::new();
    for (n, t) in [(13usize, 6usize), (32, 3)] {
        for engine in engines {
            let (stats, total_rounds, elapsed) = run_one(n, t, AuthMode::SessionMac, engine);
            let tp = ThroughputSummary::from_run(&stats, total_rounds, elapsed);
            rows.push(vec![
                n.to_string(),
                t.to_string(),
                engine.label(),
                stats.messages_sent.to_string(),
                format!("{:.1}", tp.rounds_per_sec),
                format!("{:.0}", tp.msgs_per_sec),
                format!("{:.0}", tp.bytes_per_sec / 1024.0),
            ]);
            json_lines.push(format!(
                "{{\"id\": \"e11/ablation/n{n}/{}\", \"elapsed_ns\": {}, \
                 \"rounds_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \
                 \"bytes_per_sec\": {:.1}}}",
                engine.label(),
                elapsed.as_nanos(),
                tp.rounds_per_sec,
                tp.msgs_per_sec,
                tp.bytes_per_sec,
            ));
        }
    }
    print_table(
        "E11 — round-engine ablation (2 units, session-MAC, toy group)",
        &["n", "t", "engine", "messages", "rounds/s", "msgs/s", "KiB/s"],
        &rows,
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for line in &json_lines {
                let _ = writeln!(file, "{line}");
            }
        }
    }
    println!(
        "\nExpected shape: throughput falls with the PA-relay message volume\n\
         (Θ(n³) per node per refresh; the §6 relaxation used at n = 32 trims the\n\
         DISPERSE fan-out, not the relay count — which is also why n = 64 is\n\
         omitted: one unit materialises >10⁸ transient envelopes). The pool\n\
         engines approach the serial engine at 1 worker (handshake overhead only)\n\
         and win once cores × per-round crypto outweigh scheduling. On a\n\
         single-core host all engines tie — record the core count with the run."
    );
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    bench_units(&mut criterion);
    ablation();
}
