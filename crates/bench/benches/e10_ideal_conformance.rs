//! E10 — Definition 12: emulation of the ideal signature process.
//!
//! Randomized conformance fuzzing: many ULS runs under randomized adversaries
//! (random droppers of varying severity, random sign-request patterns), each
//! checked against the ideal process's hard invariants:
//!
//! * **no forgery** — nothing signed/verified without `t+1` same-unit
//!   requests;
//! * **liveness** — a quorum of reliable requesters always yields a
//!   signature (checked only in runs where the dropper stayed below the
//!   disruption threshold).

use proauth_adversary::RandomDropper;
use proauth_bench::{pct, print_table, uls_cfg, uls_node};
use proauth_core::uls::{sign_input, uls_schedule};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::message::NodeId;
use proauth_sim::runner::run_ul_with_inputs;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 20;

fn main() {
    let sched = uls_schedule(NORMAL);
    let runs_per_cell = 8u64;
    let mut rows = Vec::new();

    for drop_pct in [0u32, 2, 5, 10, 20] {
        let mut forgery_violations = 0usize;
        let mut liveness_violations = 0usize;
        let mut liveness_checked = 0usize;
        let mut signatures = 0usize;

        for run in 0..runs_per_cell {
            let seed = 900 + drop_pct as u64 * 100 + run;
            let mut req_rng = StdRng::seed_from_u64(seed);
            // Random sign-request pattern: 1–3 messages per unit, each asked
            // of a random-but-sufficient subset at a random normal round.
            let mut requests: Vec<(u64, Vec<u32>, Vec<u8>)> = Vec::new();
            for unit in 0..2u64 {
                let count = req_rng.gen_range(1..=3);
                for c in 0..count {
                    let normal_start = if unit == 0 { 0 } else { sched.refresh_rounds() };
                    let round = unit * sched.unit_rounds
                        + normal_start
                        + 2 * req_rng.gen_range(1..=(NORMAL / 2 - 6));
                    let quorum = req_rng.gen_range((T + 1)..=N);
                    let mut nodes: Vec<u32> = (1..=N as u32).collect();
                    for k in (1..nodes.len()).rev() {
                        nodes.swap(k, req_rng.gen_range(0..=k));
                    }
                    nodes.truncate(quorum);
                    requests.push((round, nodes, format!("doc-{unit}-{c}-{seed}").into_bytes()));
                }
            }
            let reqs = requests.clone();
            let mut adv = RandomDropper::new(drop_pct as f64 / 100.0, seed);
            let result = run_ul_with_inputs(
                uls_cfg(N, T, NORMAL, 2, seed),
                uls_node(N, T),
                &mut adv,
                move |id, round| {
                    reqs.iter()
                        .find(|(r, nodes, _)| *r == round && nodes.contains(&id.0))
                        .map(|(_, _, msg)| sign_input(msg))
                },
            );
            let checker = IdealChecker::new(T);
            forgery_violations += checker.check_no_forgery(&result.outputs, &[]).len();
            signatures += result
                .outputs
                .iter()
                .flat_map(|l| l.iter())
                .filter(|(_, e)| {
                    matches!(e, proauth_sim::message::OutputEvent::Signed { .. })
                })
                .count();
            // Liveness obligation only applies while the network stays
            // coherent; random droppers at low rates keep everyone
            // operational, which we verify from ground truth.
            if result.final_operational.iter().all(|&b| b) && drop_pct == 0 {
                let all: Vec<NodeId> = NodeId::all(N).collect();
                liveness_violations += checker.check_liveness(&result.outputs, &all, &[]).len();
                liveness_checked += 1;
            }
        }
        rows.push(vec![
            format!("{drop_pct}%"),
            runs_per_cell.to_string(),
            forgery_violations.to_string(),
            if liveness_checked > 0 {
                liveness_violations.to_string()
            } else {
                "-".into()
            },
            signatures.to_string(),
        ]);
    }

    print_table(
        "E10 / Def. 12 — ideal-process conformance fuzz (n = 5, t = 2)",
        &[
            "drop rate",
            "runs",
            "forgery violations",
            "liveness violations",
            "signatures produced",
        ],
        &rows,
    );
    let total_runs: u64 = 5 * runs_per_cell;
    println!(
        "\nExpected shape: zero forgery violations at every drop rate ({total_runs} runs —\n\
         dropped messages can deny signatures but never mint them), zero liveness\n\
         violations on clean networks, and signature throughput degrading gracefully\n\
         as the drop rate climbs. {}",
        pct(0, 1)
    );
}
