//! The node-side execution interface: processes, ROM, and round contexts.

use crate::clock::TimeView;
use crate::message::{Envelope, NodeId, OutboxEntry, OutputEvent, Payload};
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::BTreeMap;

/// Read-only memory (§2.2/§6 of the paper): the program plus a small amount
/// of data written once at the end of the set-up phase — in our protocols the
/// PDS global verification key `v_cert`.
///
/// The runner hands processes a `&mut Rom` only during setup; afterwards the
/// ROM is frozen and even the adversary's memory-corruption API cannot reach
/// it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rom {
    entries: BTreeMap<String, Vec<u8>>,
}

impl Rom {
    /// Creates an empty ROM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes an entry (setup phase only — the runner enforces this by not
    /// exposing `&mut Rom` afterwards).
    pub fn write(&mut self, key: &str, value: Vec<u8>) {
        self.entries.insert(key.to_owned(), value);
    }

    /// Reads an entry.
    pub fn read(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(|v| v.as_slice())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROM holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in key order (the map is ordered, so this is a
    /// canonical enumeration — suitable for hashing or wire transfer).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Rebuilds a ROM from `(key, value)` pairs (the daemon's collector uses
    /// this to reassemble the per-node ROMs a `SimResult` carries).
    pub fn from_entries(entries: impl IntoIterator<Item = (String, Vec<u8>)>) -> Self {
        Rom {
            entries: entries.into_iter().collect(),
        }
    }
}

/// Everything a process can see and do in one communication round.
pub struct RoundCtx<'a> {
    /// Current time.
    pub time: TimeView,
    /// This node's id.
    pub me: NodeId,
    /// Network size.
    pub n: usize,
    /// Messages delivered to this node at the start of the round.
    pub inbox: &'a [Envelope],
    /// This node's frozen ROM.
    pub rom: &'a Rom,
    /// Fresh per-round randomness (the paper's `r_{i,w}`): seeded outside the
    /// node's corruptible state, so breaking in reveals nothing about future
    /// rounds' randomness.
    pub rng: &'a mut StdRng,
    /// External input for this round (the paper's `x_{i,w}`), if any.
    pub input: Option<&'a [u8]>,
    pub(crate) outbox: &'a mut Vec<OutboxEntry>,
    pub(crate) output: &'a mut Vec<(u64, OutputEvent)>,
}

impl<'a> RoundCtx<'a> {
    /// Sends `payload` to `to` at the end of this round. Accepts `Vec<u8>`
    /// or an already-shared [`Payload`] (forwarded without copying).
    pub fn send(&mut self, to: NodeId, payload: impl Into<Payload>) {
        debug_assert!(to != self.me, "no self-links in the model");
        self.outbox.push(OutboxEntry::single(self.me, to, payload));
    }

    /// Sends one shared payload to an explicit destination list, as a single
    /// outbox entry: the engine expands it into per-destination envelopes
    /// only at the adversary boundary.
    pub fn send_many(&mut self, to: Vec<NodeId>, payload: impl Into<Payload>) {
        debug_assert!(to.iter().all(|&t| t != self.me), "no self-links in the model");
        if to.is_empty() {
            return;
        }
        self.outbox.push(OutboxEntry {
            from: self.me,
            to,
            payload: payload.into(),
        });
    }

    /// Sends `payload` to every other node. One allocation and one outbox
    /// entry regardless of fan-out.
    pub fn send_all(&mut self, payload: impl Into<Payload>) {
        let to: Vec<NodeId> = NodeId::all(self.n).filter(|&t| t != self.me).collect();
        self.send_many(to, payload);
    }

    /// Appends an event to this node's local output.
    pub fn emit(&mut self, event: OutputEvent) {
        self.output.push((self.time.round, event));
    }

    /// Number of messages sent so far this round (used by complexity
    /// experiments): physical envelopes, counting each destination of a
    /// multi-destination entry.
    pub fn sent_count(&self) -> usize {
        self.outbox.iter().map(OutboxEntry::fanout).sum()
    }

    /// Runs `f` inside a derived context for a *sub-network* — the §6
    /// two-level construction runs a cluster-local protocol instance inside
    /// each node, addressing `n` cluster-local ids instead of the global
    /// network. The child shares this round's time, ROM, randomness, and
    /// output log, but collects its sends into a private outbox that the
    /// caller translates (local → global ids, wire framing) before
    /// forwarding. Returns `f`'s result and the child's outbox.
    pub fn nested<R>(
        &mut self,
        me: NodeId,
        n: usize,
        inbox: &[Envelope],
        input: Option<&[u8]>,
        f: impl FnOnce(&mut RoundCtx<'_>) -> R,
    ) -> (R, Vec<OutboxEntry>) {
        let mut outbox = Vec::new();
        let r = f(&mut RoundCtx {
            time: self.time,
            me,
            n,
            inbox,
            rom: self.rom,
            rng: self.rng,
            input,
            outbox: &mut outbox,
            output: self.output,
        });
        (r, outbox)
    }
}

/// Context for the adversary-free set-up phase. Like [`RoundCtx`] but with a
/// writable ROM.
pub struct SetupCtx<'a> {
    /// Setup round index (0-based; independent of post-setup rounds).
    pub setup_round: u64,
    /// This node's id.
    pub me: NodeId,
    /// Network size.
    pub n: usize,
    /// Messages delivered this setup round (faithful delivery).
    pub inbox: &'a [Envelope],
    /// The node's ROM, writable during setup only.
    pub rom: &'a mut Rom,
    /// Setup randomness.
    pub rng: &'a mut StdRng,
    pub(crate) outbox: &'a mut Vec<OutboxEntry>,
}

impl<'a> SetupCtx<'a> {
    /// Sends `payload` to `to` at the end of this setup round.
    pub fn send(&mut self, to: NodeId, payload: impl Into<Payload>) {
        debug_assert!(to != self.me);
        self.outbox.push(OutboxEntry::single(self.me, to, payload));
    }

    /// Sends `payload` to every other node (bytes shared, not copied).
    pub fn send_all(&mut self, payload: impl Into<Payload>) {
        let to: Vec<NodeId> = NodeId::all(self.n).filter(|&t| t != self.me).collect();
        if to.is_empty() {
            return;
        }
        self.outbox.push(OutboxEntry {
            from: self.me,
            to,
            payload: payload.into(),
        });
    }

    /// Setup-phase counterpart of [`RoundCtx::nested`]: runs `f` with a
    /// derived setup context for a cluster-local sub-network. The child
    /// shares the writable ROM and randomness; its sends are returned for
    /// the caller to translate and forward.
    pub fn nested<R>(
        &mut self,
        me: NodeId,
        n: usize,
        inbox: &[Envelope],
        f: impl FnOnce(&mut SetupCtx<'_>) -> R,
    ) -> (R, Vec<OutboxEntry>) {
        let mut outbox = Vec::new();
        let r = f(&mut SetupCtx {
            setup_round: self.setup_round,
            me,
            n,
            inbox,
            rom: self.rom,
            rng: self.rng,
            outbox: &mut outbox,
        });
        (r, outbox)
    }
}

/// A node program.
///
/// While a node is broken into, the runner does **not** call `on_round`; the
/// adversary acts in the node's name and may mutate its state through
/// [`Process::state_mut`]. When the adversary leaves, execution resumes from
/// whatever the (possibly corrupted) state now holds — the recovery problem
/// the paper is about.
pub trait Process: 'static {
    /// Executes one adversary-free setup round.
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>);

    /// Executes one communication round.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Exposes mutable state to the break-in semantics (`dyn Any` so
    /// adversary strategies can downcast to the concrete node type).
    fn state_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Schedule, TimeView};
    use rand::SeedableRng;

    #[test]
    fn rom_read_write() {
        let mut rom = Rom::new();
        assert!(rom.is_empty());
        rom.write("v_cert", vec![1, 2, 3]);
        assert_eq!(rom.read("v_cert"), Some(&[1u8, 2, 3][..]));
        assert_eq!(rom.read("missing"), None);
        assert_eq!(rom.len(), 1);
    }

    #[test]
    fn round_ctx_send_and_emit() {
        let sched = Schedule::new(30, 12, 8);
        let mut outbox = Vec::new();
        let mut output = Vec::new();
        let rom = Rom::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = RoundCtx {
            time: TimeView::at(&sched, 5),
            me: NodeId(1),
            n: 3,
            inbox: &[],
            rom: &rom,
            rng: &mut rng,
            input: None,
            outbox: &mut outbox,
            output: &mut output,
        };
        ctx.send(NodeId(2), vec![9]);
        ctx.send_all(vec![7]);
        ctx.emit(OutputEvent::Alert);
        assert_eq!(ctx.sent_count(), 3); // one direct + two broadcast
        // One single-destination entry plus one broadcast entry.
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[1].to, vec![NodeId(2), NodeId(3)]);
        assert_eq!(output, vec![(5, OutputEvent::Alert)]);
    }
}
