//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build container has no crates.io access, so this shim provides the
//! slice of criterion the bench crate uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], `black_box`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock estimate: a short warmup sizes the
//! batch, then `sample_size` samples are timed and the median per-iteration
//! time is reported. There is no outlier analysis or HTML report. If the
//! `CRITERION_JSON` environment variable names a file, one JSON line per
//! benchmark (`{"id": ..., "median_ns": ..., "samples_ns": [...]}`) is
//! appended to it — the repo's `BENCH_e9.json` baseline is produced that way.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declaration (mirror of `criterion::Throughput`).
///
/// When a group declares throughput, every report line (and the
/// `CRITERION_JSON` record) additionally carries an elements-per-second or
/// bytes-per-second rate computed from the median time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many logical elements (rounds,
    /// messages, …).
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// Benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(800),
            throughput: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.throughput = None;
        run_bench(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named set of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; reports then include an elements/s or bytes/s rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.criterion.throughput = Some(t);
        self
    }

    /// Runs a benchmark under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &full, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group, clearing its throughput declaration.
    pub fn finish(self) {
        self.criterion.throughput = None;
    }
}

/// A function name + parameter pair (mirror of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id within a group.
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures (mirror of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`; results are kept via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup sizes the batch: run single iterations until the warmup budget
    // is spent, then pick a batch size so one sample ≈ measurement/samples.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    while warm_start.elapsed() < c.warmup {
        f(&mut b);
        warm_iters += b.iters;
        // Grow geometrically so cheap closures don't spin on Instant::now.
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / (warm_iters as u128).max(1);
    let sample_budget = c.measurement.as_nanos() / c.sample_size as u128;
    let iters_per_sample = (sample_budget / per_iter.max(1)).clamp(1, 10_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];
    let thrpt = c.throughput.map(|t| match t {
        Throughput::Elements(n) => {
            let rate = n as f64 * 1e9 / median.max(f64::EPSILON);
            (format!("{} elem/s", fmt_rate(rate)), "elems_per_sec", rate)
        }
        Throughput::Bytes(n) => {
            let rate = n as f64 * 1e9 / median.max(f64::EPSILON);
            (format!("{}B/s", fmt_rate(rate)), "bytes_per_sec", rate)
        }
    });
    let thrpt_col = thrpt
        .as_ref()
        .map_or_else(String::new, |(text, _, _)| format!("  thrpt: {text}"));
    println!(
        "{id:<50} time: [{} {} {}]  ({iters_per_sample} iters/sample){thrpt_col}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let samples: Vec<String> = samples_ns.iter().map(|s| format!("{s:.1}")).collect();
            let thrpt_field = thrpt
                .as_ref()
                .map_or_else(String::new, |(_, key, rate)| format!(", \"{key}\": {rate:.1}"));
            let _ = writeln!(
                file,
                "{{\"id\": \"{id}\", \"median_ns\": {median:.1}{thrpt_field}, \"samples_ns\": [{}]}}",
                samples.join(", ")
            );
        }
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group runner function (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
