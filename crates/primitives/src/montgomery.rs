//! Montgomery-form modular exponentiation.
//!
//! The protocol stack's cost is dominated by `modpow` over 256–1024-bit
//! odd moduli (group exponentiation and scalar inversion). The generic
//! square-and-multiply in [`crate::bigint`] performs a full Knuth division
//! per step; this module replaces the reduction with Montgomery REDC,
//! cutting each step to two schoolbook multiplications plus carries.
//!
//! [`BigUint::modpow`] dispatches here automatically for odd multi-limb
//! moduli; the bench `e9_crypto` includes the ablation
//! (`modpow_generic` vs `modpow_montgomery`).
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::bigint::BigUint;
//! use proauth_primitives::montgomery::Montgomery;
//!
//! let m = BigUint::from_hex("ffffffffffffffc5").unwrap(); // odd
//! let ctx = Montgomery::new(&m).unwrap();
//! let base = BigUint::from_u64(7);
//! let exp = BigUint::from_u64(65537);
//! assert_eq!(ctx.modpow(&base, &exp), base.modpow_generic(&exp, &m));
//! ```

use crate::bigint::BigUint;

/// Precomputed context for Montgomery arithmetic modulo an odd `m`.
#[derive(Debug, Clone)]
pub struct Montgomery {
    m: BigUint,
    /// Limb count of `m` (the Montgomery radix is `R = 2^(64·n)`).
    n: usize,
    /// `-m^{-1} mod 2^64`.
    m_inv_neg: u64,
    /// `R² mod m`, used to enter the Montgomery domain.
    r2: BigUint,
    /// `R mod m` — the Montgomery representation of `1`.
    r1: BigUint,
}

/// Fixed-base precomputation for one base (radix-`2^w` comb).
///
/// `table[pos][d-1]` holds `base^(d · 2^(w·pos))` in Montgomery form for
/// `d ∈ 1..2^w`, so evaluating `base^e` for any `e` with at most
/// [`FixedBaseTable::max_bits`] bits needs **no squarings** — one table
/// multiplication per nonzero radix-`2^w` digit of `e` (≈ `max_bits/w`
/// Montgomery products in total, ~40 for a 160-bit exponent at `w = 4`,
/// versus ~240 for plain square-and-multiply).
///
/// Tables are tied to the [`Montgomery`] context that built them; using a
/// table with a different modulus context produces garbage.
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    base: BigUint,
    window: usize,
    max_bits: usize,
    /// `table[pos][d-1] = base^(d << (window·pos))`, Montgomery form.
    table: Vec<Vec<BigUint>>,
}

impl FixedBaseTable {
    /// The plain (non-Montgomery) base this table was built for.
    pub fn base(&self) -> &BigUint {
        &self.base
    }

    /// The largest exponent bit-length the table covers.
    pub fn max_bits(&self) -> usize {
        self.max_bits
    }
}

/// One term of a multi-exponentiation: a base with or without a
/// precomputed fixed-base table.
pub enum ExpTerm<'a> {
    /// An ad-hoc base handled by Straus interleaving.
    Plain {
        /// The base element.
        base: &'a BigUint,
        /// Its exponent.
        exp: &'a BigUint,
    },
    /// A base with a precomputed comb table (no squarings needed).
    Fixed {
        /// The precomputed table.
        table: &'a FixedBaseTable,
        /// Its exponent.
        exp: &'a BigUint,
    },
}

/// Sliding-window size for a single exponentiation of `bits` bits,
/// balancing the `2^(w-1)`-entry table cost against saved multiplies.
fn window_for_bits(bits: usize) -> usize {
    match bits {
        0..=24 => 1,
        25..=80 => 3,
        81..=240 => 4,
        241..=768 => 5,
        _ => 6,
    }
}

impl Montgomery {
    /// Builds a context for the odd modulus `m`.
    ///
    /// Returns `None` if `m` is even or `≤ 1` (Montgomery reduction requires
    /// `gcd(m, 2^64) = 1`).
    pub fn new(m: &BigUint) -> Option<Self> {
        if m.is_even() || m.is_zero() || m.is_one() {
            return None;
        }
        let n = m.limbs().len();
        // Newton–Hensel: invert m mod 2^64 (5 iterations double precision
        // each time: 2^4 → 2^64).
        let m0 = m.limbs()[0];
        let mut inv: u64 = m0; // correct mod 2^4 for odd m0 (actually mod 8)
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let m_inv_neg = inv.wrapping_neg();
        // R² mod m via shifting (2n limbs = 128·n bits doubling).
        let r2 = BigUint::one().shl(128 * n).rem(m);
        let r1 = BigUint::one().shl(64 * n).rem(m);
        Some(Montgomery {
            m: m.clone(),
            n,
            m_inv_neg,
            r2,
            r1,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// Montgomery reduction: given `t < m·R`, returns `t·R^{-1} mod m`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let n = self.n;
        let m_limbs = self.m.limbs();
        let mut work: Vec<u64> = vec![0; 2 * n + 1];
        let t_limbs = t.limbs();
        work[..t_limbs.len()].copy_from_slice(t_limbs);
        for i in 0..n {
            let u = work[i].wrapping_mul(self.m_inv_neg);
            // work += u * m << (64*i)
            let mut carry: u128 = 0;
            for (j, &mj) in m_limbs.iter().enumerate() {
                let cur = work[i + j] as u128 + (u as u128) * (mj as u128) + carry;
                work[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + n;
            while carry != 0 {
                let cur = work[k] as u128 + carry;
                work[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BigUint::from_limbs(work[n..].to_vec());
        if out >= self.m {
            out = out.sub(&self.m);
        }
        out
    }

    /// Montgomery product: `a·b·R^{-1} mod m` for `a, b < m`.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&a.mul(b))
    }

    /// Converts into the Montgomery domain: `a·R mod m`.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(&a.rem(&self.m), &self.r2)
    }

    /// Leaves the Montgomery domain: `ã·R^{-1} mod m`.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.redc(a)
    }

    /// Full modular product `a·b mod m` without a trial division: one
    /// schoolbook multiply plus two REDC passes (enter, multiply-reduce),
    /// replacing the Knuth division of the generic `mul_mod`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let b = if b >= &self.m { b.rem(&self.m) } else { b.clone() };
        self.redc(&self.to_mont(a).mul(&b))
    }

    /// `base^exp mod m` via sliding-window (2^k-ary) square-and-multiply in
    /// the Montgomery domain. The window size adapts to the exponent length
    /// (4 for the 160–256-bit scalars the crypto layer uses), cutting the
    /// expected multiplies per bit from 0.5 to ≈ 0.2 versus
    /// [`Self::modpow_binary`].
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bits();
        if bits == 0 {
            return BigUint::one().rem(&self.m);
        }
        let w = window_for_bits(bits);
        if w == 1 {
            return self.modpow_binary(base, exp);
        }
        let base_m = self.to_mont(base);
        // Odd powers base^1, base^3, …, base^(2^w − 1), Montgomery form.
        let base_sq = self.mont_mul(&base_m, &base_m);
        let mut odd = Vec::with_capacity(1 << (w - 1));
        odd.push(base_m);
        for i in 1..(1usize << (w - 1)) {
            let next = self.mont_mul(&odd[i - 1], &base_sq);
            odd.push(next);
        }
        let mut acc: Option<BigUint> = None;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                // Singleton zero bit: square through it.
                let a = acc.as_mut().expect("leading bit of exp is set");
                *a = self.mont_mul(a, a);
                i -= 1;
                continue;
            }
            // Greedy window [j..=i] of ≤ w bits ending on a set bit, so the
            // digit is odd and lives in the precomputed table.
            let mut j = i - (w.min(i as usize + 1) as isize) + 1;
            while !exp.bit(j as usize) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let digit = exp.bits_range(j as usize, width);
            let entry = &odd[((digit - 1) / 2) as usize];
            acc = Some(match acc {
                Some(mut a) => {
                    for _ in 0..width {
                        a = self.mont_mul(&a, &a);
                    }
                    self.mont_mul(&a, entry)
                }
                None => entry.clone(),
            });
            i = j - 1;
        }
        self.redc(&acc.expect("bits > 0"))
    }

    /// `base^exp mod m` using plain left-to-right binary square-and-multiply
    /// in the Montgomery domain.
    ///
    /// This is the pre-windowing code path, kept as the E9 ablation baseline
    /// (`modpow_montgomery_cached` in `e9_crypto`) and as the windowed
    /// routine's short-exponent fallback.
    pub fn modpow_binary(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bits();
        if bits == 0 {
            return BigUint::one().rem(&self.m);
        }
        let base_m = self.to_mont(base);
        let mut acc = self.r1.clone();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // Leave the Montgomery domain: multiply by 1 (i.e. REDC once).
        self.redc(&acc)
    }

    /// Builds a radix-`2^4` comb table for `base`, covering exponents of up
    /// to `max_bits` bits (rounded up to a whole number of digits).
    ///
    /// One-time cost ≈ `max_bits/4 · 15` Montgomery products (≈ 600 for a
    /// 160-bit exponent range); afterwards [`Self::modpow_fixed`] evaluates
    /// any in-range exponent squaring-free.
    pub fn precompute(&self, base: &BigUint, max_bits: usize) -> FixedBaseTable {
        let w = 4usize;
        let positions = max_bits.div_ceil(w).max(1);
        let mut table = Vec::with_capacity(positions);
        // cur = base^(2^(w·pos)) in Montgomery form.
        let mut cur = self.to_mont(base);
        for _ in 0..positions {
            let mut row = Vec::with_capacity((1 << w) - 1);
            row.push(cur.clone());
            for d in 1..(1 << w) - 1 {
                let next = self.mont_mul(&row[d - 1], &cur);
                row.push(next);
            }
            // Advance: cur^(2^w) = row[2^w − 2] · cur (= cur^15 · cur).
            cur = self.mont_mul(&row[(1 << w) - 2], &cur);
            table.push(row);
        }
        FixedBaseTable { base: base.clone(), window: w, max_bits: positions * w, table }
    }

    /// `table.base^exp mod m` via the comb table — zero squarings for
    /// in-range exponents; falls back to [`Self::modpow`] past `max_bits`.
    pub fn modpow_fixed(&self, table: &FixedBaseTable, exp: &BigUint) -> BigUint {
        if exp.bits() > table.max_bits {
            return self.modpow(&table.base, exp);
        }
        self.redc(&self.comb_eval_mont(table, exp))
    }

    /// Comb evaluation in the Montgomery domain (exponent must fit).
    fn comb_eval_mont(&self, t: &FixedBaseTable, exp: &BigUint) -> BigUint {
        debug_assert!(exp.bits() <= t.max_bits);
        let w = t.window;
        let positions = exp.bits().div_ceil(w);
        let mut acc: Option<BigUint> = None;
        for (pos, row) in t.table.iter().enumerate().take(positions) {
            let d = exp.bits_range(pos * w, w);
            if d != 0 {
                let entry = &row[(d - 1) as usize];
                acc = Some(match acc {
                    Some(a) => self.mont_mul(&a, entry),
                    None => entry.clone(),
                });
            }
        }
        acc.unwrap_or_else(|| self.r1.clone())
    }

    /// Interleaved multi-exponentiation: `Π_i termᵢ mod m` in one pass.
    ///
    /// `Fixed` terms are evaluated through their comb tables (no squarings);
    /// `Plain` terms share one Straus/Shamir squaring chain whose length is
    /// the *longest plain exponent* — so mixing a table-backed full-width
    /// term with short plain exponents (the Feldman share check: tiny
    /// `i^k` exponents next to a 160-bit `g^share`) squares only up to the
    /// short exponents' width. Equal plain bases are merged by adding their
    /// exponents (always sound: `a^e1·a^e2 = a^(e1+e2)`).
    pub fn multi_exp(&self, terms: &[ExpTerm<'_>]) -> BigUint {
        let mut fixed_acc: Option<BigUint> = None;
        let mut plain: Vec<(&BigUint, BigUint)> = Vec::new();
        for term in terms {
            match term {
                ExpTerm::Fixed { table, exp } if exp.bits() <= table.max_bits => {
                    let part = self.comb_eval_mont(table, exp);
                    fixed_acc = Some(match fixed_acc {
                        Some(a) => self.mont_mul(&a, &part),
                        None => part,
                    });
                }
                // Out-of-range exponent: treat as a plain base.
                ExpTerm::Fixed { table, exp } => merge_term(&mut plain, &table.base, exp),
                ExpTerm::Plain { base, exp } => merge_term(&mut plain, base, exp),
            }
        }
        let straus = if plain.is_empty() {
            None
        } else {
            Some(self.straus_mont(&plain))
        };
        let combined = match (fixed_acc, straus) {
            (Some(f), Some(s)) => self.mont_mul(&f, &s),
            (Some(f), None) => f,
            (None, Some(s)) => s,
            (None, None) => return BigUint::one().rem(&self.m),
        };
        self.redc(&combined)
    }

    /// Straus/Shamir interleaving over plain `(base, exp)` pairs, result in
    /// Montgomery form. All pairs share one radix-`2^w` squaring chain.
    fn straus_mont(&self, pairs: &[(&BigUint, BigUint)]) -> BigUint {
        let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        if max_bits == 0 {
            return self.r1.clone();
        }
        // Narrow digits when every exponent is short (Feldman's i^k), wide
        // ones for full-width scalars.
        let w = if max_bits <= 16 { 2usize } else { 4 };
        let tables: Vec<Vec<BigUint>> = pairs
            .iter()
            .map(|(b, _)| {
                let b_m = self.to_mont(b);
                let mut t = Vec::with_capacity((1 << w) - 1);
                t.push(b_m.clone());
                for d in 1..(1 << w) - 1 {
                    let next = self.mont_mul(&t[d - 1], &b_m);
                    t.push(next);
                }
                t
            })
            .collect();
        let positions = max_bits.div_ceil(w);
        let mut acc: Option<BigUint> = None;
        for pos in (0..positions).rev() {
            if let Some(a) = acc.as_mut() {
                for _ in 0..w {
                    *a = self.mont_mul(a, a);
                }
            }
            for (i, (_, e)) in pairs.iter().enumerate() {
                let d = e.bits_range(pos * w, w);
                if d != 0 {
                    let entry = &tables[i][(d - 1) as usize];
                    acc = Some(match acc.take() {
                        Some(a) => self.mont_mul(&a, entry),
                        None => entry.clone(),
                    });
                }
            }
        }
        acc.unwrap_or_else(|| self.r1.clone())
    }
}

/// Adds a plain term, merging exponents of an already-seen base.
fn merge_term<'a>(plain: &mut Vec<(&'a BigUint, BigUint)>, base: &'a BigUint, exp: &BigUint) {
    // Call sites have a handful of distinct bases; linear scan is fine.
    for (b, e) in plain.iter_mut() {
        if *b == base {
            *e = e.add(exp);
            return;
        }
    }
    plain.push((base, exp.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&b(10)).is_none());
        assert!(Montgomery::new(&b(0)).is_none());
        assert!(Montgomery::new(&b(1)).is_none());
        assert!(Montgomery::new(&b(9)).is_some());
    }

    #[test]
    fn matches_generic_small() {
        let m = b(1_000_000_007);
        let ctx = Montgomery::new(&m).unwrap();
        for (base, exp) in [(0u64, 5u64), (1, 0), (2, 10), (12345, 67890), (999, 1)] {
            assert_eq!(
                ctx.modpow(&b(base), &b(exp)),
                b(base).modpow_generic(&b(exp), &m),
                "{base}^{exp}"
            );
        }
    }

    #[test]
    fn matches_generic_multi_limb() {
        let mut rng = StdRng::seed_from_u64(42);
        for limbs in [2usize, 4, 8] {
            let bound = BigUint::one().shl(64 * limbs);
            let mut m = BigUint::random_below(&mut rng, &bound);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = Montgomery::new(&m).unwrap();
            for _ in 0..10 {
                let base = BigUint::random_below(&mut rng, &bound);
                let exp = BigUint::random_below(&mut rng, &BigUint::one().shl(96));
                assert_eq!(
                    ctx.modpow(&base, &exp),
                    base.modpow_generic(&exp, &m),
                    "limbs {limbs}"
                );
            }
        }
    }

    #[test]
    fn base_larger_than_modulus_reduced() {
        let m = b(101);
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(
            ctx.modpow(&b(10_000), &b(3)),
            b(10_000).modpow_generic(&b(3), &m)
        );
    }

    #[test]
    fn windowed_matches_binary_and_generic() {
        let mut rng = StdRng::seed_from_u64(7);
        for limbs in [1usize, 3, 5] {
            let bound = BigUint::one().shl(64 * limbs);
            let mut m = BigUint::random_below(&mut rng, &bound);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = Montgomery::new(&m).unwrap();
            for exp_bits in [0usize, 1, 13, 64, 160, 300] {
                let base = BigUint::random_below(&mut rng, &bound);
                let exp = BigUint::random_below(&mut rng, &BigUint::one().shl(exp_bits.max(1)));
                let want = base.modpow_generic(&exp, &m);
                assert_eq!(ctx.modpow(&base, &exp), want, "windowed {limbs}l/{exp_bits}b");
                assert_eq!(ctx.modpow_binary(&base, &exp), want, "binary {limbs}l/{exp_bits}b");
            }
        }
    }

    #[test]
    fn fixed_base_matches_modpow() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&m).unwrap();
        let base = BigUint::random_below(&mut rng, &m);
        let table = ctx.precompute(&base, 126);
        for exp_bits in [0usize, 1, 7, 64, 126] {
            let exp = BigUint::random_below(&mut rng, &BigUint::one().shl(exp_bits.max(1)));
            assert_eq!(ctx.modpow_fixed(&table, &exp), ctx.modpow_binary(&base, &exp));
        }
        // Out-of-range exponent falls back to the windowed path.
        let big_exp = BigUint::random_below(&mut rng, &BigUint::one().shl(200));
        assert_eq!(ctx.modpow_fixed(&table, &big_exp), ctx.modpow_binary(&base, &big_exp));
    }

    #[test]
    fn multi_exp_matches_product_of_modpows() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&m).unwrap();
        let g = BigUint::random_below(&mut rng, &m);
        let table = ctx.precompute(&g, 126);
        for _ in 0..10 {
            let b1 = BigUint::random_below(&mut rng, &m);
            let b2 = BigUint::random_below(&mut rng, &m);
            let (e0, e1, e2) = (
                BigUint::random_below(&mut rng, &BigUint::one().shl(126)),
                BigUint::random_below(&mut rng, &BigUint::one().shl(126)),
                BigUint::random_below(&mut rng, &BigUint::one().shl(14)),
            );
            let got = ctx.multi_exp(&[
                ExpTerm::Fixed { table: &table, exp: &e0 },
                ExpTerm::Plain { base: &b1, exp: &e1 },
                ExpTerm::Plain { base: &b2, exp: &e2 },
                // Duplicate base: exponents must merge.
                ExpTerm::Plain { base: &b2, exp: &e1 },
            ]);
            let want = ctx
                .modpow_binary(&g, &e0)
                .mul_mod(&ctx.modpow_binary(&b1, &e1), &m)
                .mul_mod(&ctx.modpow_binary(&b2, &e2), &m)
                .mul_mod(&ctx.modpow_binary(&b2, &e1), &m);
            assert_eq!(got, want);
        }
        // Degenerate inputs.
        assert!(ctx.multi_exp(&[]).is_one());
        let zero = BigUint::zero();
        assert!(ctx
            .multi_exp(&[ExpTerm::Plain { base: &g, exp: &zero }])
            .is_one());
    }

    #[test]
    fn mont_mul_mod_matches_generic() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&m).unwrap();
        for _ in 0..20 {
            let a = BigUint::random_below(&mut rng, &BigUint::one().shl(160));
            let b = BigUint::random_below(&mut rng, &BigUint::one().shl(160));
            assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
        }
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // Known 128-bit prime: 2^127 − 1.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&p).unwrap();
        let a = b(123_456_789);
        let exp = p.sub(&BigUint::one());
        assert!(ctx.modpow(&a, &exp).is_one());
    }
}
