//! A persistent sharded worker pool for the round engines.
//!
//! The previous engine spawned one OS thread per honest node per round via
//! `thread::scope` — at `n = 64` and thousands of rounds that is hundreds of
//! thousands of thread spawns per run. [`WorkerPool`] instead keeps a fixed
//! set of workers alive for the whole `run_al`/`run_ul` call; each round the
//! engine publishes a batch of node slots and workers pull indices until the
//! batch is drained.
//!
//! # Determinism
//!
//! The pool never affects results: jobs receive disjoint `&mut` slots, write
//! their outputs into those slots, and the caller merges slot results in
//! index (i.e. `NodeId`) order after [`WorkerPool::for_each_mut`] returns.
//! Combined with per-`(node, round, tag)` derived randomness, the output is
//! bit-identical to sequential execution for any worker count — the
//! `prop_engine_determinism` suite proves this.
//!
//! # Panic safety
//!
//! A panicking job must not wedge the run: the worker catches the unwind,
//! records the payload, finishes draining the batch, and the panic is
//! re-raised on the *caller's* thread once the batch completes — the same
//! observable behavior as `thread::scope`, without poisoning the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Resolves the worker count for a new pool: an explicit request, else the
/// `PROAUTH_THREADS` environment variable, else available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The `PROAUTH_THREADS` override, if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var("PROAUTH_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// A batch published to the workers: a type-erased job function plus the
/// number of indices to claim. The raw pointer is only dereferenced while
/// the publishing `for_each_mut` call is blocked waiting for completion, so
/// the borrow it erases is always live (see `Shared::state` invariants).
struct Batch {
    job: *const (dyn Fn(usize) + Sync),
    njobs: usize,
    next: usize,
}

// SAFETY: the pointer is only sent to workers that dereference it under the
// epoch discipline described on `State`; the pointee is `Sync`.
unsafe impl Send for Batch {}

struct State {
    /// Monotonic batch counter; a worker only claims indices from a batch
    /// whose epoch matches the one it observed when it copied the job
    /// pointer, so a stale worker can never touch a newer batch's jobs.
    epoch: u64,
    batch: Option<Batch>,
    /// Jobs claimed but not yet completed, plus jobs not yet claimed.
    outstanding: usize,
    /// First panic payload captured from a job this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when a batch is published or shutdown is requested.
    work_cv: Condvar,
    /// Wakes the publisher when the last job of the batch completes.
    done_cv: Condvar,
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    // A worker that panicked inside the *pool machinery* (not a job — jobs
    // are caught) would poison this mutex; recovering keeps the remaining
    // workers serviceable rather than wedging every subsequent round.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of worker threads executing indexed batches.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({} workers)", self.workers.len())
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (`0` = auto, see
    /// [`resolve_threads`]).
    pub fn new(threads: usize) -> Self {
        let threads = resolve_threads(threads);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                batch: None,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("proauth-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(i, &mut items[i])` for every index, distributing indices over
    /// the workers. Blocks until every job has completed; panics from jobs
    /// are re-raised here after the batch drains.
    ///
    /// Each index is claimed exactly once, so each job holds the only `&mut`
    /// to its item for the duration of the call.
    pub fn for_each_mut<T: Send, F: Fn(usize, &mut T) + Sync>(&mut self, items: &mut [T], f: F) {
        let njobs = items.len();
        if njobs == 0 {
            return;
        }
        // Tiny batches are cheaper inline than over the condvar handshake.
        if njobs == 1 || self.workers.is_empty() {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        struct ItemsPtr<T>(*mut T);
        // SAFETY: each index is claimed exactly once per batch, so distinct
        // jobs receive disjoint &mut items; the slice outlives the batch
        // because this function blocks until `outstanding == 0`.
        unsafe impl<T: Send> Send for ItemsPtr<T> {}
        unsafe impl<T: Send> Sync for ItemsPtr<T> {}
        impl<T> ItemsPtr<T> {
            fn item(&self, i: usize) -> *mut T {
                // SAFETY: `i` is always within the published batch's bounds.
                unsafe { self.0.add(i) }
            }
        }
        let base = ItemsPtr(items.as_mut_ptr());
        let job = move |i: usize| {
            // SAFETY: the claiming discipline hands out each index once, so
            // this is the only live &mut to the item.
            let item: &mut T = unsafe { &mut *base.item(i) };
            f(i, item);
        };
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        // Erase the borrow: the pointer is dropped from worker reach before
        // this function returns (workers abandon a batch whose epoch no
        // longer matches, and the batch is cleared when the last job ends).
        let job_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(job_ref as *const _) };

        let epoch = {
            let mut st = lock_state(&self.shared);
            st.epoch += 1;
            st.batch = Some(Batch {
                job: job_ptr,
                njobs,
                next: 0,
            });
            st.outstanding = njobs;
            st.panic = None;
            self.shared.work_cv.notify_all();
            st.epoch
        };

        // The publishing thread works too: with W workers there are W+1
        // executors, and on a run where every worker is busy elsewhere the
        // batch still makes progress.
        run_batch_jobs(&self.shared, epoch);

        let mut st = lock_state(&self.shared);
        while st.outstanding > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.batch = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

/// Claims and runs jobs of batch `epoch` until it drains or is superseded.
fn run_batch_jobs(shared: &Shared, epoch: u64) {
    loop {
        let job_ptr = {
            let mut st = lock_state(shared);
            if st.epoch != epoch {
                return;
            }
            let Some(batch) = st.batch.as_mut() else {
                return;
            };
            if batch.next >= batch.njobs {
                return;
            }
            let i = batch.next;
            batch.next += 1;
            (batch.job, i)
        };
        let (job, i) = job_ptr;
        // SAFETY: the claim above succeeded under the state lock with a
        // matching epoch, so the publisher is still blocked in
        // `for_each_mut` and the closure behind `job` is live.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(i) }));
        let mut st = lock_state(shared);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let epoch = {
            let mut st = lock_state(shared);
            loop {
                if st.shutdown {
                    return;
                }
                let has_work = st
                    .batch
                    .as_ref()
                    .is_some_and(|b| b.next < b.njobs);
                if has_work {
                    break st.epoch;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_batch_jobs(shared, epoch);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let mut items: Vec<u64> = vec![0; 100];
        pool.for_each_mut(&mut items, |i, item| *item += i as u64 + 1);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(*item, i as u64 + 1);
        }
        // Reuse across batches (the whole point of persistence).
        pool.for_each_mut(&mut items, |_, item| *item *= 2);
        assert_eq!(items[9], 20);
    }

    #[test]
    fn empty_and_single_batches() {
        let mut pool = WorkerPool::new(2);
        let mut empty: Vec<u8> = Vec::new();
        pool.for_each_mut(&mut empty, |_, _| {});
        let mut one = vec![5u8];
        pool.for_each_mut(&mut one, |_, v| *v += 1);
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn single_worker_is_sequential_in_index_order() {
        // With one worker + the publisher there are two executors; order of
        // *execution* may interleave, but results per slot are still exact.
        let mut pool = WorkerPool::new(1);
        let mut items: Vec<usize> = (0..50).collect();
        pool.for_each_mut(&mut items, |i, v| *v = i * i);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn job_panic_propagates_without_wedging() {
        let mut pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let mut items: Vec<usize> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_mut(&mut items, |i, _| {
                if i == 3 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives and runs later batches normally.
        let mut items2 = vec![0u8; 8];
        pool.for_each_mut(&mut items2, |_, v| *v = 7);
        assert!(items2.iter().all(|&v| v == 7));
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
