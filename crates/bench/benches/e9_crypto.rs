//! E9 — substrate cost (Criterion): the "practically appealing" claim of §1.
//!
//! Micro-benchmarks for every cryptographic building block across group
//! sizes, the threshold-signing pipeline as `(n, t)` scales, the proactive
//! refresh, and the AUTH-SEND overhead factor versus a bare send.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use proauth_core::certify::{
    certify, mac_certify, session_key, ver_cert, ver_mac, DestCheck, LocalKeys,
};
use proauth_crypto::dkg::{self, KeyShare, ReceivedDealing};
use proauth_crypto::feldman::{self, Dealing, ShareCheck};
use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::refresh;
use proauth_crypto::schnorr::{self, SigningKey};
use proauth_crypto::thresh;
use proauth_pds::msg::signing_payload;
use proauth_pds::statement::key_statement;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::sha256::Sha256;
use proauth_sim::message::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dkg_keys(group: &Group, n: usize, t: usize, rng: &mut StdRng) -> Vec<KeyShare> {
    let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
        .map(|i| (i, dkg::deal(group, t, n, rng)))
        .collect();
    (1..=n as u32)
        .map(|me| {
            let inputs: Vec<ReceivedDealing> = dealings
                .iter()
                .map(|(dealer, d)| ReceivedDealing {
                    dealer: *dealer,
                    commitments: d.commitments.clone(),
                    share: d.share_for(me).clone(),
                })
                .collect();
            dkg::aggregate(group, t, n, me, &inputs).unwrap()
        })
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0xABu8; 1024];
    c.bench_function("sha256/1KiB", |b| b.iter(|| Sha256::digest(&data)));
}

fn bench_schnorr(c: &mut Criterion) {
    let mut g = c.benchmark_group("schnorr");
    for id in [GroupId::Toy64, GroupId::S256, GroupId::S512, GroupId::S1024] {
        let group = Group::new(id);
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SigningKey::generate(&group, &mut rng);
        let sig = sk.sign(b"bench message", &mut rng);
        g.bench_with_input(BenchmarkId::new("sign", id), &id, |b, _| {
            b.iter(|| sk.sign(b"bench message", &mut rng))
        });
        g.bench_with_input(BenchmarkId::new("verify", id), &id, |b, _| {
            b.iter(|| sk.verify_key().verify(b"bench message", &sig))
        });
    }
    g.finish();
}

fn bench_threshold_sign(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_sign");
    let group = Group::new(GroupId::S256);
    for (n, t) in [(5usize, 2usize), (9, 4), (13, 6)] {
        let mut rng = StdRng::seed_from_u64(2);
        let keys = dkg_keys(&group, n, t, &mut rng);
        let signer_set: Vec<u32> = (1..=(t + 1) as u32).collect();
        g.bench_with_input(
            BenchmarkId::new("full_round", format!("n{n}_t{t}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let nonces: Vec<(u32, thresh::Nonce)> = signer_set
                        .iter()
                        .map(|&i| (i, thresh::generate_nonce(&group, &mut rng)))
                        .collect();
                    let commitments: Vec<BigUint> =
                        nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
                    let r = thresh::combine_nonces(&group, &commitments);
                    let e =
                        thresh::challenge(&group, &r, &keys[0].public_key, b"threshold bench");
                    let partials: Vec<BigUint> = nonces
                        .iter()
                        .map(|(i, nonce)| {
                            thresh::partial_sign(
                                &group,
                                &keys[(*i - 1) as usize],
                                &signer_set,
                                nonce,
                                &e,
                            )
                        })
                        .collect();
                    thresh::combine_partials(&group, &e, &partials)
                })
            },
        );
    }
    g.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("proactive_refresh");
    let group = Group::new(GroupId::S256);
    for (n, t) in [(5usize, 2usize), (9, 4)] {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = dkg_keys(&group, n, t, &mut rng);
        g.bench_with_input(
            BenchmarkId::new("deal_and_apply", format!("n{n}_t{t}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
                        .map(|i| (i, refresh::deal_update(&group, t, n, &mut rng)))
                        .collect();
                    let updates: Vec<refresh::ReceivedUpdate> = dealings
                        .iter()
                        .map(|(dealer, d)| refresh::ReceivedUpdate {
                            dealer: *dealer,
                            commitments: d.commitments.clone(),
                            share: d.share_for(1).clone(),
                        })
                        .collect();
                    refresh::apply_updates(&group, t, &keys[0], &updates).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_auth_send_overhead(c: &mut Criterion) {
    // CERTIFY + VER-CERT cost per message vs a plain SHA-256 "checksum send".
    let mut g = c.benchmark_group("auth_send_overhead");
    let group = Group::new(GroupId::S256);
    let mut rng = StdRng::seed_from_u64(4);
    let ca = SigningKey::generate(&group, &mut rng);
    let mut keys = LocalKeys::generate(&group, 1, &mut rng);
    let st = key_statement(NodeId(1), 1, &keys.vk_bytes());
    keys.cert = Some(ca.sign(&signing_payload(&st, 1), &mut rng));
    let payload = vec![0x55u8; 256];

    g.bench_function("certify", |b| {
        b.iter(|| certify(&keys, &payload, NodeId(1), NodeId(2), 40, &mut rng).unwrap())
    });
    let msg = certify(&keys, &payload, NodeId(1), NodeId(2), 40, &mut rng).unwrap();
    let v_cert = ca.verify_key().element().clone();
    g.bench_function("ver_cert", |b| {
        b.iter(|| {
            ver_cert(
                &group,
                DestCheck::Me(NodeId(2)),
                NodeId(1),
                1,
                40,
                &msg,
                &v_cert,
            )
        })
    });
    g.bench_function("baseline_sha256_only", |b| b.iter(|| Sha256::digest(&payload)));

    // The §1.3 shared-key mode: session-MAC authenticate/verify. Key
    // derivation happens once per (peer, unit); the per-message cost is two
    // hashes each way.
    let peer = LocalKeys::generate(&group, 1, &mut rng);
    let key = session_key(&group, &keys.signing, peer.signing.verify_key().element(), 1)
        .expect("valid peer key");
    g.bench_function("mac_certify", |b| {
        b.iter(|| mac_certify(&keys, &key, &payload, NodeId(1), NodeId(2), 40).unwrap())
    });
    let mmsg = mac_certify(&keys, &key, &payload, NodeId(1), NodeId(2), 40).unwrap();
    g.bench_function("ver_mac", |b| {
        b.iter(|| ver_mac(NodeId(2), NodeId(1), 1, 40, &mmsg, &key))
    });
    g.bench_function("session_key_derive_once", |b| {
        b.iter(|| {
            session_key(&group, &keys.signing, peer.signing.verify_key().element(), 1).unwrap()
        })
    });
    g.finish();
}

/// The fast-exponentiation layer ablation at s256: each row isolates one
/// optimization against the seed (binary / per-item) code path it replaced.
fn bench_fastexp_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastexp_ablation");
    let group = Group::new(GroupId::S256);
    let mut rng = StdRng::seed_from_u64(6);

    // --- raw exponentiation: binary vs windowed vs fixed-base comb ---
    let base = group.exp_g(&group.random_scalar(&mut rng));
    let exp = group.random_scalar(&mut rng);
    g.bench_function("exp/binary", |b| {
        b.iter(|| group.exp_binary(black_box(&base), black_box(&exp)))
    });
    g.bench_function("exp/windowed", |b| {
        b.iter(|| group.exp(black_box(&base), black_box(&exp)))
    });
    g.bench_function("exp_g/fixed_base_comb", |b| {
        b.iter(|| group.exp_g(black_box(&exp)))
    });

    // --- Schnorr verify: two binary exps vs one interleaved multi-exp ---
    let sk = SigningKey::generate(&group, &mut rng);
    let sig = sk.sign(b"ablation message", &mut rng);
    g.bench_function("schnorr_verify/naive", |b| {
        b.iter(|| sk.verify_key().verify_naive(b"ablation message", &sig))
    });
    g.bench_function("schnorr_verify/multi_exp", |b| {
        b.iter(|| sk.verify_key().verify(b"ablation message", &sig))
    });
    // Batched certificate shape: 8 signatures under one key (per batch, so
    // divide by 8 for the per-signature cost).
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("cert-{i}").into_bytes()).collect();
    let sigs: Vec<schnorr::Signature> = msgs.iter().map(|m| sk.sign(m, &mut rng)).collect();
    let items: Vec<(&[u8], &schnorr::Signature)> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    g.bench_function("schnorr_verify/batch8_naive", |b| {
        b.iter(|| items.iter().all(|(m, s)| sk.verify_key().verify_naive(m, s)))
    });
    g.bench_function("schnorr_verify/batch8", |b| {
        b.iter(|| schnorr::batch_verify(sk.verify_key(), &items))
    });

    // --- Feldman share verification: per-term exps vs multi-exp vs RLC batch ---
    let (n, t) = (5usize, 2usize);
    let secret = group.random_scalar(&mut rng);
    let dealing = Dealing::deal(&group, t, n, secret, &mut rng);
    g.bench_function("feldman_share_verify/naive", |b| {
        b.iter(|| dealing.commitments.verify_share_in_naive(&group, 3, dealing.share_for(3)))
    });
    g.bench_function("feldman_share_verify/multi_exp", |b| {
        b.iter(|| dealing.commitments.verify_share_in(&group, 3, dealing.share_for(3)))
    });
    // Batched aggregate shape: n dealings checked at once (one RLC equation
    // instead of n share verifications; divide by 5 for per-share cost).
    let dealings: Vec<Dealing> = (0..n)
        .map(|_| {
            let s = group.random_scalar(&mut rng);
            Dealing::deal(&group, t, n, s, &mut rng)
        })
        .collect();
    let checks: Vec<ShareCheck<'_>> = dealings
        .iter()
        .map(|d| ShareCheck {
            commitments: &d.commitments,
            index: 3,
            share: d.share_for(3),
        })
        .collect();
    g.bench_function("feldman_share_verify/batch5_naive", |b| {
        b.iter(|| {
            checks
                .iter()
                .all(|c| c.commitments.verify_share_in_naive(&group, c.index, c.share))
        })
    });
    g.bench_function("feldman_share_verify/batch5", |b| {
        b.iter(|| feldman::batch_verify_shares(&group, &checks))
    });
    g.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigint");
    for bits in [256usize, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = BigUint::one().shl(bits);
        let a = BigUint::random_below(&mut rng, &bound);
        let b_val = BigUint::random_below(&mut rng, &bound);
        let m = {
            let mut m = BigUint::random_below(&mut rng, &bound);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            m
        };
        g.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bch, _| {
            bch.iter(|| a.mul(&b_val))
        });
        g.bench_with_input(BenchmarkId::new("modpow", bits), &bits, |bch, _| {
            bch.iter(|| a.modpow(&b_val, &m))
        });
        // Ablation: the generic (Knuth-division) reference path vs the
        // Montgomery path modpow dispatches to for odd moduli.
        g.bench_with_input(
            BenchmarkId::new("modpow_generic", bits),
            &bits,
            |bch, _| bch.iter(|| a.modpow_generic(&b_val, &m)),
        );
        let ctx = proauth_primitives::montgomery::Montgomery::new(&m).unwrap();
        g.bench_with_input(
            BenchmarkId::new("modpow_montgomery_cached", bits),
            &bits,
            |bch, _| bch.iter(|| ctx.modpow(&a, &b_val)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hash, bench_bigint, bench_fastexp_ablation, bench_schnorr,
              bench_threshold_sign, bench_refresh, bench_auth_send_overhead
}
criterion_main!(benches);
