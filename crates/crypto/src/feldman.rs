//! Feldman verifiable secret sharing.
//!
//! A dealer publishing commitments `C_k = g^{a_k}` to the coefficients of its
//! Shamir polynomial lets every receiver check its share non-interactively:
//! `g^{f(i)} = Π_k C_k^{i^k}`. This is the verifiability layer used by the
//! joint-Feldman DKG ([`crate::dkg`]), by partial-signature verification in
//! [`crate::thresh`], and by the proactive update/recovery dealings in
//! [`crate::refresh`].
//!
//! # Examples
//!
//! ```
//! use proauth_crypto::group::{Group, GroupId};
//! use proauth_crypto::shamir::Polynomial;
//! use proauth_crypto::feldman::Commitments;
//!
//! let group = Group::new(GroupId::Toy64);
//! let mut rng = rand::thread_rng();
//! let poly = Polynomial::random(&group, 2, &mut rng);
//! let comms = Commitments::from_polynomial(&group, &poly);
//! assert!(comms.verify_share_in(&group, 3, &poly.eval_at(3)));
//! ```

use crate::group::Group;
use crate::shamir::Polynomial;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

/// Feldman coefficient commitments `C_k = g^{a_k}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commitments {
    c: Vec<BigUint>,
}

impl Commitments {
    /// Commits to every coefficient of `poly`.
    pub fn from_polynomial(group: &Group, poly: &Polynomial) -> Self {
        Commitments {
            c: poly.coeffs().iter().map(|a| group.exp_g(a)).collect(),
        }
    }

    /// Constructs from raw commitment elements, validating group membership.
    ///
    /// Returns `None` if any element is not in the group or the list is empty.
    pub fn from_elements(group: &Group, c: Vec<BigUint>) -> Option<Self> {
        if c.is_empty() || !c.iter().all(|e| group.contains(e)) {
            return None;
        }
        Some(Commitments { c })
    }

    /// The committed polynomial degree.
    pub fn degree(&self) -> usize {
        self.c.len() - 1
    }

    /// Commitment to the secret: `C_0 = g^{f(0)}`.
    pub fn secret_commitment(&self) -> &BigUint {
        &self.c[0]
    }

    /// The raw commitment elements.
    pub fn elements(&self) -> &[BigUint] {
        &self.c
    }

    /// Computes `g^{f(i)}` "in the exponent": `Π_k C_k^{i^k} mod p`.
    pub fn eval_in_exponent(&self, group: &Group, i: u32) -> BigUint {
        let q = group.q();
        let i_scalar = BigUint::from_u64(i as u64).rem(q);
        let mut acc = group.identity();
        let mut i_pow = BigUint::one();
        for ck in &self.c {
            acc = group.mul(&acc, &group.exp(ck, &i_pow));
            i_pow = i_pow.mul_mod(&i_scalar, q);
        }
        acc
    }

    /// Verifies that `share` equals `f(i)` for the committed polynomial.
    pub fn verify_share_in(&self, group: &Group, i: u32, share: &BigUint) -> bool {
        if share >= group.q() {
            return false;
        }
        group.exp_g(share) == self.eval_in_exponent(group, i)
    }

    /// Pointwise product of commitments: commits to the *sum* polynomial.
    ///
    /// # Panics
    ///
    /// Panics if degrees differ.
    pub fn combine(&self, group: &Group, other: &Commitments) -> Commitments {
        assert_eq!(self.c.len(), other.c.len(), "degree mismatch");
        Commitments {
            c: self
                .c
                .iter()
                .zip(&other.c)
                .map(|(a, b)| group.mul(a, b))
                .collect(),
        }
    }
}

impl Encode for Commitments {
    fn encode(&self, w: &mut Writer) {
        self.c.encode(w);
    }
}

impl Decode for Commitments {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let c = Vec::<BigUint>::decode(r)?;
        if c.is_empty() {
            return Err(WireError::BadLength);
        }
        Ok(Commitments { c })
    }
}

/// A full Feldman dealing: public commitments plus the per-node shares
/// (`shares[i-1]` is node `i`'s share). The dealer sends each node its share
/// privately and the commitments to everyone.
#[derive(Debug, Clone)]
pub struct Dealing {
    /// Public part.
    pub commitments: Commitments,
    /// Private shares, indexed by node (1-based node `i` ↦ `shares[i-1]`).
    pub shares: Vec<BigUint>,
}

impl Dealing {
    /// Deals a random degree-`threshold` sharing of `secret` to `n` nodes.
    pub fn deal<R: rand::RngCore>(
        group: &Group,
        threshold: usize,
        n: usize,
        secret: BigUint,
        rng: &mut R,
    ) -> Self {
        let poly = Polynomial::random_with_secret(group, threshold, secret, rng);
        Self::from_polynomial(group, &poly, n)
    }

    /// Deals a sharing of zero (used by proactive refresh).
    pub fn deal_zero<R: rand::RngCore>(
        group: &Group,
        threshold: usize,
        n: usize,
        rng: &mut R,
    ) -> Self {
        Self::deal(group, threshold, n, BigUint::zero(), rng)
    }

    /// Builds the dealing for an explicit polynomial.
    pub fn from_polynomial(group: &Group, poly: &Polynomial, n: usize) -> Self {
        Dealing {
            commitments: Commitments::from_polynomial(group, poly),
            shares: (1..=n as u32).map(|i| poly.eval_at(i)).collect(),
        }
    }

    /// Node `i`'s share (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn share_for(&self, i: u32) -> &BigUint {
        &self.shares[(i - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::new(GroupId::Toy64), StdRng::seed_from_u64(21))
    }

    #[test]
    fn honest_shares_verify() {
        let (group, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let dealing = Dealing::deal(&group, 2, 5, secret.clone(), &mut rng);
        for i in 1..=5u32 {
            assert!(dealing
                .commitments
                .verify_share_in(&group, i, dealing.share_for(i)));
        }
        assert_eq!(
            dealing.commitments.secret_commitment(),
            &group.exp_g(&secret)
        );
    }

    #[test]
    fn tampered_share_rejected() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 2, 5, BigUint::from_u64(7), &mut rng);
        let bad = group.scalar_add(dealing.share_for(3), &BigUint::one());
        assert!(!dealing.commitments.verify_share_in(&group, 3, &bad));
        // Share valid for node 3 is not valid for node 4 (w.h.p.).
        assert!(!dealing
            .commitments
            .verify_share_in(&group, 4, dealing.share_for(3)));
    }

    #[test]
    fn out_of_range_share_rejected() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 1, 3, BigUint::zero(), &mut rng);
        let oversized = dealing.share_for(1).add(group.q());
        assert!(!dealing.commitments.verify_share_in(&group, 1, &oversized));
    }

    #[test]
    fn zero_dealing_has_identity_secret_commitment() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal_zero(&group, 2, 5, &mut rng);
        assert!(dealing.commitments.secret_commitment().is_one());
        for i in 1..=5u32 {
            assert!(dealing
                .commitments
                .verify_share_in(&group, i, dealing.share_for(i)));
        }
    }

    #[test]
    fn combine_commits_to_sum() {
        let (group, mut rng) = setup();
        let d1 = Dealing::deal(&group, 2, 4, BigUint::from_u64(3), &mut rng);
        let d2 = Dealing::deal(&group, 2, 4, BigUint::from_u64(9), &mut rng);
        let combined = d1.commitments.combine(&group, &d2.commitments);
        for i in 1..=4u32 {
            let sum_share = group.scalar_add(d1.share_for(i), d2.share_for(i));
            assert!(combined.verify_share_in(&group, i, &sum_share));
        }
        assert_eq!(
            combined.secret_commitment(),
            &group.exp_g(&BigUint::from_u64(12))
        );
    }

    #[test]
    fn eval_in_exponent_matches_direct() {
        let (group, mut rng) = setup();
        let poly = Polynomial::random(&group, 3, &mut rng);
        let comms = Commitments::from_polynomial(&group, &poly);
        for i in [1u32, 2, 9, 20] {
            assert_eq!(
                comms.eval_in_exponent(&group, i),
                group.exp_g(&poly.eval_at(i))
            );
        }
    }

    #[test]
    fn wire_roundtrip() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 2, 3, BigUint::from_u64(5), &mut rng);
        let bytes = dealing.commitments.to_bytes();
        let decoded = Commitments::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, dealing.commitments);
    }

    #[test]
    fn from_elements_validates() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 1, 3, BigUint::one(), &mut rng);
        let elems = dealing.commitments.elements().to_vec();
        assert!(Commitments::from_elements(&group, elems).is_some());
        assert!(Commitments::from_elements(&group, vec![]).is_none());
        assert!(Commitments::from_elements(&group, vec![BigUint::zero()]).is_none());
    }
}
