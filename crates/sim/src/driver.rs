//! The transport-agnostic protocol core: one node step, independent of the
//! engine that drives it.
//!
//! Both execution backends — the in-process round engine ([`crate::runner`])
//! and the multi-process socket daemon ([`crate::net`]) — advance a node the
//! same way: derive the per-(node, round) randomness, hand the node its inbox
//! and ROM through a [`RoundCtx`], convert a panicking step into a
//! crash-stop, and collect the outbox plus freshly appended output events.
//! This module owns that step, so the two backends cannot drift: a node
//! driven over sockets produces bit-identical outputs to the same node inside
//! the simulator, given the same seed and delivery order.
//!
//! [`NodeDriver`] is the step-in/step-out interface an engine consumes;
//! [`ProcessDriver`] adapts any [`Process`] (the node programs in `core` /
//! `pds` are already pure state machines) by owning its state, ROM, and
//! output log.

use crate::clock::TimeView;
use crate::message::{Envelope, NodeId, OutboxEntry, OutputEvent, OutputLog};
use crate::process::{Process, Rom, RoundCtx, SetupCtx};
use proauth_primitives::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the deterministic per-(node, round) RNG — the paper's `r_{i,w}`,
/// seeded outside corruptible node state. Every backend must use this exact
/// derivation for results to be comparable across engines.
pub fn round_rng(seed: u64, node: u32, round: u64, tag: &str) -> StdRng {
    let digest = sha256::hash_parts(
        "proauth/sim/rng",
        &[
            tag.as_bytes(),
            &seed.to_be_bytes(),
            &node.to_be_bytes(),
            &round.to_be_bytes(),
        ],
    );
    StdRng::from_seed(digest)
}

/// What one round step produced, beyond the outbox the caller supplied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Alerts among the events appended this round.
    pub alerts: u64,
    /// The step panicked: the partial round (events, outbox) was discarded
    /// and the node must be treated as crash-stopped from this round on.
    pub panicked: bool,
}

/// Executes one adversary-free setup round of `node` into `outbox`.
///
/// Shared by the simulator's setup loop and the daemon's setup barrier: same
/// randomness derivation, same context construction. Setup is faithful by
/// model (§2.1), so there is no panic conversion — a panicking setup is a
/// programming error and propagates.
#[allow(clippy::too_many_arguments)]
pub fn step_setup<P: Process>(
    seed: u64,
    setup_round: u64,
    me: NodeId,
    n: usize,
    node: &mut P,
    rom: &mut Rom,
    inbox: &[Envelope],
    outbox: &mut Vec<OutboxEntry>,
) {
    let mut rng = round_rng(seed, me.0, setup_round, "setup");
    let mut ctx = SetupCtx {
        setup_round,
        me,
        n,
        inbox,
        rom,
        rng: &mut rng,
        outbox,
    };
    node.on_setup_round(&mut ctx);
}

/// Executes one post-setup round of `node` into `outbox`, appending events to
/// `output`.
///
/// Semantics shared by every backend:
///
/// * randomness is `round_rng(seed, me, round, "round")`;
/// * a panicking step is caught and reported instead of aborting the run —
///   the node's partial round (output events, outbox) is discarded, as a
///   crashed machine's un-sent messages would be;
/// * alerts are counted incrementally over the events appended this round
///   only (long runs stay linear in total events).
#[allow(clippy::too_many_arguments)]
pub fn step_round<P: Process>(
    seed: u64,
    time: TimeView,
    me: NodeId,
    n: usize,
    node: &mut P,
    rom: &Rom,
    output: &mut OutputLog,
    inbox: &[Envelope],
    input: Option<&[u8]>,
    outbox: &mut Vec<OutboxEntry>,
) -> StepReport {
    let mut rng = round_rng(seed, me.0, time.round, "round");
    let out_start = output.len();
    let panicked = {
        let mut ctx = RoundCtx {
            time,
            me,
            n,
            inbox,
            rom,
            rng: &mut rng,
            input,
            outbox,
            output,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| node.on_round(&mut ctx)))
            .is_err()
    };
    if panicked {
        output.truncate(out_start);
        outbox.clear();
        return StepReport {
            alerts: 0,
            panicked: true,
        };
    }
    let alerts = output[out_start..]
        .iter()
        .filter(|(_, e)| *e == OutputEvent::Alert)
        .count() as u64;
    StepReport {
        alerts,
        panicked: false,
    }
}

/// The step-in/step-out interface an engine drives a node through.
///
/// An engine (in-process or socket daemon) owns delivery, pacing, and the
/// adversary boundary; the driver owns everything node-local — program state,
/// ROM, output log, randomness derivation. `setup_step` / `round_step` take
/// the round's deliveries in and hand the node's transmissions out.
pub trait NodeDriver {
    /// This node's id.
    fn id(&self) -> NodeId;

    /// Executes one adversary-free setup round.
    fn setup_step(&mut self, setup_round: u64, inbox: &[Envelope]) -> Vec<OutboxEntry>;

    /// Executes one post-setup round.
    fn round_step(
        &mut self,
        time: TimeView,
        inbox: &[Envelope],
        input: Option<&[u8]>,
    ) -> (Vec<OutboxEntry>, StepReport);

    /// The node's ROM (frozen after setup).
    fn rom(&self) -> &Rom;

    /// The node's full output log so far.
    fn output(&self) -> &OutputLog;

    /// Events appended since the previous call (for engines that stream the
    /// output log incrementally, like the daemon's reporter connection).
    fn drain_new_events(&mut self) -> Vec<(u64, OutputEvent)>;
}

/// Adapts any [`Process`] into a [`NodeDriver`] by owning its state, ROM,
/// and output log.
pub struct ProcessDriver<P> {
    node: P,
    me: NodeId,
    n: usize,
    seed: u64,
    rom: Rom,
    output: OutputLog,
    /// Index into `output` up to which events have been drained.
    drained: usize,
}

impl<P: Process> ProcessDriver<P> {
    /// Wraps `node` as node `me` of an `n`-node network under `seed`.
    pub fn new(node: P, me: NodeId, n: usize, seed: u64) -> Self {
        ProcessDriver {
            node,
            me,
            n,
            seed,
            rom: Rom::new(),
            output: OutputLog::new(),
            drained: 0,
        }
    }

    /// Wraps `node` with a pre-existing ROM — the restart path. Matches the
    /// engine's crash/restart semantics (PR 5): a restarted node is a fresh
    /// instance plus the ROM frozen at the end of setup; it never re-runs
    /// setup, and recovers lost in-memory shares via the next refresh. The
    /// daemon's rejoin path loads the ROM from the durable state dir and
    /// builds its driver through here.
    pub fn with_rom(node: P, me: NodeId, n: usize, seed: u64, rom: Rom) -> Self {
        ProcessDriver {
            node,
            me,
            n,
            seed,
            rom,
            output: OutputLog::new(),
            drained: 0,
        }
    }

    /// The wrapped node (e.g. for state inspection in tests).
    pub fn node(&self) -> &P {
        &self.node
    }

    /// Consumes the driver, returning the node's ROM and output log.
    pub fn into_parts(self) -> (Rom, OutputLog) {
        (self.rom, self.output)
    }
}

impl<P: Process> NodeDriver for ProcessDriver<P> {
    fn id(&self) -> NodeId {
        self.me
    }

    fn setup_step(&mut self, setup_round: u64, inbox: &[Envelope]) -> Vec<OutboxEntry> {
        let mut outbox = Vec::new();
        step_setup(
            self.seed,
            setup_round,
            self.me,
            self.n,
            &mut self.node,
            &mut self.rom,
            inbox,
            &mut outbox,
        );
        outbox
    }

    fn round_step(
        &mut self,
        time: TimeView,
        inbox: &[Envelope],
        input: Option<&[u8]>,
    ) -> (Vec<OutboxEntry>, StepReport) {
        let mut outbox = Vec::new();
        let report = step_round(
            self.seed,
            time,
            self.me,
            self.n,
            &mut self.node,
            &self.rom,
            &mut self.output,
            inbox,
            input,
            &mut outbox,
        );
        // A panicked step discarded its partial events; keep the drain
        // cursor consistent with the truncated log.
        self.drained = self.drained.min(self.output.len());
        (outbox, report)
    }

    fn rom(&self) -> &Rom {
        &self.rom
    }

    fn output(&self) -> &OutputLog {
        &self.output
    }

    fn drain_new_events(&mut self) -> Vec<(u64, OutputEvent)> {
        let new = self.output[self.drained..].to_vec();
        self.drained = self.output.len();
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Schedule;
    use std::any::Any;

    struct Echo {
        seen: u64,
    }

    impl Process for Echo {
        fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
            if ctx.setup_round == 0 {
                ctx.rom.write("tag", vec![ctx.me.0 as u8]);
                ctx.send_all(vec![0x5e]);
            }
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            self.seen += ctx.inbox.len() as u64;
            ctx.send_all(vec![ctx.time.round as u8]);
            ctx.emit(OutputEvent::Custom(format!("r{}", ctx.time.round)));
            if ctx.time.round == 3 {
                panic!("boom");
            }
        }
        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn process_driver_steps_and_streams() {
        let sched = Schedule::new(10, 2, 2);
        let mut d = ProcessDriver::new(Echo { seen: 0 }, NodeId(1), 3, 7);
        let out = d.setup_step(0, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fanout(), 2);
        assert_eq!(d.rom().read("tag"), Some(&[1u8][..]));

        let (out, rep) = d.round_step(TimeView::at(&sched, 0), &[], None);
        assert!(!rep.panicked);
        assert_eq!(out.len(), 1);
        assert_eq!(d.drain_new_events().len(), 1);
        assert!(d.drain_new_events().is_empty());

        // Round 3 panics: partial round discarded, reported as crash.
        let (_, _) = d.round_step(TimeView::at(&sched, 1), &[], None);
        let (out, rep) = d.round_step(TimeView::at(&sched, 3), &[], None);
        assert!(rep.panicked);
        assert!(out.is_empty());
        // The panicked round's event was truncated away.
        assert_eq!(d.drain_new_events().len(), 1); // round 1's event only
    }

    #[test]
    fn driver_rng_matches_engine_rng() {
        // The step functions must use the exact engine derivation; guard the
        // tag strings against drift.
        use rand::RngCore;
        let mut a = round_rng(9, 2, 5, "round");
        let mut b = round_rng(9, 2, 5, "round");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = round_rng(9, 2, 5, "setup");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
