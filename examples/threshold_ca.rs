//! Using the PDS directly as a proactively-secure distributed certification
//! authority: documents are threshold-signed by the node quorum, verified
//! against a single unchanging public key, and the signing key's shares are
//! refreshed every time unit — so even an adversary that breaks into every
//! node *eventually* (but at most `t` per unit) never learns the key.
//!
//! ```text
//! cargo run -p proauth-examples --bin threshold_ca
//! ```

use proauth_core::authenticator::NullApp;
use proauth_core::uls::{sign_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul_with_inputs, SimConfig};

fn main() {
    let n = 5;
    let t = 2;
    let schedule = uls_schedule(16);
    let units = 3u64;
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = 21;

    // One document per unit, requested at the start of each normal phase.
    let docs: Vec<(u64, &str)> = vec![
        (0, "release-v1.0.tar.gz sha256=ab12..."),
        (1, "release-v1.1.tar.gz sha256=cd34..."),
        (2, "revocation: key k-7781 compromised"),
    ];
    let request_round = |unit: u64| {
        if unit == 0 {
            2
        } else {
            unit * schedule.unit_rounds + schedule.refresh_rounds() + 2
        }
    };

    println!("distributed CA: n = {n} signers, threshold t+1 = {} of {n}", t + 1);
    println!("one verification key for the system's whole lifetime; shares refreshed per unit\n");

    let group = Group::new(GroupId::Toy64);
    let docs_for_input = docs.clone();
    let result = run_ul_with_inputs(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, NullApp),
        &mut FaithfulUl,
        move |_, round| {
            docs_for_input
                .iter()
                .find(|(unit, _)| request_round(*unit) == round)
                .map(|(_, doc)| sign_input(doc.as_bytes()))
        },
    );

    println!("signing log:");
    for (unit, doc) in &docs {
        let signers_reporting = result
            .outputs
            .iter()
            .filter(|log| {
                log.iter().any(|(_, ev)| {
                    matches!(ev, OutputEvent::Signed { msg, unit: u }
                        if msg == doc.as_bytes() && u == unit)
                })
            })
            .count();
        println!(
            "  unit {unit}: \"{doc}\" — threshold signature obtained, {signers_reporting}/{n} \
             nodes hold it"
        );
    }

    // Conformance with the ideal signature process of §3.1.
    let checker = IdealChecker::new(t);
    let all: Vec<NodeId> = NodeId::all(n).collect();
    let violations = checker.check(&result.outputs, &all, &[], &schedule);
    println!(
        "\nideal-process conformance (Definition 12 invariants): {} violations",
        violations.len()
    );
    assert!(violations.is_empty());

    println!(
        "each signature was produced in a different *share epoch*: exposing any {t} shares \
         from one epoch (the (t,t)-limit) reveals nothing about the signing key."
    );
}
