//! Messages, node identifiers, and per-round outputs.

use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply clonable message payload.
///
/// Payloads are written once (by the sending node or the adversary) and then
/// fan out through the delivery map, DISPERSE relays, pending inboxes, and
/// transcripts. Backing them with `Arc<[u8]>` makes every one of those copies
/// a reference-count bump instead of a heap copy, which is what lets the
/// round engine clone envelopes freely on the hot path.
pub type Payload = Arc<[u8]>;

/// A node identifier, 1-based (matching the Shamir evaluation points used by
/// the crypto layer). `NodeId(0)` is never a valid node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The 0-based vector index for this node.
    pub fn idx(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Builds a `NodeId` from a 0-based index.
    pub fn from_idx(idx: usize) -> Self {
        NodeId(idx as u32 + 1)
    }

    /// Iterates all node ids for an `n`-node network.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (1..=n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A message in flight: `from` is the *claimed* sender (in the UL model the
/// adversary may claim anything), `to` the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Claimed sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Opaque payload (upper layers encode/decode with `proauth-primitives::wire`).
    /// Shared, immutable bytes: cloning an envelope never copies the payload.
    pub payload: Payload,
}

impl Envelope {
    /// Convenience constructor. Accepts anything convertible into a shared
    /// payload (`Vec<u8>`, `&[u8]`, or an existing [`Payload`] — the latter
    /// without copying).
    pub fn new(from: NodeId, to: NodeId, payload: impl Into<Payload>) -> Self {
        Envelope {
            from,
            to,
            payload: payload.into(),
        }
    }
}

/// A sender's queued transmission: one shared payload bound for one or more
/// destinations.
///
/// Nodes emit entries; the round engine expands them into per-destination
/// [`Envelope`]s only at the adversary boundary (the `deliver` callback must
/// see individual envelopes — the UL adversary drops and injects per link).
/// Until then a broadcast or DISPERSE fan-out is a single payload allocation
/// plus a destination list, instead of `n − 1` envelope clones queued,
/// merged, and counted one by one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboxEntry {
    /// Claimed sender.
    pub from: NodeId,
    /// Destinations, in delivery order.
    pub to: Vec<NodeId>,
    /// Shared payload bytes.
    pub payload: Payload,
}

impl OutboxEntry {
    /// An entry with a single destination.
    pub fn single(from: NodeId, to: NodeId, payload: impl Into<Payload>) -> Self {
        OutboxEntry {
            from,
            to: vec![to],
            payload: payload.into(),
        }
    }

    /// Number of physical envelopes this entry expands into.
    pub fn fanout(&self) -> usize {
        self.to.len()
    }

    /// Expands into per-destination envelopes (payload shared, not copied).
    pub fn envelopes(&self) -> impl Iterator<Item = Envelope> + '_ {
        self.to
            .iter()
            .map(move |&to| Envelope::new(self.from, to, self.payload.clone()))
    }
}

/// A single local-output event, in the sense of the paper's "global output":
/// the externally visible functionality of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputEvent {
    /// "Node N_i is compromised" — broken into (AL) or broken/disconnected (UL).
    Compromised,
    /// "Node N_i is recovered".
    Recovered,
    /// The node detected impersonation or a failed refresh (§2.3 awareness).
    Alert,
    /// "N_i is asked to sign m at time unit u".
    SignRequested {
        /// Message to sign.
        msg: Vec<u8>,
        /// Time unit of the request.
        unit: u64,
    },
    /// "(m, u) is signed".
    Signed {
        /// The signed message.
        msg: Vec<u8>,
        /// Time unit in which it was signed.
        unit: u64,
    },
    /// The (unbreakable) verifier accepted `msg` as signed.
    Verified {
        /// The verified message.
        msg: Vec<u8>,
    },
    /// An application-layer (π) message was accepted as authentic.
    Accepted {
        /// Claimed sender it was accepted from.
        from: NodeId,
        /// The payload.
        msg: Vec<u8>,
    },
    /// An application-layer (π) message was sent by the top layer.
    Sent {
        /// Destination.
        to: NodeId,
        /// The payload.
        msg: Vec<u8>,
    },
    /// Free-form protocol output.
    Custom(String),
}

/// One node's timestamped output log.
pub type OutputLog = Vec<(u64, OutputEvent)>;

impl Encode for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u32()? {
            0 => Err(WireError::InvalidTag(0)),
            id => Ok(NodeId(id)),
        }
    }
}

// Canonical encoding of output events, so the daemon backend can stream a
// node's output log over the wire and the collector can reassemble the exact
// `OutputLog` the in-process engine would have produced.
impl Encode for OutputEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            OutputEvent::Compromised => w.put_u8(0),
            OutputEvent::Recovered => w.put_u8(1),
            OutputEvent::Alert => w.put_u8(2),
            OutputEvent::SignRequested { msg, unit } => {
                w.put_u8(3);
                w.put_bytes(msg);
                w.put_u64(*unit);
            }
            OutputEvent::Signed { msg, unit } => {
                w.put_u8(4);
                w.put_bytes(msg);
                w.put_u64(*unit);
            }
            OutputEvent::Verified { msg } => {
                w.put_u8(5);
                w.put_bytes(msg);
            }
            OutputEvent::Accepted { from, msg } => {
                w.put_u8(6);
                from.encode(w);
                w.put_bytes(msg);
            }
            OutputEvent::Sent { to, msg } => {
                w.put_u8(7);
                to.encode(w);
                w.put_bytes(msg);
            }
            OutputEvent::Custom(s) => {
                w.put_u8(8);
                s.encode(w);
            }
        }
    }
}

impl Decode for OutputEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => OutputEvent::Compromised,
            1 => OutputEvent::Recovered,
            2 => OutputEvent::Alert,
            3 => OutputEvent::SignRequested {
                msg: r.get_bytes()?,
                unit: r.get_u64()?,
            },
            4 => OutputEvent::Signed {
                msg: r.get_bytes()?,
                unit: r.get_u64()?,
            },
            5 => OutputEvent::Verified {
                msg: r.get_bytes()?,
            },
            6 => OutputEvent::Accepted {
                from: NodeId::decode(r)?,
                msg: r.get_bytes()?,
            },
            7 => OutputEvent::Sent {
                to: NodeId::decode(r)?,
                msg: r.get_bytes()?,
            },
            8 => OutputEvent::Custom(String::decode(r)?),
            t => return Err(WireError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_indexing() {
        assert_eq!(NodeId(1).idx(), 0);
        assert_eq!(NodeId::from_idx(4), NodeId(5));
        let all: Vec<NodeId> = NodeId::all(3).collect();
        assert_eq!(all, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(format!("{}", NodeId(7)), "N7");
    }

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(NodeId(1), NodeId(2), vec![1, 2, 3]);
        assert_eq!(e.from, NodeId(1));
        assert_eq!(e.to, NodeId(2));
        assert_eq!(&e.payload[..], &[1, 2, 3]);
        // Cloning shares the payload allocation.
        let c = e.clone();
        assert!(std::sync::Arc::ptr_eq(&e.payload, &c.payload));
    }

    #[test]
    fn outbox_entry_expands_in_destination_order() {
        let entry = OutboxEntry {
            from: NodeId(1),
            to: vec![NodeId(3), NodeId(2), NodeId(4)],
            payload: vec![9u8].into(),
        };
        assert_eq!(entry.fanout(), 3);
        let envs: Vec<Envelope> = entry.envelopes().collect();
        assert_eq!(
            envs.iter().map(|e| e.to).collect::<Vec<_>>(),
            vec![NodeId(3), NodeId(2), NodeId(4)]
        );
        // Every expanded envelope shares the entry's payload allocation.
        for env in &envs {
            assert!(std::sync::Arc::ptr_eq(&env.payload, &entry.payload));
            assert_eq!(env.from, NodeId(1));
        }
        let single = OutboxEntry::single(NodeId(2), NodeId(1), vec![7u8]);
        assert_eq!(single.fanout(), 1);
    }
}
