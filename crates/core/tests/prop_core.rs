//! Property tests for the core protocol components: wire-format fuzzing
//! (decoders must never panic and must roundtrip), DISPERSE delivery
//! invariants, PARTIAL-AGREEMENT's Lemma-16 property under arbitrary
//! cheater behaviour, and CERTIFY/VER-CERT binding.

use proauth_core::certify::{certify, ver_cert, DestCheck, LocalKeys};
use proauth_core::partition::{flat_min_breakins, Partition};
use proauth_core::disperse::{DisperseLayer, DisperseMode};
use proauth_core::pa::PaInstance;
use proauth_core::wire::{Blob, CertifiedMsg, DisperseMsg, Inner, UlsWire};
use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::schnorr::{Signature, SigningKey};
use proauth_pds::msg::signing_payload;
use proauth_pds::statement::key_statement;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode};
use proauth_sim::message::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn sig_strategy() -> impl Strategy<Value = Signature> {
    (any::<u64>(), any::<u64>()).prop_map(|(e, s)| Signature {
        e: BigUint::from_u64(e),
        s: BigUint::from_u64(s),
    })
}

fn certified_strategy() -> impl Strategy<Value = CertifiedMsg> {
    (
        proptest::collection::vec(any::<u8>(), 0..40),
        1u32..10,
        1u32..10,
        any::<u64>(),
        any::<u64>(),
        sig_strategy(),
        proptest::collection::vec(any::<u8>(), 0..20),
        sig_strategy(),
    )
        .prop_map(|(m, i, j, u, w, sig, vk, cert)| CertifiedMsg {
            m,
            i,
            j,
            u,
            w,
            sig,
            vk,
            cert,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = UlsWire::from_bytes(&bytes);
        let _ = Blob::from_bytes(&bytes);
        let _ = Inner::from_bytes(&bytes);
        let _ = CertifiedMsg::from_bytes(&bytes);
        let _ = DisperseMsg::from_bytes(&bytes);
    }

    #[test]
    fn certified_msg_roundtrips(msg in certified_strategy()) {
        prop_assert_eq!(CertifiedMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn blob_roundtrips(msg in certified_strategy(), subject in 1u32..10) {
        for blob in [
            Blob::Certified(msg.clone()),
            Blob::Evidence { subject, msg: msg.clone() },
        ] {
            prop_assert_eq!(Blob::from_bytes(&blob.to_bytes()).unwrap(), blob);
        }
    }

    #[test]
    fn disperse_send_reaches_destination_via_any_honest_relay(
        n in 3usize..10,
        dst_raw in 2u32..10,
        relay_raw in 2u32..10,
        payload in proptest::collection::vec(any::<u8>(), 1..20),
    ) {
        let dst = NodeId((dst_raw % (n as u32 - 1)) + 2);
        let relay = NodeId((relay_raw % (n as u32 - 1)) + 2);
        prop_assume!(relay != dst);
        // 1 sends to dst; route the Forward through `relay` by hand.
        let mut sender = DisperseLayer::new(NodeId(1), n, DisperseMode::Full);
        sender.send(dst, payload.clone().into());
        let out = sender.drain_outgoing();
        // One shared entry; the fan-out covers the relay.
        let to_relay = out.iter().find(|e| e.to.contains(&relay)).expect("fanout covers relay");
        let UlsWire::Disperse(fwd) = UlsWire::from_bytes(&to_relay.payload).unwrap() else {
            panic!("disperse expected")
        };
        let mut relay_layer = DisperseLayer::new(relay, n, DisperseMode::Full);
        relay_layer.begin_round();
        prop_assert!(relay_layer.on_message(NodeId(1), fwd).is_none());
        let fwds = relay_layer.drain_outgoing();
        prop_assert_eq!(fwds.len(), 1);
        // Destination receives it on the next round.
        let UlsWire::Disperse(fw) = UlsWire::from_bytes(&fwds[0].payload).unwrap() else {
            panic!()
        };
        let mut dst_layer = DisperseLayer::new(dst, n, DisperseMode::Full);
        dst_layer.begin_round();
        let delivered = dst_layer.on_message(relay, fw);
        prop_assert_eq!(delivered, Some((1u32, payload.into())));
    }

    #[test]
    fn pa_never_splits_under_arbitrary_cheater_values(
        n in 3usize..8,
        cheater_values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..3), 1..8),
        seed in any::<u64>(),
    ) {
        // One cheater (node 1) sends arbitrary per-recipient values; honest
        // nodes share input "h". Lemma 16 property 2 must hold among honest.
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut instances: Vec<PaInstance> = (0..n).map(|_| PaInstance::new(n)).collect();
        let mut sent: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); n]; n];
        for sender in 1..=n as u32 {
            for recv in 1..=n as u32 {
                let value = if sender == 1 {
                    cheater_values[rng.gen_range(0..cheater_values.len())].clone()
                } else {
                    b"h".to_vec()
                };
                sent[(sender - 1) as usize][(recv - 1) as usize] = value.clone();
                instances[(recv - 1) as usize].on_accepted_value(sender, value);
            }
        }
        for inst in &mut instances {
            inst.fix_majority();
        }
        // Honest relays.
        let mut evidence: Vec<(u32, Vec<u8>)> = Vec::new();
        for recv in 2..=n as u32 {
            for sender in 1..=n as u32 {
                evidence.push((sender, sent[(sender - 1) as usize][(recv - 1) as usize].clone()));
            }
        }
        for inst in &mut instances {
            for (s, v) in &evidence {
                inst.on_evidence(*s, v.clone());
            }
        }
        let honest_outputs: BTreeSet<Vec<u8>> = (2..=n as u32)
            .filter_map(|i| instances[(i - 1) as usize].decide())
            .collect();
        prop_assert!(honest_outputs.len() <= 1, "split: {honest_outputs:?}");
        // With n−1 ≥ ⌈(n+1)/2⌉ honest nodes, the honest value always wins.
        if n > (n + 1).div_ceil(2) {
            prop_assert!(honest_outputs.is_empty()
                || honest_outputs.iter().any(|v| v == b"h"));
        }
    }

    #[test]
    fn partitions_cover_all_nodes_without_empty_clusters(
        n in 1usize..300,
        cluster_size in 1usize..40,
    ) {
        for p in [
            Partition::contiguous(n, cluster_size),
            Partition::sqrt(n),
            Partition::balanced(n, cluster_size.min(n)),
        ] {
            prop_assert!(p.covers(n), "covers 1..={n}: {:?}", p.clusters);
            prop_assert!(p.clusters.iter().all(|c| !c.is_empty()));
            // Every node maps back to the cluster that lists it.
            for (c, members) in p.clusters.iter().enumerate() {
                for &m in members {
                    prop_assert_eq!(p.cluster_of(m), Some(c));
                }
            }
        }
    }

    #[test]
    fn sqrt_partition_is_balanced_on_non_squares(n in 2usize..300) {
        let p = Partition::sqrt(n);
        let sizes: Vec<usize> = p.clusters.iter().map(Vec::len).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "n = {n}: sizes {sizes:?}");
        // Cluster count tracks √n (the paper's shape claim).
        let k = p.cluster_count() as f64;
        prop_assert!(k >= (n as f64).sqrt() - 1.0 && k <= (n as f64).sqrt() + 1.0);
    }

    #[test]
    fn min_breakins_bounded_by_cluster_majorities(n in 3usize..300) {
        // An optimal adversary still has to take a majority in a majority of
        // clusters; with balanced clusters that is at least the flat bound
        // of the smallest cluster, and at least a quarter of the network
        // minus the rounding slack of one node per attacked cluster.
        let p = Partition::sqrt(n);
        let smallest = p.clusters.iter().map(Vec::len).min().unwrap();
        let need = p.min_breakins_to_compromise();
        prop_assert!(need >= flat_min_breakins(smallest));
        let k = p.cluster_count();
        prop_assert!(need >= (k / 2 + 1) * (smallest / 2 + 1));
        prop_assert!(need > n / 4, "n = {n}: {need} break-ins ≤ n/4");
        // And it never exceeds what compromising every node would take.
        prop_assert!(need <= n);
    }

    #[test]
    fn ver_cert_binds_every_field(
        m in proptest::collection::vec(any::<u8>(), 1..30),
        w in 2u64..1_000,
        unit in 1u64..100,
        flip in 0usize..5,
    ) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(w ^ unit);
        let ca = SigningKey::generate(&group, &mut rng);
        let mut keys = LocalKeys::generate(&group, unit, &mut rng);
        let st = key_statement(NodeId(1), unit, &keys.vk_bytes());
        keys.cert = Some(ca.sign(&signing_payload(&st, unit), &mut rng));
        let msg = certify(&keys, &m, NodeId(1), NodeId(2), w, &mut rng).unwrap();
        let v_cert = ca.verify_key().element().clone();
        // Correct parameters verify.
        prop_assert!(ver_cert(&group, DestCheck::Me(NodeId(2)), NodeId(1), unit, w, &msg, &v_cert));
        // Flip one binding: must fail.
        let ok = match flip {
            0 => ver_cert(&group, DestCheck::Me(NodeId(2)), NodeId(3), unit, w, &msg, &v_cert),
            1 => ver_cert(&group, DestCheck::Me(NodeId(3)), NodeId(1), unit, w, &msg, &v_cert),
            2 => ver_cert(&group, DestCheck::Me(NodeId(2)), NodeId(1), unit + 1, w, &msg, &v_cert),
            3 => ver_cert(&group, DestCheck::Me(NodeId(2)), NodeId(1), unit, w + 1, &msg, &v_cert),
            _ => {
                let mut tampered = msg.clone();
                tampered.m.push(0);
                ver_cert(&group, DestCheck::Me(NodeId(2)), NodeId(1), unit, w, &tampered, &v_cert)
            }
        };
        prop_assert!(!ok, "flip {flip} must invalidate");
    }
}
