//! Threshold Schnorr signing over a [`crate::dkg::KeyShare`].
//!
//! `t+1` signers jointly produce an ordinary Schnorr signature
//! ([`crate::schnorr::Signature`]) verifiable against the joint public key —
//! the *unchanging* PDS verification key the paper stores in ROM (§1.3).
//!
//! Protocol shape (two logical message rounds, matching the efficient schemes
//! the paper cites \[20\], \[23\]):
//!
//! 1. each signer `i` in the signer set `S` samples a nonce `k_i` and
//!    publishes `R_i = g^{k_i}`;
//! 2. everyone computes `R = Π R_i`, `e = H(R ‖ y ‖ m)`, and signer `i`
//!    publishes `z_i = k_i + e·λ_i·x_i` where `λ_i` is the Lagrange
//!    coefficient of `S` at zero;
//! 3. anyone combines `z = Σ z_i`, giving the signature `(e, z)`.
//!
//! Each partial `z_i` is publicly checkable against `R_i` and the share key
//! `X_i = g^{x_i}`: `g^{z_i} = R_i · X_i^{e·λ_i}` — this is what makes the
//! scheme *robust* (cheating signers are identified and excluded, and the
//! session restarted with another signer set).
//!
//! # Examples
//!
//! See `tests::full_threshold_signature` in this module.

use crate::dkg::KeyShare;
use crate::group::Group;
use crate::schnorr::{self, Signature};
use crate::shamir;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::sha256;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A signer's nonce for one signing session.
///
/// Must be used at most once; the session driver enforces this.
#[derive(Debug, Clone)]
pub struct Nonce {
    /// Secret nonce scalar `k_i`.
    pub k: BigUint,
    /// Public nonce commitment `R_i = g^{k_i}`.
    pub commitment: BigUint,
}

/// Samples a fresh signing nonce.
pub fn generate_nonce<R: rand::RngCore>(group: &Group, rng: &mut R) -> Nonce {
    let k = group.random_nonzero_scalar(rng);
    let commitment = group.exp_g(&k);
    Nonce { k, commitment }
}

/// FROST-style nonce preprocessing pool: a node batch-generates nonces ahead
/// of time (during setup and under the refresh schedule, both adversary-quiet
/// windows) so the online phase of a signing session spends no time on
/// `g^{k}` — taking a nonce is a queue pop.
///
/// Simplification vs. full FROST: we pool single nonces, not (hiding,
/// binding) pairs. FROST needs the pair + binding factor because commitments
/// are published *before* the message is known; here `SignInit` announces the
/// commitment in-session together with the message, so the standard Schnorr
/// challenge already binds `(R, y, m)` and a single pooled nonce is safe.
///
/// No-reuse accounting is strict and survives refills: the commitment of
/// every nonce ever handed out is remembered in `spent`, and `refill`
/// discards any freshly sampled nonce whose commitment collides with a spent
/// one (relevant for toy groups whose element space is small). Pools hold
/// *volatile secret state* — a pooled `k` plus a later partial would leak the
/// share exactly like any nonce reuse — so drivers must wipe the pool on
/// break-in ([`NoncePool::wipe`]).
#[derive(Debug, Clone, Default)]
pub struct NoncePool {
    avail: VecDeque<Nonce>,
    /// Commitments of every nonce ever taken or discarded (big-endian bytes).
    spent: BTreeSet<Vec<u8>>,
    capacity: usize,
}

impl NoncePool {
    /// An empty pool that [`NoncePool::refill`] tops up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        NoncePool {
            avail: VecDeque::with_capacity(capacity),
            spent: BTreeSet::new(),
            capacity,
        }
    }

    /// Tops the pool back up to capacity, returning how many nonces were
    /// generated. Samples colliding with a spent or pooled commitment are
    /// discarded and re-drawn (bounded, to stay total on tiny groups).
    pub fn refill<R: rand::RngCore>(&mut self, group: &Group, rng: &mut R) -> usize {
        let mut added = 0;
        let mut misses = 0;
        while self.avail.len() < self.capacity && misses < 8 * self.capacity + 8 {
            let nonce = generate_nonce(group, rng);
            let bytes = nonce.commitment.to_bytes_be();
            let pooled = self.avail.iter().any(|n| n.commitment == nonce.commitment);
            if pooled || self.spent.contains(&bytes) {
                misses += 1;
                continue;
            }
            self.avail.push_back(nonce);
            added += 1;
        }
        added
    }

    /// Pops the oldest preprocessed nonce, recording its commitment as spent
    /// forever. `None` when the pool is empty (caller falls back to
    /// [`generate_nonce`]).
    pub fn take(&mut self) -> Option<Nonce> {
        let nonce = self.avail.pop_front()?;
        self.spent.insert(nonce.commitment.to_bytes_be());
        Some(nonce)
    }

    /// Erases all pooled secret nonces (break-in hygiene). The spent set is
    /// public data and is kept, so accounting stays strict across wipes.
    pub fn wipe(&mut self) {
        self.avail.clear();
    }

    /// Preprocessed nonces currently available.
    pub fn len(&self) -> usize {
        self.avail.len()
    }

    /// Whether no preprocessed nonce is available.
    pub fn is_empty(&self) -> bool {
        self.avail.is_empty()
    }

    /// The refill target.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many nonces have ever been handed out.
    pub fn spent_count(&self) -> usize {
        self.spent.len()
    }
}

/// Aggregates the nonce commitments of the signer set: `R = Π R_i`.
///
/// # Panics
///
/// Panics if `commitments` is empty.
pub fn combine_nonces(group: &Group, commitments: &[BigUint]) -> BigUint {
    assert!(!commitments.is_empty(), "empty signer set");
    commitments
        .iter()
        .fold(group.identity(), |acc, r| group.mul(&acc, r))
}

/// The signing challenge `e = H(R ‖ y ‖ m)` — identical to the centralized
/// Schnorr challenge, so threshold signatures verify as ordinary ones.
pub fn challenge(group: &Group, combined_nonce: &BigUint, public_key: &BigUint, msg: &[u8]) -> BigUint {
    schnorr::challenge(group, combined_nonce, public_key, msg)
}

/// Computes signer `i`'s partial signature `z_i = k_i + e·λ_i·x_i`.
///
/// `signer_set` must contain `key.index` and be the exact set whose nonces
/// were combined.
pub fn partial_sign(
    group: &Group,
    key: &KeyShare,
    signer_set: &[u32],
    nonce: &Nonce,
    e: &BigUint,
) -> BigUint {
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, key.index);
    partial_sign_with_coeff(group, key, &lambda, nonce, e)
}

/// [`partial_sign`] with the signer's Lagrange coefficient supplied by the
/// caller (typically from a [`SignerPrecomp`] warmed in the offline window).
pub fn partial_sign_with_coeff(
    group: &Group,
    key: &KeyShare,
    lambda: &BigUint,
    nonce: &Nonce,
    e: &BigUint,
) -> BigUint {
    let weighted = group.scalar_mul(e, &group.scalar_mul(lambda, &key.share));
    group.scalar_add(&nonce.k, &weighted)
}

/// How many distinct signer sets a [`SignerPrecomp`] memoizes before it
/// stops inserting (each entry is a handful of scalars; the cap only guards
/// against adversarially churned signer sets).
const MAX_PRECOMP_SETS: usize = 64;

/// Preprocessed per-signer-set scalar context: the Lagrange coefficients
/// `λ_j(0)` for each signer set seen so far.
///
/// Computing a coefficient costs several modular inversions' worth of
/// scalar work per signer — more than a table-backed exponentiation — and
/// every session over the same signer set recomputes the identical values.
/// Warming the expected signer set during the refresh window (next to the
/// nonce pool) moves all of that off the online path; unexpected sets
/// (retries after exclusions) are memoized on first use. Coefficients are
/// public data: unlike pooled nonces they need no wiping on break-in.
#[derive(Debug, Clone, Default)]
pub struct SignerPrecomp {
    sets: BTreeMap<Vec<u32>, BTreeMap<u32, BigUint>>,
    /// Recompute slot for misses once `sets` is at capacity.
    scratch: BTreeMap<u32, BigUint>,
}

impl SignerPrecomp {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Precomputes (or returns) the coefficients for `signer_set`, keyed by
    /// signer index. One batched inversion on a miss; a lookup afterwards.
    pub fn coeffs(&mut self, group: &Group, signer_set: &[u32]) -> &BTreeMap<u32, BigUint> {
        if self.sets.contains_key(signer_set) {
            return &self.sets[signer_set];
        }
        let computed: BTreeMap<u32, BigUint> = shamir::lagrange_coeffs_at_zero(group, signer_set)
            .into_iter()
            .collect();
        if self.sets.len() < MAX_PRECOMP_SETS {
            self.sets.insert(signer_set.to_vec(), computed);
            &self.sets[signer_set]
        } else {
            self.scratch = computed;
            &self.scratch
        }
    }

    /// Warms the cache for `signer_set`; returns `true` if it was a miss.
    pub fn warm(&mut self, group: &Group, signer_set: &[u32]) -> bool {
        let miss = !self.sets.contains_key(signer_set);
        let _ = self.coeffs(group, signer_set);
        miss
    }

    /// Distinct signer sets currently memoized.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Verifies signer `i`'s partial signature: `g^{z_i} = R_i · X_i^{e·λ_i}`.
///
/// The left side comes squaring-free from the generator's comb table; the
/// `X_i` term uses the windowed Montgomery path (and a promoted table once
/// the share key repeats across sessions).
pub fn verify_partial(
    group: &Group,
    signer_set: &[u32],
    signer: u32,
    share_key: &BigUint,
    nonce_commitment: &BigUint,
    e: &BigUint,
    z_i: &BigUint,
) -> bool {
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, signer);
    verify_partial_with_coeff(group, share_key, nonce_commitment, &lambda, e, z_i)
}

/// [`verify_partial`] with the signer's Lagrange coefficient supplied by
/// the caller (typically from a [`SignerPrecomp`]).
pub fn verify_partial_with_coeff(
    group: &Group,
    share_key: &BigUint,
    nonce_commitment: &BigUint,
    lambda: &BigUint,
    e: &BigUint,
    z_i: &BigUint,
) -> bool {
    group.contains(nonce_commitment)
        && verify_partial_preverified(group, share_key, nonce_commitment, lambda, e, z_i)
}

/// [`verify_partial_with_coeff`] for commitments whose subgroup membership
/// the caller **already validated** (e.g. at session admission). Skips the
/// membership modpow, which otherwise gets double-paid once per partial.
pub fn verify_partial_preverified(
    group: &Group,
    share_key: &BigUint,
    nonce_commitment: &BigUint,
    lambda: &BigUint,
    e: &BigUint,
    z_i: &BigUint,
) -> bool {
    if z_i >= group.q() {
        return false;
    }
    let expected = group.mul(
        nonce_commitment,
        &group.exp(share_key, &group.scalar_mul(e, lambda)),
    );
    group.exp_g(z_i) == expected
}

/// One partial-signature check, for [`batch_verify_partials`].
#[derive(Debug, Clone, Copy)]
pub struct PartialCheck<'a> {
    /// The signer index `i` (must be in the signer set).
    pub signer: u32,
    /// The signer's share key `X_i = g^{x_i}`.
    pub share_key: &'a BigUint,
    /// The signer's transmitted nonce commitment `R_i`.
    pub nonce_commitment: &'a BigUint,
    /// The partial signature `z_i`.
    pub z_i: &'a BigUint,
}

/// Randomized batch verification of a session's partial signatures:
/// `true` ⟹ accept them all.
///
/// Unlike full `(e, s)` Schnorr signatures, partials CAN be batched with a
/// random linear combination, because the commitment `R_i` is transmitted
/// rather than recomputed: raising each equation
/// `g^{z_i} = R_i · X_i^{e·λ_i}` to a coefficient `r_i` and multiplying
/// gives the single equation
///
/// ```text
/// g^{Σ r_i·z_i}  ==  Π R_i^{r_i} · Π X_i^{r_i·e·λ_i}
/// ```
///
/// — one comb evaluation plus one shared-squaring multi-exponentiation in
/// place of `|S|` full verifications. Coefficients are deterministic
/// Fiat–Shamir hashes of the transcript so all honest verifiers agree (see
/// [`crate::feldman::batch_verify_shares`] for why). On `false`, fall back
/// to per-signer [`verify_partial`] to identify the cheater.
///
/// All exponents are reduced mod `q`, which is sound because every base is
/// an order-`q` subgroup member: nonce commitments are `contains`-checked
/// here (unless the caller passes `commitments_checked`, taking the
/// obligation on itself), and share keys are products of powers of Feldman
/// commitments that [`crate::feldman::Commitments::from_elements`] already
/// validated.
/// Reduction keeps the combined exponents inside the range of the promoted
/// fixed-base tables (built at `q.bits()`), so repeat share keys get the
/// squaring-free comb path instead of demoting to the generic chain — this,
/// plus 128-bit blinding coefficients, is what makes the batch actually
/// cheaper than `|S|` per-signer checks.
pub fn batch_verify_partials(
    group: &Group,
    signer_set: &[u32],
    e: &BigUint,
    checks: &[PartialCheck<'_>],
) -> bool {
    batch_verify_partials_with(group, signer_set, e, checks, None, false)
}

/// [`batch_verify_partials`] with an optional Lagrange-coefficient cache
/// (see [`SignerPrecomp`]; `None` computes coefficients inline) and a
/// `commitments_checked` flag that skips the per-check membership modpows.
/// Pass `true` only when membership is established elsewhere: either the
/// caller validated every `nonce_commitment` up front, or — as the signing
/// session does — every accept is backstopped by a full verification of the
/// combined signature, with exact per-signer checks (whose equation itself
/// implies membership) identifying cheaters on failure.
pub fn batch_verify_partials_with(
    group: &Group,
    signer_set: &[u32],
    e: &BigUint,
    checks: &[PartialCheck<'_>],
    mut precomp: Option<&mut SignerPrecomp>,
    commitments_checked: bool,
) -> bool {
    if checks.is_empty() {
        return true;
    }
    let mut lambda_for = |group: &Group, signer: u32| -> BigUint {
        match precomp.as_deref_mut() {
            Some(p) => match p.coeffs(group, signer_set).get(&signer) {
                Some(l) => l.clone(),
                None => shamir::lagrange_coeff_at_zero(group, signer_set, signer),
            },
            None => shamir::lagrange_coeff_at_zero(group, signer_set, signer),
        }
    };
    if checks.len() == 1 {
        let c = &checks[0];
        let lambda = lambda_for(group, c.signer);
        let ok = commitments_checked || group.contains(c.nonce_commitment);
        return ok
            && verify_partial_preverified(group, c.share_key, c.nonce_commitment, &lambda, e, c.z_i);
    }
    if checks.iter().any(|c| {
        c.z_i >= group.q() || (!commitments_checked && !group.contains(c.nonce_commitment))
    }) {
        return false;
    }
    let mut transcript = Vec::new();
    for c in checks {
        transcript.extend_from_slice(&c.signer.to_be_bytes());
        transcript.extend_from_slice(&c.share_key.to_bytes_be());
        transcript.extend_from_slice(&c.nonce_commitment.to_bytes_be());
        transcript.extend_from_slice(&c.z_i.to_bytes_be());
    }
    let digest = sha256::hash_parts("proauth/thresh/batch/v2", &[&e.to_bytes_be(), &transcript]);

    let mut lhs_exp = BigUint::zero();
    let mut rhs: Vec<(&BigUint, BigUint)> = Vec::with_capacity(2 * checks.len());
    for (j, c) in checks.iter().enumerate() {
        // 128-bit blinding coefficient: a forged set survives with
        // probability ≤ 2^-128, and the short coefficient keeps the
        // R_i exponent (and the mod-q X_i exponent) table-range.
        let coeff_digest = sha256::hash_parts(
            "proauth/thresh/batch/coeff/v2",
            &[&digest, &(j as u64).to_be_bytes()],
        );
        let r_j = BigUint::from_bytes_be(&coeff_digest[..16]).rem(group.q());
        lhs_exp = group.scalar_add(&lhs_exp, &group.scalar_mul(&r_j, c.z_i));
        let lambda = lambda_for(group, c.signer);
        // Sound to work mod q throughout: both R_i and X_i have order
        // dividing q (see above), so x^(a mod q) = x^a.
        let x_exp = group.scalar_mul(&r_j, &group.scalar_mul(e, &lambda));
        for (base, exp) in [(c.nonce_commitment, r_j), (c.share_key, x_exp)] {
            match rhs.iter_mut().find(|(b, _)| *b == base) {
                Some((_, acc)) => *acc = group.scalar_add(acc, &exp),
                None => rhs.push((base, exp)),
            }
        }
    }
    let rhs_pairs: Vec<(&BigUint, &BigUint)> = rhs.iter().map(|(b, e)| (*b, e)).collect();
    group.exp_g(&lhs_exp) == group.multi_exp(&rhs_pairs)
}

/// Combines partial signatures into a full Schnorr signature `(e, Σ z_i)`.
///
/// # Panics
///
/// Panics if `partials` is empty.
pub fn combine_partials(group: &Group, e: &BigUint, partials: &[BigUint]) -> Signature {
    assert!(!partials.is_empty(), "no partial signatures");
    let s = partials
        .iter()
        .fold(BigUint::zero(), |acc, z| group.scalar_add(&acc, z));
    Signature { e: e.clone(), s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{self, ReceivedDealing};
    use crate::group::GroupId;
    use crate::schnorr::VerifyKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[ignore]
    fn micro_batch_vs_item() {
        let (n, t) = (13usize, 6usize);
        let group = Group::new(GroupId::S256);
        let mut rng = StdRng::seed_from_u64(7);
        let dealings: Vec<(u32, crate::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys: Vec<KeyShare> = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        let signer_set: Vec<u32> = (1..=t as u32 + 1).collect();
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(&group, &mut rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, nc)| nc.commitment.clone()).collect();
        let r = combine_nonces(&group, &commitments);
        let e = challenge(&group, &r, &keys[0].public_key, b"micro");
        let partials: Vec<BigUint> = nonces
            .iter()
            .map(|(i, nonce)| partial_sign(&group, &keys[(*i - 1) as usize], &signer_set, nonce, &e))
            .collect();
        let checks: Vec<PartialCheck> = signer_set
            .iter()
            .zip(&nonces)
            .zip(&partials)
            .map(|((&s, (_, nc)), z)| PartialCheck {
                signer: s,
                share_key: keys[0].share_key(s),
                nonce_commitment: &nc.commitment,
                z_i: z,
            })
            .collect();
        let iters = 50u32;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            assert!(batch_verify_partials(&group, &signer_set, &e, &checks));
        }
        let batch = start.elapsed();
        let mut precomp = SignerPrecomp::new();
        precomp.warm(&group, &signer_set);
        let start = std::time::Instant::now();
        for _ in 0..iters {
            assert!(batch_verify_partials_with(
                &group,
                &signer_set,
                &e,
                &checks,
                Some(&mut precomp),
                true
            ));
        }
        let batch_pre = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..iters {
            for c in &checks {
                assert!(verify_partial(
                    &group,
                    &signer_set,
                    c.signer,
                    c.share_key,
                    c.nonce_commitment,
                    &e,
                    c.z_i
                ));
            }
        }
        let item = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let _ = generate_nonce(&group, &mut rng);
        }
        let nonce_t = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let _ = shamir::lagrange_coeff_at_zero(&group, &signer_set, 1);
        }
        let t_lagrange = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let _ = shamir::lagrange_coeffs_at_zero(&group, &signer_set);
        }
        let t_lagrange_all = start.elapsed();
        println!(
            "batch k=7: {:?}/iter  batch+precomp: {:?}/iter  per-item: {:?}/iter  \
             gen_nonce: {:?}/iter  lagrange(one): {:?}  lagrange(all 7, batched inv): {:?}",
            batch / iters,
            batch_pre / iters,
            item / iters,
            nonce_t / iters,
            t_lagrange / iters,
            t_lagrange_all / iters
        );
    }

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, crate::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let shares = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, shares)
    }

    fn sign_with(
        group: &Group,
        keys: &[KeyShare],
        signer_set: &[u32],
        msg: &[u8],
        rng: &mut StdRng,
    ) -> Signature {
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(group, rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = combine_nonces(group, &commitments);
        let pk = &keys[0].public_key;
        let e = challenge(group, &r, pk, msg);
        let partials: Vec<BigUint> = nonces
            .iter()
            .map(|(i, nonce)| {
                let key = &keys[(*i - 1) as usize];
                let z = partial_sign(group, key, signer_set, nonce, &e);
                assert!(verify_partial(
                    group,
                    signer_set,
                    *i,
                    key.share_key(*i),
                    &nonce.commitment,
                    &e,
                    &z
                ));
                z
            })
            .collect();
        combine_partials(group, &e, &partials)
    }

    #[test]
    fn full_threshold_signature() {
        let (group, keys) = dkg_keys(5, 2, 71);
        let mut rng = StdRng::seed_from_u64(72);
        let sig = sign_with(&group, &keys, &[1, 3, 5], b"threshold message", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(vk.verify(b"threshold message", &sig));
        assert!(!vk.verify(b"other", &sig));
    }

    #[test]
    fn any_quorum_produces_valid_signature() {
        let (group, keys) = dkg_keys(5, 2, 73);
        let mut rng = StdRng::seed_from_u64(74);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        for set in [[1u32, 2, 3], [2, 4, 5], [1, 4, 5]] {
            let sig = sign_with(&group, &keys, &set, b"m", &mut rng);
            assert!(vk.verify(b"m", &sig), "set {set:?}");
        }
    }

    #[test]
    fn bad_partial_detected() {
        let (group, keys) = dkg_keys(4, 1, 75);
        let mut rng = StdRng::seed_from_u64(76);
        let signer_set = [1u32, 2];
        let nonce = generate_nonce(&group, &mut rng);
        let r = combine_nonces(&group, std::slice::from_ref(&nonce.commitment));
        let e = challenge(&group, &r, &keys[0].public_key, b"m");
        let z = partial_sign(&group, &keys[0], &signer_set, &nonce, &e);
        let bad_z = group.scalar_add(&z, &BigUint::one());
        assert!(!verify_partial(
            &group,
            &signer_set,
            1,
            keys[0].share_key(1),
            &nonce.commitment,
            &e,
            &bad_z
        ));
        // Also: a correct z_i presented for the wrong signer fails.
        assert!(!verify_partial(
            &group,
            &signer_set,
            2,
            keys[1].share_key(2),
            &nonce.commitment,
            &e,
            &z
        ));
    }

    #[test]
    fn out_of_range_partial_rejected() {
        let (group, keys) = dkg_keys(3, 1, 77);
        let e = BigUint::from_u64(5);
        let too_big = group.q().add(&BigUint::one());
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &group.exp_g(&BigUint::from_u64(3)),
            &e,
            &too_big
        ));
        // Nonce commitment outside the group rejected.
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &BigUint::zero(),
            &e,
            &BigUint::one()
        ));
    }

    #[test]
    fn batch_partials_accepts_valid_rejects_tampered() {
        let (group, keys) = dkg_keys(5, 2, 80);
        let mut rng = StdRng::seed_from_u64(81);
        let signer_set = [1u32, 3, 5];
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(&group, &mut rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = combine_nonces(&group, &commitments);
        let e = challenge(&group, &r, &keys[0].public_key, b"batch");
        let partials: Vec<(u32, BigUint)> = nonces
            .iter()
            .map(|(i, nonce)| {
                (*i, partial_sign(&group, &keys[(*i - 1) as usize], &signer_set, nonce, &e))
            })
            .collect();
        let checks: Vec<PartialCheck<'_>> = signer_set
            .iter()
            .enumerate()
            .map(|(idx, &i)| PartialCheck {
                signer: i,
                share_key: keys[(i - 1) as usize].share_key(i),
                nonce_commitment: &nonces[idx].1.commitment,
                z_i: &partials[idx].1,
            })
            .collect();
        assert!(batch_verify_partials(&group, &signer_set, &e, &checks));
        assert!(batch_verify_partials(&group, &signer_set, &e, &[]));
        assert!(batch_verify_partials(&group, &signer_set, &e, &checks[..1]));

        let bad = group.scalar_add(&partials[1].1, &BigUint::one());
        let mut bad_checks = checks.clone();
        bad_checks[1].z_i = &bad;
        assert!(!batch_verify_partials(&group, &signer_set, &e, &bad_checks));

        // The precomputed-coefficient path is decision-identical.
        let mut precomp = SignerPrecomp::new();
        assert!(precomp.warm(&group, &signer_set), "first warm is a miss");
        assert!(!precomp.warm(&group, &signer_set), "second warm is a hit");
        assert_eq!(precomp.len(), 1);
        assert!(batch_verify_partials_with(
            &group,
            &signer_set,
            &e,
            &checks,
            Some(&mut precomp),
            false
        ));
        // Trusted-commitment mode: same decisions, membership modpows
        // skipped (a bad z_i is still caught by the combined equation).
        assert!(batch_verify_partials_with(
            &group,
            &signer_set,
            &e,
            &checks[..1],
            Some(&mut precomp),
            true
        ));
        assert!(!batch_verify_partials_with(
            &group,
            &signer_set,
            &e,
            &bad_checks,
            Some(&mut precomp),
            true
        ));
    }

    #[test]
    fn signer_precomp_matches_per_index_coefficients() {
        let group = Group::new(GroupId::Toy64);
        let mut precomp = SignerPrecomp::new();
        assert!(precomp.is_empty());
        for set in [vec![1u32, 2, 3], vec![4, 9, 2, 13, 7], vec![5]] {
            let coeffs = precomp.coeffs(&group, &set).clone();
            for &i in &set {
                assert_eq!(
                    coeffs[&i],
                    shamir::lagrange_coeff_at_zero(&group, &set, i),
                    "set {set:?} signer {i}"
                );
            }
        }
        assert_eq!(precomp.len(), 3);
    }

    #[test]
    fn nonce_pool_never_reissues_a_commitment() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(90);
        let mut pool = NoncePool::new(8);
        assert!(pool.is_empty());
        assert_eq!(pool.refill(&group, &mut rng), 8);
        assert_eq!(pool.len(), 8);

        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            let n = pool.take().expect("pooled nonce");
            assert_eq!(group.exp_g(&n.k), n.commitment, "commitment matches k");
            assert!(seen.insert(n.commitment.to_bytes_be()), "reissued commitment");
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.spent_count(), 5);

        // Refill tops back up without ever re-serving a spent commitment.
        assert_eq!(pool.refill(&group, &mut rng), 5);
        while let Some(n) = pool.take() {
            assert!(seen.insert(n.commitment.to_bytes_be()), "reissued commitment");
        }
        assert_eq!(pool.spent_count(), 13);
        assert!(pool.take().is_none(), "empty pool yields None");
    }

    #[test]
    fn nonce_pool_wipe_drops_secrets_keeps_accounting() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(91);
        let mut pool = NoncePool::new(4);
        pool.refill(&group, &mut rng);
        let first = pool.take().expect("one");
        pool.wipe();
        assert!(pool.is_empty());
        assert_eq!(pool.spent_count(), 1);
        pool.refill(&group, &mut rng);
        for _ in 0..pool.capacity() {
            let n = pool.take().expect("refilled");
            assert_ne!(n.commitment, first.commitment, "spent set survived wipe");
        }
    }

    #[test]
    fn undersized_signer_set_fails_verification() {
        // t = 2 needs 3 signers; 2 signers produce an invalid signature.
        let (group, keys) = dkg_keys(5, 2, 78);
        let mut rng = StdRng::seed_from_u64(79);
        let sig = sign_with(&group, &keys, &[1, 2], b"m", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(!vk.verify(b"m", &sig));
    }
}
