//! Internal/external views and impersonation detection (Definitions 10–11).
//!
//! The *internal view* of node `N_i` in unit `u` is the set of top-layer
//! messages it sent; its *external view* is everything other nonbroken nodes
//! accepted as coming from `N_i`. `N_i` is **impersonated** when its external
//! view contains a message absent from its internal view. Proposition 31:
//! under a `(t,t)`-limited adversary, an impersonated node alerts in the same
//! time unit.
//!
//! This module computes the views from the simulator's global output: the
//! ULS node logs `Sent { to, msg }` for every top-layer send and
//! `Accepted { from, msg }` for every top-layer accept.

use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent, OutputLog};
use std::collections::BTreeSet;

/// An impersonation incident: `victim` appeared to send `msg` to `observer`
/// in `unit`, but never did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Impersonation {
    /// The node whose identity was forged.
    pub victim: NodeId,
    /// The node that accepted the forged message.
    pub observer: NodeId,
    /// The forged payload.
    pub msg: Vec<u8>,
    /// The time unit of the acceptance.
    pub unit: u64,
}

/// Scans the global output for impersonations (Definition 10).
///
/// `broken_in_unit(node, unit)` must return whether the node was broken at
/// any point in that unit (broken nodes' views are excluded on both sides,
/// as in the definition).
pub fn find_impersonations(
    outputs: &[OutputLog],
    schedule: &Schedule,
    mut broken_in_unit: impl FnMut(NodeId, u64) -> bool,
) -> Vec<Impersonation> {
    // Internal views: (sender, unit) → set of messages sent.
    let mut sent: BTreeSet<(u32, u64, Vec<u8>)> = BTreeSet::new();
    for (idx, log) in outputs.iter().enumerate() {
        let sender = NodeId::from_idx(idx);
        for (round, ev) in log {
            if let OutputEvent::Sent { msg, .. } = ev {
                sent.insert((sender.0, schedule.unit_of(*round), msg.clone()));
            }
        }
    }
    let mut incidents = Vec::new();
    for (idx, log) in outputs.iter().enumerate() {
        let observer = NodeId::from_idx(idx);
        for (round, ev) in log {
            let OutputEvent::Accepted { from, msg } = ev else {
                continue;
            };
            let unit = schedule.unit_of(*round);
            if broken_in_unit(observer, unit) || broken_in_unit(*from, unit) {
                continue;
            }
            // A message accepted in unit u may have been sent at the very end
            // of unit u−1 (2-round transit across the boundary).
            let in_view = sent.contains(&(from.0, unit, msg.clone()))
                || (unit > 0 && sent.contains(&(from.0, unit - 1, msg.clone())));
            if !in_view {
                incidents.push(Impersonation {
                    victim: *from,
                    observer,
                    msg: msg.clone(),
                    unit,
                });
            }
        }
    }
    incidents
}

/// Checks Proposition 31 over a run: every impersonated node alerted in the
/// unit it was impersonated. Returns the incidents that were *not* covered
/// by an alert.
pub fn unalerted_impersonations(
    outputs: &[OutputLog],
    schedule: &Schedule,
    broken_in_unit: impl FnMut(NodeId, u64) -> bool,
    alerted: impl Fn(NodeId, u64) -> bool,
) -> Vec<Impersonation> {
    find_impersonations(outputs, schedule, broken_in_unit)
        .into_iter()
        .filter(|imp| !alerted(imp.victim, imp.unit))
        .collect()
}

/// The §5.1 *weak global awareness* check: against adversaries stronger than
/// `(t,t)`-limited, the paper can only promise that **somebody** alerts in
/// the **first** unit where impersonations occur (afterwards "all bets are
/// off"). Returns `Ok(())` when that holds, or the first offending unit.
///
/// `alerted_any(unit)` must report whether any node alerted in that unit.
pub fn check_weak_global_awareness(
    outputs: &[OutputLog],
    schedule: &Schedule,
    broken_in_unit: impl FnMut(NodeId, u64) -> bool,
    alerted_any: impl Fn(u64) -> bool,
) -> Result<(), u64> {
    let incidents = find_impersonations(outputs, schedule, broken_in_unit);
    let Some(first_unit) = incidents.iter().map(|i| i.unit).min() else {
        return Ok(()); // no impersonations at all
    };
    if alerted_any(first_unit) {
        Ok(())
    } else {
        Err(first_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Schedule {
        Schedule::new(10, 2, 2)
    }

    #[test]
    fn clean_run_has_no_impersonations() {
        let outputs = vec![
            vec![(
                0,
                OutputEvent::Sent {
                    to: NodeId(2),
                    msg: b"m".to_vec(),
                },
            )],
            vec![(
                2,
                OutputEvent::Accepted {
                    from: NodeId(1),
                    msg: b"m".to_vec(),
                },
            )],
        ];
        assert!(find_impersonations(&outputs, &schedule(), |_, _| false).is_empty());
    }

    #[test]
    fn forged_accept_detected() {
        let outputs = vec![
            vec![],
            vec![(
                2,
                OutputEvent::Accepted {
                    from: NodeId(1),
                    msg: b"forged".to_vec(),
                },
            )],
        ];
        let found = find_impersonations(&outputs, &schedule(), |_, _| false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].victim, NodeId(1));
        assert_eq!(found[0].observer, NodeId(2));
    }

    #[test]
    fn cross_unit_boundary_send_not_flagged() {
        // Sent in unit 0 (round 9), accepted in unit 1 (round 11).
        let outputs = vec![
            vec![(
                9,
                OutputEvent::Sent {
                    to: NodeId(2),
                    msg: b"m".to_vec(),
                },
            )],
            vec![(
                11,
                OutputEvent::Accepted {
                    from: NodeId(1),
                    msg: b"m".to_vec(),
                },
            )],
        ];
        assert!(find_impersonations(&outputs, &schedule(), |_, _| false).is_empty());
    }

    #[test]
    fn broken_victim_excluded() {
        let outputs = vec![
            vec![],
            vec![(
                2,
                OutputEvent::Accepted {
                    from: NodeId(1),
                    msg: b"x".to_vec(),
                },
            )],
        ];
        // Node 1 broken in unit 0: definition excludes it.
        let found = find_impersonations(&outputs, &schedule(), |n, _| n == NodeId(1));
        assert!(found.is_empty());
    }

    #[test]
    fn weak_awareness_checks_first_unit_only() {
        let sched = schedule();
        // Impersonations in units 0 and 2; an alert only in unit 0.
        let outputs = vec![
            vec![],
            vec![
                (2, OutputEvent::Accepted { from: NodeId(1), msg: b"a".to_vec() }),
                (21, OutputEvent::Accepted { from: NodeId(1), msg: b"b".to_vec() }),
            ],
        ];
        let ok = check_weak_global_awareness(
            &outputs,
            &sched,
            |_, _| false,
            |unit| unit == 0,
        );
        assert_eq!(ok, Ok(()));
        // No alert in the first incident unit: violation reported.
        let bad = check_weak_global_awareness(
            &outputs,
            &sched,
            |_, _| false,
            |_| false,
        );
        assert_eq!(bad, Err(0));
        // No impersonations: vacuously fine.
        let none = check_weak_global_awareness(&[vec![], vec![]], &sched, |_, _| false, |_| false);
        assert_eq!(none, Ok(()));
    }

    #[test]
    fn unalerted_filter_respects_alerts() {
        let outputs = vec![
            vec![],
            vec![(
                2,
                OutputEvent::Accepted {
                    from: NodeId(1),
                    msg: b"x".to_vec(),
                },
            )],
        ];
        let sched = schedule();
        let uncovered =
            unalerted_impersonations(&outputs, &sched, |_, _| false, |n, u| n == NodeId(1) && u == 0);
        assert!(uncovered.is_empty());
        let uncovered =
            unalerted_impersonations(&outputs, &sched, |_, _| false, |_, _| false);
        assert_eq!(uncovered.len(), 1);
    }
}
