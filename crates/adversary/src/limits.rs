//! `(s,t)`-limit accounting (Definition 7): a transparent wrapper that
//! measures, per time unit, how many nodes an adversary impairs (broken or
//! not `s`-operational), so experiments can *verify* an attack stayed within
//! the bound its security claim assumes.

use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// Wraps an adversary and records the impaired-node sets per unit — and,
/// when a §6 cluster topology is supplied, per `(unit, cluster)`, so
/// hierarchical experiments can verify the *two-level* budget: no unit in
/// which a majority of clusters lost a majority of members.
pub struct LimitObserver<A> {
    /// The wrapped adversary.
    pub inner: A,
    per_unit: BTreeMap<u64, BTreeSet<u32>>,
    /// §6 topology for per-cluster accounting (1-based global ids).
    clusters: Option<Vec<Vec<u32>>>,
    per_unit_cluster: BTreeMap<(u64, usize), BTreeSet<u32>>,
}

impl<A> LimitObserver<A> {
    /// Wraps `inner`.
    pub fn new(inner: A) -> Self {
        LimitObserver {
            inner,
            per_unit: BTreeMap::new(),
            clusters: None,
            per_unit_cluster: BTreeMap::new(),
        }
    }

    /// Wraps `inner` with per-cluster accounting over the given §6 topology
    /// (same shape as `SimConfig::clusters`).
    pub fn with_clusters(inner: A, clusters: Vec<Vec<u32>>) -> Self {
        LimitObserver {
            inner,
            per_unit: BTreeMap::new(),
            clusters: Some(clusters),
            per_unit_cluster: BTreeMap::new(),
        }
    }

    /// Nodes impaired at any point during `unit`.
    pub fn impaired_in_unit(&self, unit: u64) -> usize {
        self.per_unit.get(&unit).map_or(0, BTreeSet::len)
    }

    /// The maximum per-unit impairment over the run — the adversary is
    /// `(s,t)`-limited iff this is ≤ `t` (for the runner's `s`).
    pub fn max_impaired(&self) -> usize {
        self.per_unit.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Per-unit impairment counts.
    pub fn per_unit_counts(&self) -> Vec<(u64, usize)> {
        self.per_unit
            .iter()
            .map(|(u, s)| (*u, s.len()))
            .collect()
    }

    /// Nodes of `cluster` impaired at any point during `unit` (0 unless
    /// constructed via [`LimitObserver::with_clusters`]).
    pub fn cluster_impaired_in_unit(&self, unit: u64, cluster: usize) -> usize {
        self.per_unit_cluster
            .get(&(unit, cluster))
            .map_or(0, BTreeSet::len)
    }

    /// Clusters that lost a member *majority* during `unit` — the two-level
    /// scheme's unit of damage (a compromised cluster can betray its local
    /// PDS and its top-level slot).
    pub fn compromised_clusters_in_unit(&self, unit: u64) -> usize {
        let Some(clusters) = &self.clusters else {
            return 0;
        };
        clusters
            .iter()
            .enumerate()
            .filter(|(c, members)| 2 * self.cluster_impaired_in_unit(unit, *c) > members.len())
            .count()
    }

    /// The worst per-unit count of majority-compromised clusters over the
    /// run. The hierarchical construction's guarantees hold iff this stays
    /// ≤ `⌊k/2⌋` (no unit in which a cluster majority fell).
    pub fn max_compromised_clusters(&self) -> usize {
        self.per_unit
            .keys()
            .map(|&u| self.compromised_clusters_in_unit(u))
            .max()
            .unwrap_or(0)
    }

    fn record(&mut self, view: &NetView<'_>) {
        let entry = self.per_unit.entry(view.time.unit).or_default();
        for id in NodeId::all(view.n) {
            let impaired = view.broken[id.idx()]
                || view.crashed[id.idx()]
                || !view.operational[id.idx()];
            if impaired && entry.insert(id.0) {
                // Def. 7 budget consumption: a node newly counted against
                // this unit's `t` bound (crash-stopped rounds are charged
                // like broken ones).
                telemetry::count("adversary/impairments", 1);
            }
        }
        telemetry::gauge_max("adversary/max_impaired", entry.len() as u64);
        if let Some(clusters) = &self.clusters {
            let unit = view.time.unit;
            for (c, members) in clusters.iter().enumerate() {
                let slot = self.per_unit_cluster.entry((unit, c)).or_default();
                for &m in members {
                    let idx = (m - 1) as usize;
                    if view.broken[idx] || view.crashed[idx] || !view.operational[idx] {
                        slot.insert(m);
                    }
                }
            }
            let compromised = self.compromised_clusters_in_unit(unit) as u64;
            telemetry::gauge_max("adversary/max_compromised_clusters", compromised);
        }
    }
}

impl<A: UlAdversary> UlAdversary for LimitObserver<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        self.record(view);
        self.inner.plan(view)
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        self.inner.corrupt(node, state, time);
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        self.record(view);
        self.inner.deliver(sent, view)
    }

    fn output(&mut self) -> Vec<String> {
        let mut out = self.inner.output();
        out.push(format!(
            "limit-observer: max impaired per unit = {}",
            self.max_impaired()
        ));
        if self.clusters.is_some() {
            out.push(format!(
                "limit-observer: max majority-compromised clusters per unit = {}",
                self.max_compromised_clusters()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_sim::adversary::FaithfulUl;
    use proauth_sim::clock::Schedule;

    #[test]
    fn records_broken_and_disconnected() {
        let mut obs = LimitObserver::new(FaithfulUl);
        let sched = Schedule::new(10, 2, 2);
        let broken = [true, false, false];
        let ops = [false, false, true]; // node 2 disconnected, node 1 broken
        let view = NetView {
            time: proauth_sim::clock::TimeView::at(&sched, 3),
            n: 3,
            broken: &broken,
            crashed: &[false, false, false],
            operational: &ops,
            last_delivered: &[],
            broken_inboxes: &[],
        };
        let _ = obs.deliver(&[], &view);
        assert_eq!(obs.impaired_in_unit(0), 2);
        assert_eq!(obs.max_impaired(), 2);
        // Unit 1: nothing impaired.
        let ops_ok = [true, true, true];
        let none = [false, false, false];
        let view2 = NetView {
            time: proauth_sim::clock::TimeView::at(&sched, 12),
            n: 3,
            broken: &none,
            crashed: &[false, false, false],
            operational: &ops_ok,
            last_delivered: &[],
            broken_inboxes: &[],
        };
        let _ = obs.deliver(&[], &view2);
        assert_eq!(obs.impaired_in_unit(1), 0);
        assert_eq!(obs.per_unit_counts(), vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn cluster_accounting_counts_majorities() {
        // Clusters {1,2,3} and {4,5,6}: breaking 2 of the first cluster
        // compromises it; one impaired node in the second does not.
        let clusters = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let mut obs = LimitObserver::with_clusters(FaithfulUl, clusters);
        let sched = Schedule::new(10, 2, 2);
        let broken = [true, true, false, false, false, false];
        let ops = [false, false, true, true, true, false];
        let view = NetView {
            time: proauth_sim::clock::TimeView::at(&sched, 3),
            n: 6,
            broken: &broken,
            crashed: &[false; 6],
            operational: &ops,
            last_delivered: &[],
            broken_inboxes: &[],
        };
        let _ = obs.deliver(&[], &view);
        assert_eq!(obs.cluster_impaired_in_unit(0, 0), 2);
        assert_eq!(obs.cluster_impaired_in_unit(0, 1), 1);
        assert_eq!(obs.compromised_clusters_in_unit(0), 1);
        assert_eq!(obs.max_compromised_clusters(), 1);
        // The flat accounting still sees all three impairments.
        assert_eq!(obs.impaired_in_unit(0), 3);
        let lines = obs.output();
        assert!(lines
            .iter()
            .any(|l| l.contains("majority-compromised clusters per unit = 1")));
    }
}
