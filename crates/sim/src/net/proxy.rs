//! The chaos proxy: an adversarial *process* on the wire.
//!
//! In hub topology every node holds one connection to the proxy, which
//! routes protocol frames by destination. Because all traffic crosses it,
//! the proxy is exactly the paper's UL adversary boundary made physical: it
//! can delay a frame by whole rounds, duplicate it, scramble arrival order,
//! or partition the network for a window of rounds — all *deterministically*,
//! keyed by a seed and the frame's `(round, from, to, seq)` identity, so a
//! chaos run is reproducible bit for bit.
//!
//! Model discipline is kept:
//!
//! * **setup traffic is faithful** — the set-up phase is adversary-free by
//!   assumption (§2.1), so `Setup`/`SetupMark` frames are forwarded verbatim
//!   and immediately;
//! * **marks are faithful** — barriers are engine pacing, not protocol
//!   messages; tampering with them would simulate a *slow engine*, not an
//!   adversarial network;
//! * **round frames** are fair game, and every manipulation maps to a legal
//!   UL adversary action (delayed/duplicated/reordered delivery).

use super::msg::NetMsg;
use super::peer::{AddrPlan, Conn, NetListener};
use super::poll;
use crate::message::NodeId;
use proauth_primitives::sha256;
use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// Cap on frames parked for a node whose link is down; beyond this new
/// frames are dropped — matching engine crash semantics.
const PENDING_CAP: usize = 4096;

/// A partition window: during rounds `[start, end)`, frames between the two
/// groups (`id <= split` vs `id > split`) are held and released when the
/// partition heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First partitioned round.
    pub start: u64,
    /// First healed round.
    pub end: u64,
    /// Largest node id of the first group.
    pub split: u32,
}

/// Deterministic chaos parameters. All percentages are per *frame*, decided
/// by hashing `(seed, round, from, to, seq)` — same seed, same scenario, same
/// chaos, every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosNetSpec {
    /// Chaos decision seed (independent of the protocol seed).
    pub seed: u64,
    /// Percent of round frames delayed by extra rounds.
    pub delay_pct: u8,
    /// Maximum extra rounds a delayed frame is held (≥ 1 when delaying).
    pub delay_max: u64,
    /// Percent of round frames duplicated.
    pub dup_pct: u8,
    /// Percent of round frames whose arrival order is scrambled (swapped with
    /// the next frame to the same destination).
    pub reorder_pct: u8,
    /// Percent of `(round, node)` pairs whose proxy link is reset mid-frame
    /// right after the node's barrier mark: the node sees a torn frame and a
    /// dead socket, and must redial and re-handshake.
    pub reset_pct: u8,
    /// Optional partition window.
    pub partition: Option<Partition>,
}

impl ChaosNetSpec {
    /// A faithful proxy: routes everything verbatim.
    pub fn faithful() -> Self {
        ChaosNetSpec {
            seed: 0,
            delay_pct: 0,
            delay_max: 0,
            dup_pct: 0,
            reorder_pct: 0,
            reset_pct: 0,
            partition: None,
        }
    }

    /// Whether any manipulation is enabled.
    pub fn is_faithful(&self) -> bool {
        self.delay_pct == 0
            && self.dup_pct == 0
            && self.reorder_pct == 0
            && self.reset_pct == 0
            && self.partition.is_none()
    }

    /// Deterministic socket-reset decision for `(round, node)`.
    pub fn reset_due(&self, round: u64, node: NodeId) -> bool {
        if self.reset_pct == 0 {
            return false;
        }
        let h = sha256::hash_parts(
            "proauth/net/chaos",
            &[
                b"reset",
                &self.seed.to_be_bytes(),
                &round.to_be_bytes(),
                &node.0.to_be_bytes(),
            ],
        );
        (h[0] % 100) < self.reset_pct
    }

    /// The deterministic decision for one frame.
    fn decide(&self, round: u64, from: NodeId, to: NodeId, seq: u32) -> ChaosDecision {
        if self.is_faithful() {
            return ChaosDecision::default();
        }
        let h = sha256::hash_parts(
            "proauth/net/chaos",
            &[
                &self.seed.to_be_bytes(),
                &round.to_be_bytes(),
                &from.0.to_be_bytes(),
                &to.0.to_be_bytes(),
                &seq.to_be_bytes(),
            ],
        );
        let mut d = ChaosDecision::default();
        if self.partition_blocks(round, from, to) {
            // Held until the partition heals; other manipulations are moot.
            d.delay_rounds = self
                .partition
                .map(|p| p.end.saturating_sub(round))
                .unwrap_or(0);
            return d;
        }
        if self.delay_pct > 0 && (h[0] % 100) < self.delay_pct {
            d.delay_rounds = 1 + (h[3] as u64) % self.delay_max.max(1);
        }
        if self.dup_pct > 0 && (h[1] % 100) < self.dup_pct {
            d.duplicate = true;
        }
        if self.reorder_pct > 0 && (h[2] % 100) < self.reorder_pct {
            d.reorder = true;
        }
        d
    }

    /// Whether the partition separates `from` and `to` at `round`.
    fn partition_blocks(&self, round: u64, from: NodeId, to: NodeId) -> bool {
        match self.partition {
            Some(p) if round >= p.start && round < p.end => {
                (from.0 <= p.split) != (to.0 <= p.split)
            }
            _ => false,
        }
    }
}

/// What happens to one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ChaosDecision {
    /// Extra rounds to hold the frame (0 = forward now).
    delay_rounds: u64,
    /// Forward a second copy.
    duplicate: bool,
    /// Swap with the next frame to the same destination.
    reorder: bool,
}

/// Proxy accounting, printed by the CLI at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Round frames forwarded (including released and duplicated copies).
    pub forwarded: u64,
    /// Frames held for extra rounds (delay or partition).
    pub delayed: u64,
    /// Duplicate copies injected.
    pub duplicated: u64,
    /// Frames swapped out of arrival order.
    pub reordered: u64,
    /// Setup frames forwarded verbatim.
    pub setup_forwarded: u64,
    /// Marks fanned out.
    pub marks: u64,
    /// Node links reset mid-frame (socket-reset chaos).
    pub resets: u64,
}

/// Chaos proxy deployment parameters.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Network size (number of node connections to expect).
    pub n: usize,
    /// Address plan (the proxy listens at `plan.proxy()`).
    pub plan: AddrPlan,
    /// Manipulation parameters.
    pub spec: ChaosNetSpec,
    /// Scenario digest; Hellos with a different `run_id` are rejected.
    pub run_id: u64,
    /// Exit with an error if no traffic arrives for this long.
    pub idle_timeout_ms: u64,
}

/// The proxy process body: accept `n` nodes, route until all say Bye.
pub struct Proxy {
    cfg: ProxyConfig,
    listener: NetListener,
    conns: Vec<Option<Conn>>,
    limbo: Vec<Conn>,
    /// Highest round any node has marked complete (drives held-frame release).
    observed_round: u64,
    /// Held frames keyed by release round.
    held: BTreeMap<u64, Vec<(NodeId, NetMsg)>>,
    /// One stashed frame per destination, waiting to be swapped behind the
    /// next frame to that destination.
    stash: Vec<Option<NetMsg>>,
    /// Frames for destinations that have not connected yet (nodes start in
    /// arbitrary order; early setup traffic must not be lost).
    pending: Vec<Vec<NetMsg>>,
    departed: Vec<bool>,
    stats: ProxyStats,
}

impl Proxy {
    /// Binds the proxy endpoint.
    pub fn bind(cfg: ProxyConfig) -> io::Result<Self> {
        let listener = NetListener::bind(&cfg.plan.proxy())?;
        let n = cfg.n;
        Ok(Proxy {
            cfg,
            listener,
            conns: (0..n).map(|_| None).collect(),
            limbo: Vec::new(),
            observed_round: 0,
            held: BTreeMap::new(),
            stash: (0..n).map(|_| None).collect(),
            pending: (0..n).map(|_| Vec::new()).collect(),
            departed: vec![false; n],
            stats: ProxyStats::default(),
        })
    }

    /// Runs the routing loop until every node departed (or went silent past
    /// the idle timeout). Returns the accounting.
    pub fn run(mut self) -> io::Result<ProxyStats> {
        let idle = Duration::from_millis(self.cfg.idle_timeout_ms);
        let mut last_traffic = Instant::now();
        loop {
            if self.departed.iter().all(|&d| d) || self.all_conns_dead() {
                break;
            }
            if last_traffic.elapsed() > idle {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "proxy idle for {}ms with {} nodes still connected",
                        self.cfg.idle_timeout_ms,
                        self.departed.iter().filter(|&&d| !d).count()
                    ),
                ));
            }
            if self.pump()? {
                last_traffic = Instant::now();
            }
        }
        // Release everything still held so no frame is silently dropped.
        self.release_held(u64::MAX);
        self.flush_stashes();
        for conn in self.conns.iter_mut().flatten() {
            conn.flush_blocking(Duration::from_millis(500));
        }
        Ok(self.stats)
    }

    fn all_conns_dead(&self) -> bool {
        // Only meaningful once every slot has been claimed at least once.
        self.conns
            .iter()
            .all(|c| matches!(c, Some(conn) if conn.closed))
    }

    /// One poll iteration; returns whether any traffic moved.
    fn pump(&mut self) -> io::Result<bool> {
        let mut fds: Vec<(RawFd, bool)> = Vec::new();
        enum Slot {
            Node(usize),
            Limbo,
            Listener,
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (idx, conn) in self.conns.iter().enumerate() {
            if let Some(c) = conn {
                if !c.closed {
                    fds.push((c.raw_fd(), c.wants_write()));
                    slots.push(Slot::Node(idx));
                }
            }
        }
        for (k, c) in self.limbo.iter().enumerate() {
            if !c.closed {
                fds.push((c.raw_fd(), false));
                slots.push(Slot::Limbo);
                let _ = k;
            }
        }
        fds.push((self.listener.raw_fd(), false));
        slots.push(Slot::Listener);

        let ready = poll::poll(&fds, Some(50))?;
        let mut moved = false;
        let mut inbound: Vec<(NodeId, NetMsg)> = Vec::new();
        for (slot, r) in slots.iter().zip(&ready) {
            match slot {
                Slot::Node(idx) => {
                    let conn = self.conns[*idx].as_mut().expect("slot maps live conn");
                    if r.writable {
                        let _ = conn.flush();
                    }
                    if r.readable || r.hangup {
                        let from = NodeId::from_idx(*idx);
                        for m in conn.recv() {
                            inbound.push((from, m));
                        }
                    }
                }
                Slot::Limbo => {} // adoption below reads these
                Slot::Listener => {
                    if r.readable {
                        while let Some(stream) = self.listener.accept()? {
                            self.limbo.push(Conn::new(stream));
                            moved = true;
                        }
                    }
                }
            }
        }
        self.adopt_identified();
        for (from, msg) in inbound {
            moved = true;
            self.route(from, msg);
        }
        Ok(moved)
    }

    /// Claims limbo connections whose Hello arrived.
    fn adopt_identified(&mut self) {
        let mut k = 0;
        while k < self.limbo.len() {
            let msgs = self.limbo[k].recv();
            let mut hello_from: Option<u32> = None;
            let mut rest: Vec<NetMsg> = Vec::new();
            for m in msgs {
                match m {
                    NetMsg::Hello { node, run_id } => {
                        if run_id == self.cfg.run_id && node >= 1 && node as usize <= self.cfg.n {
                            hello_from = Some(node);
                        }
                    }
                    other => rest.push(other),
                }
            }
            if let Some(node) = hello_from {
                let conn = self.limbo.remove(k);
                let idx = NodeId(node).idx();
                self.conns[idx] = Some(conn);
                self.departed[idx] = false;
                // Frames that arrived for this node before it connected.
                let queued = std::mem::take(&mut self.pending[idx]);
                if let Some(c) = self.conns[idx].as_mut() {
                    for m in &queued {
                        c.send(m);
                    }
                }
                for m in rest {
                    self.route(NodeId(node), m);
                }
            } else {
                if self.limbo[k].closed {
                    self.limbo.remove(k);
                    continue;
                }
                k += 1;
            }
        }
    }

    fn send_to(&mut self, to: NodeId, msg: &NetMsg) {
        let idx = to.idx();
        match self.conns[idx].as_mut() {
            Some(conn) if !conn.closed => conn.send(msg),
            // Not connected (yet, or its link died): hold until the node's
            // Hello (re-)arrives — slot retention across a restart. Departed
            // nodes get nothing; the backlog is bounded.
            _ => {
                if !self.departed[idx] && self.pending[idx].len() < PENDING_CAP {
                    self.pending[idx].push(msg.clone());
                }
            }
        }
    }

    fn fan_out(&mut self, from: NodeId, msg: &NetMsg) {
        self.stats.marks += 1;
        for id in NodeId::all(self.cfg.n) {
            if id != from {
                self.send_to(id, msg);
            }
        }
    }

    /// Routes one frame received from `from`, applying chaos to round
    /// traffic.
    fn route(&mut self, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Hello { .. } => {}
            // Setup traffic: faithful, immediate.
            NetMsg::Setup { to, .. } => {
                self.stats.setup_forwarded += 1;
                self.send_to(to, &msg);
            }
            NetMsg::SetupMark { .. } => self.fan_out(from, &msg),
            NetMsg::Round {
                round, seq, to, ..
            } => {
                let decision = self.cfg.spec.decide(round, from, to, seq);
                if decision.delay_rounds > 0 {
                    self.stats.delayed += 1;
                    self.held
                        .entry(round + decision.delay_rounds)
                        .or_default()
                        .push((to, msg));
                    return;
                }
                if decision.duplicate {
                    self.stats.duplicated += 1;
                    self.stats.forwarded += 1;
                    self.send_to(to, &msg);
                }
                if decision.reorder {
                    match self.stash[to.idx()].take() {
                        // A frame is already waiting: forward the new one
                        // first, then the stashed one — a visible swap.
                        Some(stashed) => {
                            self.stats.reordered += 1;
                            self.stats.forwarded += 2;
                            self.send_to(to, &msg);
                            self.send_to(to, &stashed);
                        }
                        None => {
                            self.stash[to.idx()] = Some(msg);
                        }
                    }
                    return;
                }
                // A stashed frame rides out behind any later frame to the
                // same destination.
                if let Some(stashed) = self.stash[to.idx()].take() {
                    self.stats.reordered += 1;
                    self.stats.forwarded += 2;
                    self.send_to(to, &msg);
                    self.send_to(to, &stashed);
                } else {
                    self.stats.forwarded += 1;
                    self.send_to(to, &msg);
                }
            }
            NetMsg::RoundMark { round, .. } => {
                if round > self.observed_round {
                    self.observed_round = round;
                    self.release_held(round);
                }
                // Stashed frames must not be held across a barrier longer
                // than necessary; flush before the mark goes out.
                self.flush_stashes();
                self.fan_out(from, &msg);
                // Socket-reset chaos: tear this node's link mid-frame right
                // after its mark — a half-written frame, then a dead socket.
                // The node must notice, redial, and re-handshake; its decoder
                // must survive the torn frame.
                if self.cfg.spec.reset_due(round, from) {
                    self.stats.resets += 1;
                    if let Some(conn) = self.conns[from.idx()].as_mut() {
                        conn.send_partial(&NetMsg::RoundMark { round, from });
                    }
                    self.conns[from.idx()] = None;
                }
            }
            NetMsg::Rejoin { node, .. } => {
                // A restarted node announces its return: clear its departure,
                // relay the announcement to every peer, and ack directly with
                // the live round the hub has observed.
                if node >= 1 && node as usize <= self.cfg.n {
                    self.departed[NodeId(node).idx()] = false;
                }
                self.fan_out(from, &msg);
                self.send_to(
                    from,
                    &NetMsg::RejoinAck {
                        node: 0,
                        round: self.observed_round,
                    },
                );
            }
            // Peer acks carry no destination; fan them out — receivers fold
            // the round into their live-round hint monotonically.
            NetMsg::RejoinAck { .. } => self.fan_out(from, &msg),
            NetMsg::Bye { node } => {
                if node >= 1 && node as usize <= self.cfg.n {
                    self.departed[NodeId(node).idx()] = true;
                }
                self.fan_out(from, &msg);
            }
            // Collector-bound traffic does not transit the proxy.
            NetMsg::Event { .. }
            | NetMsg::Report(_)
            | NetMsg::Metrics { .. }
            | NetMsg::Beacon(_)
            | NetMsg::Alarm(_)
            | NetMsg::Trace { .. } => {}
        }
    }

    /// Forwards all held frames whose release round has been reached.
    fn release_held(&mut self, up_to: u64) {
        let due: Vec<u64> = self.held.range(..=up_to).map(|(k, _)| *k).collect();
        for k in due {
            for (to, msg) in self.held.remove(&k).unwrap_or_default() {
                self.stats.forwarded += 1;
                self.send_to(to, &msg);
            }
        }
    }

    /// Forwards every stashed (reorder-pending) frame.
    fn flush_stashes(&mut self) {
        for idx in 0..self.stash.len() {
            if let Some(msg) = self.stash[idx].take() {
                self.stats.forwarded += 1;
                self.send_to(NodeId::from_idx(idx), &msg);
            }
        }
    }
}

/// Convenience: bind and run in one call.
pub fn run_proxy(cfg: ProxyConfig) -> io::Result<ProxyStats> {
    Proxy::bind(cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_decisions_are_deterministic_and_bounded() {
        let spec = ChaosNetSpec {
            seed: 42,
            delay_pct: 30,
            delay_max: 3,
            dup_pct: 10,
            reorder_pct: 10,
            reset_pct: 0,
            partition: None,
        };
        let mut delayed = 0u32;
        for seq in 0..1000 {
            let a = spec.decide(7, NodeId(1), NodeId(2), seq);
            let b = spec.decide(7, NodeId(1), NodeId(2), seq);
            assert_eq!(a, b, "decisions must be reproducible");
            if a.delay_rounds > 0 {
                delayed += 1;
                assert!(a.delay_rounds <= 3);
            }
        }
        // ~30% of 1000, generously bracketed.
        assert!((150..450).contains(&delayed), "delayed={delayed}");
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let spec = ChaosNetSpec {
            partition: Some(Partition {
                start: 10,
                end: 20,
                split: 3,
            }),
            ..ChaosNetSpec::faithful()
        };
        // Cross-group, inside the window: held until healing.
        let d = spec.decide(12, NodeId(1), NodeId(5), 0);
        assert_eq!(d.delay_rounds, 8);
        // Same group: untouched.
        assert_eq!(spec.decide(12, NodeId(1), NodeId(3), 0).delay_rounds, 0);
        // Outside the window: untouched.
        assert_eq!(spec.decide(20, NodeId(1), NodeId(5), 0).delay_rounds, 0);
        assert_eq!(spec.decide(9, NodeId(1), NodeId(5), 0).delay_rounds, 0);
    }

    #[test]
    fn faithful_spec_is_identity() {
        let spec = ChaosNetSpec::faithful();
        assert!(spec.is_faithful());
        let d = spec.decide(5, NodeId(1), NodeId(2), 9);
        assert_eq!(d, ChaosDecision::default());
    }
}
