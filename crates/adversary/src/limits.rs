//! `(s,t)`-limit accounting (Definition 7): a transparent wrapper that
//! measures, per time unit, how many nodes an adversary impairs (broken or
//! not `s`-operational), so experiments can *verify* an attack stayed within
//! the bound its security claim assumes.

use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// Wraps an adversary and records the impaired-node sets per unit.
pub struct LimitObserver<A> {
    /// The wrapped adversary.
    pub inner: A,
    per_unit: BTreeMap<u64, BTreeSet<u32>>,
}

impl<A> LimitObserver<A> {
    /// Wraps `inner`.
    pub fn new(inner: A) -> Self {
        LimitObserver {
            inner,
            per_unit: BTreeMap::new(),
        }
    }

    /// Nodes impaired at any point during `unit`.
    pub fn impaired_in_unit(&self, unit: u64) -> usize {
        self.per_unit.get(&unit).map_or(0, BTreeSet::len)
    }

    /// The maximum per-unit impairment over the run — the adversary is
    /// `(s,t)`-limited iff this is ≤ `t` (for the runner's `s`).
    pub fn max_impaired(&self) -> usize {
        self.per_unit.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Per-unit impairment counts.
    pub fn per_unit_counts(&self) -> Vec<(u64, usize)> {
        self.per_unit
            .iter()
            .map(|(u, s)| (*u, s.len()))
            .collect()
    }

    fn record(&mut self, view: &NetView<'_>) {
        let entry = self.per_unit.entry(view.time.unit).or_default();
        for id in NodeId::all(view.n) {
            let impaired = view.broken[id.idx()]
                || view.crashed[id.idx()]
                || !view.operational[id.idx()];
            if impaired && entry.insert(id.0) {
                // Def. 7 budget consumption: a node newly counted against
                // this unit's `t` bound (crash-stopped rounds are charged
                // like broken ones).
                telemetry::count("adversary/impairments", 1);
            }
        }
        telemetry::gauge_max("adversary/max_impaired", entry.len() as u64);
    }
}

impl<A: UlAdversary> UlAdversary for LimitObserver<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        self.record(view);
        self.inner.plan(view)
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        self.inner.corrupt(node, state, time);
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        self.record(view);
        self.inner.deliver(sent, view)
    }

    fn output(&mut self) -> Vec<String> {
        let mut out = self.inner.output();
        out.push(format!(
            "limit-observer: max impaired per unit = {}",
            self.max_impaired()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_sim::adversary::FaithfulUl;
    use proauth_sim::clock::Schedule;

    #[test]
    fn records_broken_and_disconnected() {
        let mut obs = LimitObserver::new(FaithfulUl);
        let sched = Schedule::new(10, 2, 2);
        let broken = [true, false, false];
        let ops = [false, false, true]; // node 2 disconnected, node 1 broken
        let view = NetView {
            time: proauth_sim::clock::TimeView::at(&sched, 3),
            n: 3,
            broken: &broken,
            crashed: &[false, false, false],
            operational: &ops,
            last_delivered: &[],
            broken_inboxes: &[],
        };
        let _ = obs.deliver(&[], &view);
        assert_eq!(obs.impaired_in_unit(0), 2);
        assert_eq!(obs.max_impaired(), 2);
        // Unit 1: nothing impaired.
        let ops_ok = [true, true, true];
        let none = [false, false, false];
        let view2 = NetView {
            time: proauth_sim::clock::TimeView::at(&sched, 12),
            n: 3,
            broken: &none,
            crashed: &[false, false, false],
            operational: &ops_ok,
            last_delivered: &[],
            broken_inboxes: &[],
        };
        let _ = obs.deliver(&[], &view2);
        assert_eq!(obs.impaired_in_unit(1), 0);
        assert_eq!(obs.per_unit_counts(), vec![(0, 2), (1, 0)]);
    }
}
