//! The §6 two-level hierarchy, end to end.
//!
//! Every `≈√n` cluster runs its own complete cluster-local ULS stack — DKG,
//! per-unit key certification, proactive share refresh, signing service —
//! addressed with cluster-local ids and isolated by a per-cluster PDS
//! session-id scope. On top, one *representative* per cluster participates
//! in a top-level PDS over the `k = cluster_count` representatives, whose
//! joint key is burned into every node's ROM at the end of setup.
//!
//! This turns the flat scheme's `Θ(n²)` refresh traffic into
//! `k · Θ((n/k)²) + Θ(k²) = Θ(n·√n)` — the scalability trade the paper
//! sketches, at the cost of tolerating only `≈ n/4` *adversarially placed*
//! break-ins (see [`crate::partition`]).
//!
//! ## Transport and authentication
//!
//! [`HierNode`] is one [`Process`] per physical node, multiplexing four
//! lanes over the global network ([`HierWire`]):
//!
//! * **Local** — inner ULS traffic, forwarded verbatim between same-cluster
//!   members (global ↔ cluster-local id translation at the boundary). The
//!   inner stack authenticates it end to end; the hierarchy layer only
//!   refuses envelopes claiming a sender outside the cluster.
//! * **Top** — top-level PDS messages between representatives. The payload
//!   rides CERTIFY under the sender's *cluster-local* per-unit key and is
//!   verified against the **sender cluster's** PDS verification key from the
//!   ROM table, so a broken representative can disturb at most its own
//!   cluster's top-level slot — exactly the failure the top threshold
//!   `t_top = ⌊(k−1)/2⌋` absorbs. Sends are addressed to *every* member of
//!   the destination cluster (robust to re-election); only the current
//!   representative processes them.
//! * **Beat** — the representative's certified heartbeat to its own cluster
//!   every [`BEAT_PERIOD`] rounds, carrying its election `attempt`. Members
//!   that miss beats for [`BEAT_TIMEOUT`] rounds advance the attempt counter
//!   and deterministically elect [`Partition::representative`]`(c, attempt)`
//!   — no election protocol, the member list cycle is the election. A newly
//!   promoted representative joins the top PDS share-less
//!   ([`AlsPds::recovering`]) and receives a share through Herzberg recovery
//!   at the next refresh; the top-level *public* key never changes, so the
//!   cluster's external identity is stable across any number of re-elections.
//! * **Transit** — direct cross-cluster application traffic: certified with
//!   the sender's cluster-local key, destination bound to the recipient's
//!   *global* id, verified against the sender cluster's key from ROM.
//!
//! Every certified lane inherits the flat scheme's replay protection: the
//! signature binds `(m, i, j, u, w)` and receivers require `w = round − 1`
//! (direct delivery is one hop, unlike AUTH-SEND's two). Payload tag bytes
//! (`M_TOP`/`M_BEAT`/`M_TRANSIT`) domain-separate the lanes so a message
//! certified for one cannot be replayed into another.

use crate::authenticator::AlProtocol;
use crate::certify::{certify, ver_cert, DestCheck};
use crate::partition::Partition;
use crate::uls::{AuthMode, UlsConfig, UlsNode, PART1_ROUNDS, PART2_ROUNDS, SETUP_ROUNDS};
use crate::wire::CertifiedMsg;
use crate::disperse::DisperseMode;
use proauth_crypto::group::Group;
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::api::{AlPds, PdsPhase, PdsTime};
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use proauth_sim::clock::Phase;
use proauth_sim::message::{Envelope, NodeId, OutputEvent, Payload};
use proauth_sim::process::{Process, Rom, RoundCtx, SetupCtx};
use proauth_telemetry as telemetry;
use std::collections::BTreeMap;

/// Setup rounds a hierarchical network needs: the inner ULS setup, then
/// three rounds of top-level DKG + ROM-table dissemination.
pub const HIER_SETUP_ROUNDS: u64 = SETUP_ROUNDS + 3;

/// A representative heartbeats its cluster every this many rounds.
pub const BEAT_PERIOD: u64 = 2;

/// Rounds without a valid beat before a member advances the election
/// attempt (4 missed beats at [`BEAT_PERIOD`] = 2).
pub const BEAT_TIMEOUT: u64 = 8;

/// ROM key holding the top-level PDS verification key.
pub const ROM_V_TOP: &str = "hier/v_top";

/// ROM key holding the table of per-cluster PDS verification keys.
pub const ROM_CLUSTER_CERTS: &str = "hier/cluster_certs";

/// Payload tags domain-separating the certified lanes.
const M_TOP: u8 = 1;
const M_BEAT: u8 = 2;
const M_TRANSIT: u8 = 3;

/// The PDS session-id scope of cluster `c`'s inner instance.
pub fn cluster_scope(cluster: usize) -> Vec<u8> {
    format!("hier/c{cluster}").into_bytes()
}

/// The PDS session-id scope of the top-level instance.
pub fn top_scope() -> Vec<u8> {
    b"hier/top".to_vec()
}

/// The per-unit liveness statement the representatives jointly sign.
pub fn heartbeat_msg(unit: u64) -> Vec<u8> {
    let mut v = b"hier/heartbeat/".to_vec();
    v.extend_from_slice(&unit.to_be_bytes());
    v
}

/// Tags a runner input as a cross-cluster transit send: deliver `payload`
/// to the node with global id `dest`, authenticated through the hierarchy.
pub fn transit_input(dest: NodeId, payload: &[u8]) -> Vec<u8> {
    let mut v = vec![3u8];
    v.extend_from_slice(&dest.0.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

fn beat_payload(attempt: u64) -> Vec<u8> {
    let mut v = vec![M_BEAT];
    v.extend_from_slice(&attempt.to_be_bytes());
    v
}

fn parse_beat(m: &[u8]) -> Option<u64> {
    if m.len() == 9 && m[0] == M_BEAT {
        Some(u64::from_be_bytes(m[1..9].try_into().ok()?))
    } else {
        None
    }
}

/// Physical payloads of the hierarchical runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierWire {
    /// Cluster-local inner ULS traffic (opaque to the hierarchy layer).
    Local(Vec<u8>),
    /// Top-level PDS transport from `cluster`'s representative.
    Top {
        /// The sender's cluster index.
        cluster: u32,
        /// The certified carrier (`m` starts with `M_TOP`).
        msg: CertifiedMsg,
    },
    /// Representative heartbeat within a cluster (`m` = `M_BEAT` + attempt).
    Beat {
        /// The certified carrier.
        msg: CertifiedMsg,
    },
    /// Direct cross-cluster application traffic from a member of `cluster`.
    Transit {
        /// The sender's cluster index.
        cluster: u32,
        /// The certified carrier (`m` starts with `M_TRANSIT`).
        msg: CertifiedMsg,
    },
    /// Setup only: a top-level DKG dealing between initial representatives.
    SetupDeal(Vec<u8>),
    /// Setup only: broadcast of a cluster's PDS verification key.
    SetupCert {
        /// The cluster the key belongs to.
        cluster: u32,
        /// The key bytes.
        v_cert: Vec<u8>,
    },
    /// Setup only: broadcast of the aggregated top-level verification key.
    SetupTop {
        /// The key bytes.
        v_top: Vec<u8>,
    },
}

impl Encode for HierWire {
    fn encode(&self, w: &mut Writer) {
        match self {
            HierWire::Local(bytes) => {
                w.put_u8(1);
                bytes.encode(w);
            }
            HierWire::Top { cluster, msg } => {
                w.put_u8(2);
                w.put_u32(*cluster);
                msg.encode(w);
            }
            HierWire::Beat { msg } => {
                w.put_u8(3);
                msg.encode(w);
            }
            HierWire::Transit { cluster, msg } => {
                w.put_u8(4);
                w.put_u32(*cluster);
                msg.encode(w);
            }
            HierWire::SetupDeal(bytes) => {
                w.put_u8(5);
                bytes.encode(w);
            }
            HierWire::SetupCert { cluster, v_cert } => {
                w.put_u8(6);
                w.put_u32(*cluster);
                v_cert.encode(w);
            }
            HierWire::SetupTop { v_top } => {
                w.put_u8(7);
                v_top.encode(w);
            }
        }
    }
}

impl Decode for HierWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(HierWire::Local(Vec::<u8>::decode(r)?)),
            2 => Ok(HierWire::Top {
                cluster: r.get_u32()?,
                msg: CertifiedMsg::decode(r)?,
            }),
            3 => Ok(HierWire::Beat {
                msg: CertifiedMsg::decode(r)?,
            }),
            4 => Ok(HierWire::Transit {
                cluster: r.get_u32()?,
                msg: CertifiedMsg::decode(r)?,
            }),
            5 => Ok(HierWire::SetupDeal(Vec::<u8>::decode(r)?)),
            6 => Ok(HierWire::SetupCert {
                cluster: r.get_u32()?,
                v_cert: Vec::<u8>::decode(r)?,
            }),
            7 => Ok(HierWire::SetupTop {
                v_top: Vec::<u8>::decode(r)?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// Static parameters of a hierarchical deployment.
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// The Schnorr group (shared by every PDS instance).
    pub group: Group,
    /// The cluster topology.
    pub partition: Partition,
    /// DISPERSE fan-out policy of the inner cluster stacks.
    pub disperse: DisperseMode,
    /// Steady-state authentication mode of the inner cluster stacks.
    pub auth_mode: AuthMode,
}

impl HierConfig {
    /// The standard √n topology over `n` nodes.
    pub fn new(group: Group, n: usize) -> Self {
        HierConfig {
            group,
            partition: Partition::sqrt(n),
            disperse: DisperseMode::Full,
            auth_mode: AuthMode::default(),
        }
    }

    /// Total network size.
    pub fn n(&self) -> usize {
        self.partition.clusters.iter().map(Vec::len).sum()
    }
}

/// One physical node of the two-level construction: an inner cluster-local
/// [`UlsNode`], plus (when this node is its cluster's current
/// representative) a top-level [`AlsPds`] share.
pub struct HierNode<A: AlProtocol> {
    cfg: HierConfig,
    me: NodeId,
    cluster: usize,
    me_local: NodeId,
    members: Vec<u32>,
    /// The cluster-local ULS stack (public for tests and break-in
    /// strategies).
    pub inner: UlsNode<A>,
    /// The top-level PDS share — `Some` iff this node currently believes
    /// itself representative.
    pub top: Option<AlsPds>,
    /// Election attempt counter (see [`Partition::representative`]).
    attempt: u64,
    /// Round of the last valid beat (sent or received); `None` until the
    /// first post-setup round so a restarted node never times out its
    /// representative on stale state.
    last_beat: Option<u64>,
    /// Last unit we requested the top-level heartbeat signature for.
    heartbeat_unit: Option<u64>,
    /// Verified top-level PDS messages buffered until the next top tick.
    top_inbox: Vec<(NodeId, Vec<u8>)>,
    /// Lazily decoded ROM table of per-cluster verification keys.
    cert_table: Option<Vec<BigUint>>,
    /// Lazily decoded ROM copy of the top-level verification key.
    v_top_cache: Option<BigUint>,
    /// Setup scratch: collected per-cluster verification keys.
    setup_certs: BTreeMap<u32, Vec<u8>>,
    /// Setup scratch: the broadcast top-level key.
    setup_v_top: Option<Vec<u8>>,
    /// Re-elections this node has observed (instrumentation).
    pub reelections: u64,
}

impl<A: AlProtocol> HierNode<A> {
    /// Creates the node with global id `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not covered by the partition.
    pub fn new(cfg: HierConfig, me: NodeId, app: A) -> Self {
        let cluster = cfg
            .partition
            .cluster_of(me.0)
            .expect("node must be in the partition");
        let members = cfg.partition.clusters[cluster].clone();
        let me_local = NodeId(
            members
                .iter()
                .position(|&g| g == me.0)
                .expect("member of own cluster") as u32
                + 1,
        );
        let m = members.len();
        let mut inner_cfg = UlsConfig::new(
            cfg.group.clone(),
            m,
            cfg.partition.cluster_threshold(cluster),
        )
        .scoped(cluster_scope(cluster));
        inner_cfg.disperse = cfg.disperse;
        inner_cfg.auth_mode = cfg.auth_mode;
        let inner = UlsNode::new(inner_cfg, me_local, app);
        HierNode {
            me,
            cluster,
            me_local,
            members,
            inner,
            top: None,
            attempt: 0,
            last_beat: None,
            heartbeat_unit: None,
            top_inbox: Vec::new(),
            cert_table: None,
            v_top_cache: None,
            setup_certs: BTreeMap::new(),
            setup_v_top: None,
            reelections: 0,
            cfg,
        }
    }

    /// This node's cluster index.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// This node's cluster-local id.
    pub fn me_local(&self) -> NodeId {
        self.me_local
    }

    /// Whether this node currently serves as its cluster's representative.
    pub fn is_representative(&self) -> bool {
        self.top.is_some()
    }

    /// The current election attempt.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// Break-in: wipe all volatile secrets (inner stack and top share).
    pub fn corrupt_wipe(&mut self) {
        self.inner.corrupt_wipe();
        if let Some(top) = &mut self.top {
            top.corrupt_wipe();
            top.mark_share_lost();
        }
        self.top_inbox.clear();
    }

    fn top_cfg(&self) -> AlsConfig {
        let k = self.cfg.partition.cluster_count();
        AlsConfig::new(self.cfg.group.clone(), k, k.saturating_sub(1) / 2).scoped(top_scope())
    }

    /// The cluster-local id of a same-cluster global id.
    fn local_of(&self, global: NodeId) -> Option<NodeId> {
        self.members
            .iter()
            .position(|&g| g == global.0)
            .map(|p| NodeId(p as u32 + 1))
    }

    /// The global id of `local` within `cluster`.
    fn global_of(&self, cluster: usize, local: u32) -> Option<u32> {
        self.cfg
            .partition
            .clusters
            .get(cluster)?
            .get((local as usize).checked_sub(1)?)
            .copied()
    }

    /// `cluster`'s PDS verification key from the ROM table.
    fn cluster_cert(&mut self, rom: &Rom, cluster: usize) -> Option<BigUint> {
        if self.cert_table.is_none() {
            let bytes = rom.read(ROM_CLUSTER_CERTS)?;
            let mut r = Reader::new(bytes);
            let k = r.get_u16().ok()? as usize;
            let mut table = Vec::with_capacity(k);
            for _ in 0..k {
                table.push(BigUint::from_bytes_be(&r.get_bytes().ok()?));
            }
            self.cert_table = Some(table);
        }
        self.cert_table.as_ref()?.get(cluster).cloned()
    }

    /// The top-level verification key from ROM.
    fn v_top(&mut self, rom: &Rom) -> Option<BigUint> {
        if self.v_top_cache.is_none() {
            self.v_top_cache = rom.read(ROM_V_TOP).map(BigUint::from_bytes_be);
        }
        self.v_top_cache.clone()
    }

    /// Verified top-level transport addressed to this cluster.
    fn on_top_msg(&mut self, rom: &Rom, cluster: u32, msg: CertifiedMsg, auth_unit: u64, w: u64) {
        if self.top.is_none() {
            return; // only the current representative serves the top level
        }
        let c = cluster as usize;
        if c == self.cluster || msg.m.first() != Some(&M_TOP) {
            return;
        }
        // The sender must be a real member of the claimed cluster; the
        // certificate chain then binds its key to that cluster's PDS.
        if self.global_of(c, msg.i).is_none() {
            return;
        }
        let Some(v_cert) = self.cluster_cert(rom, c) else {
            return;
        };
        let dest = DestCheck::Me(NodeId(self.cluster as u32 + 1));
        if !ver_cert(&self.cfg.group, dest, NodeId(msg.i), auth_unit, w, &msg, &v_cert) {
            return;
        }
        self.top_inbox.push((NodeId(cluster + 1), msg.m[1..].to_vec()));
    }

    /// A heartbeat from this cluster's (claimed) representative.
    fn on_beat(&mut self, rom: &Rom, round: u64, msg: CertifiedMsg, auth_unit: u64, w: u64) {
        let Some(attempt) = parse_beat(&msg.m) else {
            return;
        };
        if attempt < self.attempt {
            return; // stale: an already-deposed representative
        }
        let rep_global = self
            .cfg
            .partition
            .representative(self.cluster, attempt as usize);
        let Some(rep_local) = self.local_of(NodeId(rep_global)) else {
            return;
        };
        if msg.i != rep_local.0 || rep_global == self.me.0 {
            return; // not from the attempt's designated representative
        }
        let Some(v_cert) = self.cluster_cert(rom, self.cluster) else {
            return;
        };
        let dest = DestCheck::Me(NodeId(self.cluster as u32 + 1));
        if !ver_cert(&self.cfg.group, dest, NodeId(msg.i), auth_unit, w, &msg, &v_cert) {
            return;
        }
        if attempt > self.attempt {
            self.attempt = attempt;
            if self.top.is_some() {
                // Deposed: a later representative took over while this node
                // was broken or partitioned. The top share is abandoned —
                // Herzberg refresh reconstitutes the polynomial without it.
                self.top = None;
                telemetry::count("hier/deposed", 1);
            }
        }
        self.last_beat = Some(round);
    }

    /// Direct cross-cluster traffic addressed to this node.
    fn on_transit(
        &mut self,
        rom: &Rom,
        cluster: u32,
        msg: CertifiedMsg,
        auth_unit: u64,
        w: u64,
    ) -> Option<OutputEvent> {
        let c = cluster as usize;
        if msg.m.first() != Some(&M_TRANSIT) {
            return None;
        }
        let from_global = self.global_of(c, msg.i)?;
        let v_cert = self.cluster_cert(rom, c)?;
        if !ver_cert(
            &self.cfg.group,
            DestCheck::Me(self.me),
            NodeId(msg.i),
            auth_unit,
            w,
            &msg,
            &v_cert,
        ) {
            return None;
        }
        telemetry::count("hier/transit_accepted", 1);
        Some(OutputEvent::Accepted {
            from: NodeId(from_global),
            msg: msg.m[1..].to_vec(),
        })
    }

    /// The top-level tick (if any) for this round, on the same cadence as
    /// the inner stack's PDS ticks.
    fn top_phase(time: &proauth_sim::clock::TimeView) -> Option<PdsPhase> {
        match time.phase {
            Phase::Normal => {
                let riu = time.round_in_unit;
                let parity = if time.unit == 0 {
                    riu.is_multiple_of(2)
                } else {
                    (riu - (PART1_ROUNDS + PART2_ROUNDS)).is_multiple_of(2)
                };
                parity.then_some(PdsPhase::Normal)
            }
            Phase::RefreshPart2 { step } if step.is_multiple_of(2) && step / 2 <= 6 => {
                Some(PdsPhase::Refresh { step: step / 2 })
            }
            _ => None,
        }
    }

    /// Representative duties: beats, top-level ticks, heartbeat signatures.
    fn rep_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let round = ctx.time.round;
        // Beat the cluster: proof of life that suppresses re-election. Sent
        // after the inner tick so the carrier keys match the auth unit the
        // receivers will check at round + 1.
        if round.is_multiple_of(BEAT_PERIOD) {
            let m = beat_payload(self.attempt);
            let j = NodeId(self.cluster as u32 + 1);
            if let Some(keys) = self.inner.local_keys() {
                if let Some(cmsg) = certify(keys, &m, self.me_local, j, round, ctx.rng) {
                    let wrapped: Payload = HierWire::Beat { msg: cmsg }.to_bytes().into();
                    let to: Vec<NodeId> = self
                        .members
                        .iter()
                        .filter(|&&g| g != self.me.0)
                        .map(|&g| NodeId(g))
                        .collect();
                    ctx.send_many(to, wrapped);
                    telemetry::count("hier/beat_sent", 1);
                }
            }
            self.last_beat = Some(round);
        }
        let Some(phase) = Self::top_phase(&ctx.time) else {
            return;
        };
        let unit = ctx.time.unit;
        if phase == PdsPhase::Normal && self.heartbeat_unit != Some(unit) {
            // First normal tick of the unit: every representative requests
            // the same liveness statement, forming one top-level session.
            self.heartbeat_unit = Some(unit);
            if let Some(top) = &mut self.top {
                top.request_sign(heartbeat_msg(unit), unit);
            }
        }
        let v_top = self.v_top(ctx.rom);
        let inbox = std::mem::take(&mut self.top_inbox);
        let (outs, completed, refresh_failed) = {
            let Some(top) = self.top.as_mut() else {
                return;
            };
            if let Some(pk) = v_top.clone() {
                top.set_public_key(pk);
            }
            let outs = top.on_logical_round(PdsTime { unit, phase }, &inbox, ctx.rng);
            let completed = top.take_completed();
            let failed = phase == (PdsPhase::Refresh { step: 6 }) && top.refresh_failed();
            (outs, completed, failed)
        };
        // Top transport: certify each envelope with the cluster-local key
        // and address every member of the destination cluster, so delivery
        // survives a re-election on the far side.
        if self.inner.local_keys().is_some() {
            for env in outs {
                let dest_cluster = (env.to.0 as usize).saturating_sub(1);
                let m = [&[M_TOP][..], env.payload.as_bytes()].concat();
                let Some(keys) = self.inner.local_keys() else {
                    break;
                };
                let Some(cmsg) = certify(keys, &m, self.me_local, env.to, round, ctx.rng) else {
                    break;
                };
                let wrapped: Payload = HierWire::Top {
                    cluster: self.cluster as u32,
                    msg: cmsg,
                }
                .to_bytes()
                .into();
                let to: Vec<NodeId> = self
                    .cfg
                    .partition
                    .clusters
                    .get(dest_cluster)
                    .map(|ms| ms.iter().map(|&g| NodeId(g)).collect())
                    .unwrap_or_default();
                telemetry::count("hier/top_envelopes", to.len() as u64);
                ctx.send_many(to, wrapped);
            }
        }
        for rec in completed {
            let ok = v_top
                .as_ref()
                .map(|pk| AlsPds::verify(&self.cfg.group, pk, &rec.msg, rec.unit, &rec.sig))
                .unwrap_or(false);
            if ok {
                telemetry::count("hier/top_signed", 1);
                ctx.emit(OutputEvent::Signed {
                    msg: rec.msg,
                    unit: rec.unit,
                });
            }
        }
        if refresh_failed {
            telemetry::count("hier/top_refresh_failed", 1);
            ctx.emit(OutputEvent::Alert);
        }
    }

    /// Follower duties: time out a quiet representative.
    fn follower_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let round = ctx.time.round;
        let last = self.last_beat.unwrap_or(round);
        if round.saturating_sub(last) <= BEAT_TIMEOUT {
            return;
        }
        // The representative went quiet: advance to the next in the cycle.
        // Every member that observed the same silence elects the same
        // successor without communicating.
        self.attempt += 1;
        self.last_beat = Some(round);
        self.reelections += 1;
        telemetry::count("hier/reelections", 1);
        let rep = self
            .cfg
            .partition
            .representative(self.cluster, self.attempt as usize);
        if rep == self.me.0 {
            // Promoted: join the top-level PDS share-less. Herzberg recovery
            // hands this node a share at the next refresh, and the joint key
            // in ROM never changes, so the cluster's external identity is
            // stable across the hand-off.
            let Some(v_top) = self.v_top(ctx.rom) else {
                return;
            };
            self.top = Some(AlsPds::recovering(
                self.top_cfg(),
                NodeId(self.cluster as u32 + 1),
                v_top,
            ));
            telemetry::count("hier/promoted", 1);
        }
    }

    /// Certify and send one cross-cluster transit payload.
    fn send_transit(&mut self, ctx: &mut RoundCtx<'_>, dest: NodeId, payload: Vec<u8>) {
        if dest == self.me || dest.0 == 0 || dest.0 > self.cfg.n() as u32 {
            return;
        }
        let m = [&[M_TRANSIT][..], &payload[..]].concat();
        let Some(keys) = self.inner.local_keys() else {
            return; // certless: cannot authenticate cross-cluster either
        };
        let Some(cmsg) = certify(keys, &m, self.me_local, dest, ctx.time.round, ctx.rng) else {
            return;
        };
        ctx.emit(OutputEvent::Sent {
            to: dest,
            msg: payload,
        });
        ctx.send(
            dest,
            HierWire::Transit {
                cluster: self.cluster as u32,
                msg: cmsg,
            }
            .to_bytes(),
        );
        telemetry::count("hier/transit_sent", 1);
    }
}

impl<A: AlProtocol> Process for HierNode<A> {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        let r = ctx.setup_round;
        if r < SETUP_ROUNDS {
            // Inner ULS setup, cluster by cluster: translate ids at the
            // boundary, share the writable ROM (the inner stack burns its
            // cluster's `v_cert` there).
            let local_inbox: Vec<Envelope> = ctx
                .inbox
                .iter()
                .filter_map(|env| match HierWire::from_bytes(&env.payload) {
                    Ok(HierWire::Local(bytes)) => {
                        let from = self.local_of(env.from)?;
                        Some(Envelope::new(from, self.me_local, bytes))
                    }
                    _ => None,
                })
                .collect();
            let m = self.members.len();
            let me_local = self.me_local;
            let inner = &mut self.inner;
            let ((), outs) = ctx.nested(me_local, m, &local_inbox, |c| inner.on_setup_round(c));
            for entry in outs {
                let wrapped: Payload = HierWire::Local(entry.payload.to_vec()).to_bytes().into();
                for &to in &entry.to {
                    if let Some(g) = self.global_of(self.cluster, to.0) {
                        if g != self.me.0 {
                            ctx.send(NodeId(g), wrapped.clone());
                        }
                    }
                }
            }
            return;
        }
        match r - SETUP_ROUNDS {
            0 => {
                // Initial representatives start the top-level DKG and
                // broadcast their cluster's verification key for the ROM
                // table everyone burns at the end of setup.
                if self.cfg.partition.representative(self.cluster, 0) == self.me.0 {
                    let mut top = AlsPds::new(self.top_cfg(), NodeId(self.cluster as u32 + 1));
                    for env in top.on_setup_round(0, &[], ctx.rng) {
                        let dest_cluster = (env.to.0 as usize).saturating_sub(1);
                        let rep = self.cfg.partition.representative(dest_cluster, 0);
                        ctx.send(
                            NodeId(rep),
                            HierWire::SetupDeal(env.payload.to_vec()).to_bytes(),
                        );
                    }
                    self.top = Some(top);
                    if let Some(vc) = ctx.rom.read("v_cert") {
                        let msg = HierWire::SetupCert {
                            cluster: self.cluster as u32,
                            v_cert: vc.to_vec(),
                        }
                        .to_bytes();
                        ctx.send_all(msg);
                    }
                }
            }
            1 => {
                // Representatives aggregate the top-level key and broadcast
                // it; everyone collects the per-cluster key table.
                let mut deals: Vec<(NodeId, Vec<u8>)> = Vec::new();
                for env in ctx.inbox {
                    match HierWire::from_bytes(&env.payload) {
                        Ok(HierWire::SetupDeal(bytes)) => {
                            if let Some(c) = self.cfg.partition.cluster_of(env.from.0) {
                                deals.push((NodeId(c as u32 + 1), bytes));
                            }
                        }
                        Ok(HierWire::SetupCert { cluster, v_cert }) => {
                            self.setup_certs.entry(cluster).or_insert(v_cert);
                        }
                        _ => {}
                    }
                }
                if let Some(top) = &mut self.top {
                    deals.sort_by_key(|(from, _)| from.0);
                    let _ = top.on_setup_round(1, &deals, ctx.rng);
                    if let Some(pk) = top.public_key() {
                        self.setup_v_top = Some(pk.clone());
                        ctx.send_all(HierWire::SetupTop { v_top: pk }.to_bytes());
                    }
                }
            }
            _ => {
                // Final round: burn the top-level key and the cluster key
                // table into ROM. Setup is adversary-free, so first-value
                // collection is sound and every node burns the same data.
                for env in ctx.inbox {
                    match HierWire::from_bytes(&env.payload) {
                        Ok(HierWire::SetupTop { v_top }) => {
                            self.setup_v_top.get_or_insert(v_top);
                        }
                        Ok(HierWire::SetupCert { cluster, v_cert }) => {
                            self.setup_certs.entry(cluster).or_insert(v_cert);
                        }
                        _ => {}
                    }
                }
                if let Some(vc) = ctx.rom.read("v_cert") {
                    let vc = vc.to_vec();
                    self.setup_certs.insert(self.cluster as u32, vc);
                }
                let k = self.cfg.partition.cluster_count();
                let mut w = Writer::new();
                w.put_u16(k as u16);
                for c in 0..k as u32 {
                    w.put_bytes(self.setup_certs.get(&c).map_or(&[][..], Vec::as_slice));
                }
                ctx.rom.write(ROM_CLUSTER_CERTS, w.into_bytes());
                if let Some(v_top) = self.setup_v_top.take() {
                    ctx.rom.write(ROM_V_TOP, v_top);
                }
                self.setup_certs.clear();
            }
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let round = ctx.time.round;
        let auth_unit = ctx.time.auth_unit;
        if self.last_beat.is_none() {
            // First round after construction (or a crash-restart): start the
            // beat timer now, so a restarted node re-synchronizes with the
            // live election instead of racing ahead on a zeroed clock.
            self.last_beat = Some(round);
        }

        // External input: tags 1 (sign) and 2 (app) pass through to the
        // inner stack; tag 3 is a cross-cluster transit send.
        let mut inner_input: Option<&[u8]> = None;
        let mut transit: Option<(NodeId, Vec<u8>)> = None;
        if let Some(input) = ctx.input {
            match input.split_first() {
                Some((&1, _)) | Some((&2, _)) => inner_input = Some(input),
                Some((&3, rest)) if rest.len() >= 4 => {
                    let dest = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
                    transit = Some((NodeId(dest), rest[4..].to_vec()));
                }
                _ => {}
            }
        }

        // Demultiplex the physical inbox into the hierarchy's lanes. Direct
        // lanes are one hop: a message certified at round w arrives at
        // w + 1.
        let expected_w = round.saturating_sub(1);
        let inbox = ctx.inbox;
        let rom = ctx.rom;
        let mut local_inbox: Vec<Envelope> = Vec::new();
        for env in inbox {
            let Ok(wire) = HierWire::from_bytes(&env.payload) else {
                continue;
            };
            match wire {
                HierWire::Local(bytes) => {
                    // Same-cluster senders only; the inner stack performs
                    // all authentication beyond that.
                    if let Some(from) = self.local_of(env.from) {
                        if from != self.me_local {
                            local_inbox.push(Envelope::new(from, self.me_local, bytes));
                        }
                    }
                }
                HierWire::Top { cluster, msg } => {
                    self.on_top_msg(rom, cluster, msg, auth_unit, expected_w);
                }
                HierWire::Beat { msg } => {
                    self.on_beat(rom, round, msg, auth_unit, expected_w);
                }
                HierWire::Transit { cluster, msg } => {
                    if let Some(ev) = self.on_transit(rom, cluster, msg, auth_unit, expected_w) {
                        ctx.emit(ev);
                    }
                }
                // Setup-only variants are meaningless after setup.
                _ => {}
            }
        }

        // The cluster-local ULS stack, in a nested sub-network context.
        let m = self.members.len();
        let me_local = self.me_local;
        let inner = &mut self.inner;
        let ((), outs) = ctx.nested(me_local, m, &local_inbox, inner_input, |c| {
            inner.on_round(c);
        });
        for entry in outs {
            let wrapped: Payload = HierWire::Local(entry.payload.to_vec()).to_bytes().into();
            let to: Vec<NodeId> = entry
                .to
                .iter()
                .filter_map(|t| self.global_of(self.cluster, t.0))
                .filter(|&g| g != self.me.0)
                .map(NodeId)
                .collect();
            ctx.send_many(to, wrapped);
        }

        // Representative duties / follower timeout, after the inner tick so
        // carriers are certified with the keys in force at delivery time.
        if self.top.is_some() {
            self.rep_round(ctx);
        } else {
            self.follower_round(ctx);
        }

        if let Some((dest, payload)) = transit {
            self.send_transit(ctx, dest, payload);
        }
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_crypto::schnorr::Signature;

    fn sig(n: u64) -> Signature {
        Signature {
            e: BigUint::from_u64(n),
            s: BigUint::from_u64(n + 1),
        }
    }

    fn certified() -> CertifiedMsg {
        CertifiedMsg {
            m: beat_payload(7),
            i: 2,
            j: 1,
            u: 3,
            w: 44,
            sig: sig(5),
            vk: vec![7, 8],
            cert: sig(9),
        }
    }

    #[test]
    fn hier_wire_roundtrips() {
        let msgs = vec![
            HierWire::Local(vec![1, 2, 3]),
            HierWire::Top {
                cluster: 4,
                msg: certified(),
            },
            HierWire::Beat { msg: certified() },
            HierWire::Transit {
                cluster: 0,
                msg: certified(),
            },
            HierWire::SetupDeal(vec![9]),
            HierWire::SetupCert {
                cluster: 2,
                v_cert: vec![1],
            },
            HierWire::SetupTop { v_top: vec![5, 6] },
        ];
        for m in msgs {
            assert_eq!(HierWire::from_bytes(&m.to_bytes()).unwrap(), m);
        }
        assert!(HierWire::from_bytes(&[99]).is_err());
        assert!(HierWire::from_bytes(&[]).is_err());
    }

    #[test]
    fn beat_payload_parses() {
        assert_eq!(parse_beat(&beat_payload(0)), Some(0));
        assert_eq!(parse_beat(&beat_payload(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_beat(&[M_BEAT]), None);
        assert_eq!(parse_beat(&[M_TOP, 0, 0, 0, 0, 0, 0, 0, 1]), None);
        assert_eq!(parse_beat(b""), None);
    }

    #[test]
    fn transit_input_layout() {
        let v = transit_input(NodeId(7), b"hi");
        assert_eq!(v[0], 3);
        assert_eq!(u32::from_be_bytes(v[1..5].try_into().unwrap()), 7);
        assert_eq!(&v[5..], b"hi");
    }

    #[test]
    fn scopes_are_distinct() {
        assert_ne!(cluster_scope(0), cluster_scope(1));
        assert_ne!(cluster_scope(0), top_scope());
        assert!(!heartbeat_msg(1).is_empty());
        assert_ne!(heartbeat_msg(1), heartbeat_msg(2));
    }
}
