//! AL-model Byzantine signer tests: the adversary actively sends *malformed
//! partial signatures* in broken nodes' names during signing sessions. The
//! robustness layer (publicly verifiable partials + fresh-nonce retry) must
//! identify the cheaters and still complete the signature off the honest
//! quorum — the behaviour Theorem 13's schemes promise.

use proauth_crypto::group::{Group, GroupId};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::als_node::AlsProcess;
use proauth_pds::ideal::IdealChecker;
use proauth_pds::msg::{sid_for, AlsMsg};
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode};
use proauth_sim::adversary::{AlAdversary, BreakPlan, NetView};
use proauth_sim::clock::Schedule;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_al_with_inputs, SimConfig};

const N: usize = 5;
const T: usize = 2;

fn schedule() -> Schedule {
    Schedule::new(20, 1, 8)
}

fn cfg(units: u64, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(N, T, schedule());
    c.setup_rounds = 2;
    c.total_rounds = schedule().unit_rounds * units;
    c.seed = seed;
    c
}

fn make_node(id: NodeId) -> AlsProcess {
    let group = Group::new(GroupId::Toy64);
    AlsProcess::new(AlsPds::new(AlsConfig::new(group, N, T), id))
}

/// Breaks node 1 before the signing request and, whenever it observes honest
/// `SignInit`/`SignPartial` traffic, speaks in node 1's name: a valid-looking
/// `SignInit` (so node 1 lands in the signer set) followed by garbage
/// partials for every attempt.
struct BadPartialForger {
    victim: NodeId,
    bogus_sent: u64,
}

impl AlAdversary for BadPartialForger {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == 1 {
            BreakPlan::break_into([self.victim])
        } else {
            BreakPlan::none()
        }
    }

    fn broken_sends(&mut self, honest_sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mut out = Vec::new();
        // Mirror honest session traffic with poisoned copies from the victim.
        for env in honest_sent {
            if env.from == self.victim || env.to != NodeId(2) {
                continue; // one copy per broadcast set (they all match)
            }
            let Ok(msg) = AlsMsg::from_bytes(&env.payload) else {
                continue;
            };
            let forged = match msg {
                AlsMsg::SignInit { sid, msg, unit, .. } => {
                    // Join the session with a syntactically valid nonce (the
                    // group generator — adversary knows no discrete log but
                    // needs none to *join*).
                    let group = Group::new(GroupId::Toy64);
                    Some(AlsMsg::SignInit {
                        sid,
                        msg,
                        unit,
                        nonce: group.g().clone(),
                    })
                }
                AlsMsg::SignPartial { sid, attempt, .. } => Some(AlsMsg::SignPartial {
                    sid,
                    attempt,
                    z: BigUint::from_u64(0xBAD),
                }),
                AlsMsg::SignRetryNonce { sid, attempt, .. } => {
                    let group = Group::new(GroupId::Toy64);
                    Some(AlsMsg::SignRetryNonce {
                        sid,
                        attempt,
                        nonce: group.exp_g(&BigUint::from_u64(3)),
                    })
                }
                _ => None,
            };
            if let Some(forged) = forged {
                let payload = forged.to_bytes();
                for to in NodeId::all(view.n) {
                    if to != self.victim {
                        out.push(Envelope::new(self.victim, to, payload.clone()));
                        self.bogus_sent += 1;
                    }
                }
            }
        }
        out
    }
}

#[test]
fn bogus_partials_from_broken_signer_are_survived_by_retry() {
    let mut adv = BadPartialForger {
        victim: NodeId(1),
        bogus_sent: 0,
    };
    let result = run_al_with_inputs(cfg(1, 601), make_node, &mut adv, |id, round| {
        // Only honest nodes are asked (the victim is broken), but the forger
        // injects the victim into the signer set anyway.
        (round == 2 && id != NodeId(1)).then(|| b"byzantine-doc".to_vec())
    });
    assert!(adv.bogus_sent > 0, "attack ran: {} bogus msgs", adv.bogus_sent);
    // All four honest nodes still obtain the signature. The victim's bogus
    // partial fails public verification; the retry excludes it; the
    // remaining quorum (4 ≥ t+1 = 3) completes.
    let signed = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Signed { msg, .. } if msg == b"byzantine-doc"))
        .count();
    assert_eq!(signed, N - 1, "honest quorum completes despite the cheater");
    // Ideal conformance still holds.
    let checker = IdealChecker::new(T);
    assert!(checker.check_no_forgery(&result.outputs, &[]).is_empty());
}

#[test]
fn bogus_traffic_for_unknown_sessions_is_ignored() {
    // The forger also spams session messages for sids nobody opened.
    struct SessionSpammer;
    impl AlAdversary for SessionSpammer {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            if view.time.round == 1 {
                BreakPlan::break_into([NodeId(1)])
            } else {
                BreakPlan::none()
            }
        }
        fn broken_sends(&mut self, _honest: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
            let msg = AlsMsg::SignPartial {
                sid: sid_for(b"ghost", 0),
                attempt: 0,
                z: BigUint::from_u64(1),
            };
            NodeId::all(view.n)
                .filter(|&to| to != NodeId(1))
                .map(|to| Envelope::new(NodeId(1), to, msg.to_bytes()))
                .collect()
        }
    }
    let result = run_al_with_inputs(cfg(1, 602), make_node, &mut SessionSpammer, |_, round| {
        (round == 4).then(|| b"real-doc".to_vec())
    });
    // The real session completes for everyone who was asked (the victim is
    // broken, so N−1 confirmations).
    let signed = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Signed { msg, .. } if msg == b"real-doc"))
        .count();
    assert_eq!(signed, N - 1);
    // No ghost signatures.
    let checker = IdealChecker::new(T);
    assert!(checker.check_no_forgery(&result.outputs, &[]).is_empty());
}
