//! E11 — whole-system simulation throughput (supplementary): physical
//! rounds per second of a full ULS network by size and authentication mode.
//!
//! Not a paper claim, but the number a user sizing an experiment wants: how
//! much wall-clock a unit costs at each scale, and what the session-MAC mode
//! buys at the system level (E9 measures it per message).

use proauth_bench::print_table;
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::runner::{run_ul, SimConfig};
use std::time::Instant;

fn run_one(n: usize, t: usize, mode: AuthMode, parallel: bool) -> (f64, u64) {
    let schedule = uls_schedule(8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 2;
    cfg.seed = 87;
    cfg.parallel = parallel;
    let total_rounds = cfg.total_rounds;
    let group = Group::new(GroupId::Toy64);
    let start = Instant::now();
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            c.auth_mode = mode;
            UlsNode::new(c, id, HeartbeatApp::default())
        },
        &mut FaithfulUl,
    );
    let secs = start.elapsed().as_secs_f64();
    (total_rounds as f64 / secs, result.stats.messages_sent)
}

fn main() {
    let mut rows = Vec::new();
    for n in [5usize, 9, 13] {
        let t = (n - 1) / 2;
        let (sign_rps, msgs) = run_one(n, t, AuthMode::Sign, false);
        let (mac_rps, _) = run_one(n, t, AuthMode::SessionMac, false);
        let (par_rps, _) = run_one(n, t, AuthMode::SessionMac, true);
        rows.push(vec![
            n.to_string(),
            t.to_string(),
            msgs.to_string(),
            format!("{sign_rps:.0}"),
            format!("{mac_rps:.0}"),
            format!("{par_rps:.0}"),
        ]);
    }
    print_table(
        "E11 — simulation throughput (physical rounds/s, 2 units, toy group)",
        &[
            "n",
            "t",
            "messages",
            "sign mode",
            "session-MAC mode",
            "MAC + parallel",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: throughput falls roughly with n² (message volume); the\n\
         session-MAC mode wins at every size by replacing per-message signatures with\n\
         hashes; the parallel mode helps once per-round crypto dominates scheduling."
    );
}
