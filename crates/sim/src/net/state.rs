//! Durable per-node state for the self-healing daemon: what a node process
//! persists so that a SIGKILLed process can be respawned cold and rejoin the
//! deployment it left.
//!
//! # What is durable, and why exactly this
//!
//! The paper's recovery story (§2.1, PR 5's engine semantics) rests on one
//! incorruptible artifact: the **ROM** written at the end of the
//! adversary-free setup phase. A restarted node is a *fresh instance plus its
//! ROM* — it never re-runs setup, and it recovers lost in-memory shares via
//! the Herzberg refresh at the next unit boundary. The state directory
//! mirrors that model with two files per node:
//!
//! * **`rom.bin`** — the ROM image (cert table, verification keys), written
//!   **once** right after setup completes and never rewritten. This is the
//!   paper's ROM: the self-healing layer refuses to overwrite it, and a node
//!   whose `rom.bin` is unreadable cannot rejoin (there is nothing to
//!   authenticate against — re-running setup unilaterally would violate the
//!   model).
//! * **`state.bin`** — the mutable watermark: how many rounds this node has
//!   durably completed, and the refresh epoch (time unit) it was in. This is
//!   rewritten after every round barrier and is the only file process-level
//!   chaos is allowed to corrupt: a digest mismatch here demotes the node to
//!   "completed nothing", and it re-enters at round 0 of its catch-up window
//!   with share recovery doing the rest — detection instead of a crash.
//!
//! # Crash consistency
//!
//! Both files are written with the classic write-tmp → fsync → rename
//! sequence, so a power cut or SIGKILL mid-write leaves either the old
//! version or the new one, never a torn file. Every file carries a header
//! (magic, format version, SHA-256 digest of the body), so torn or truncated
//! bytes that *do* appear — e.g. injected by the chaos supervisor's
//! state-truncation fault — are detected by digest and reported as
//! [`Load::Corrupt`], never deserialized.

use crate::process::Rom;
use proauth_primitives::sha256;
use proauth_primitives::wire::{Reader, Writer};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: "PROAUTHS" (proauth state), followed by a format version byte.
const MAGIC: &[u8; 8] = b"PROAUTHS";
const VERSION: u8 = 1;
/// Header length: magic + version + 32-byte SHA-256 body digest.
const HEADER_LEN: usize = 8 + 1 + 32;
/// Domain tag for the body digest.
const DIGEST_DOMAIN: &str = "proauth/net/state";

/// Outcome of loading a durable file: present and verified, absent (a fresh
/// node), or present but failing its digest (torn write or injected fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Load<T> {
    /// File present, digest verified, payload decoded.
    Ok(T),
    /// File does not exist — nothing was ever persisted.
    Absent,
    /// File exists but the magic, digest, or body failed verification.
    Corrupt,
}

impl<T> Load<T> {
    /// The verified payload, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            Load::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is a detected corruption (as opposed to absence).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, Load::Corrupt)
    }
}

/// The mutable watermark persisted after every round barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watermark {
    /// Rounds durably completed: the node may resume at round
    /// `completed_rounds` (0 = nothing completed, start at round 0).
    pub completed_rounds: u64,
    /// The refresh epoch (Fig-1 time unit) of the last completed round.
    pub epoch: u64,
}

/// One node's durable state directory: `<root>/node-<id>/{rom.bin,state.bin}`.
#[derive(Debug, Clone)]
pub struct StateDir {
    dir: PathBuf,
}

impl StateDir {
    /// Opens (creating if needed) the state directory for `node` under
    /// `root`.
    pub fn open(root: &Path, node: u32) -> io::Result<Self> {
        let dir = root.join(format!("node-{node}"));
        fs::create_dir_all(&dir)?;
        Ok(StateDir { dir })
    }

    /// Path of the write-once ROM image.
    pub fn rom_path(&self) -> PathBuf {
        self.dir.join("rom.bin")
    }

    /// Path of the mutable round watermark.
    pub fn state_path(&self) -> PathBuf {
        self.dir.join("state.bin")
    }

    /// Persists the ROM image. Write-once: if `rom.bin` already exists it is
    /// left untouched (the ROM is incorruptible by model — a second setup
    /// must never overwrite the first).
    pub fn save_rom(&self, rom: &Rom) -> io::Result<()> {
        let path = self.rom_path();
        if path.exists() {
            return Ok(());
        }
        let mut w = Writer::new();
        let entries: Vec<(&str, &[u8])> = rom.entries().collect();
        w.put_u32(entries.len() as u32);
        for (k, v) in entries {
            w.put_bytes(k.as_bytes());
            w.put_bytes(v);
        }
        write_atomic(&path, &w.into_bytes())
    }

    /// Loads and digest-verifies the ROM image.
    pub fn load_rom(&self) -> Load<Rom> {
        let body = match read_verified(&self.rom_path()) {
            Load::Ok(b) => b,
            Load::Absent => return Load::Absent,
            Load::Corrupt => return Load::Corrupt,
        };
        let mut r = Reader::new(&body);
        let Ok(count) = r.get_u32() else {
            return Load::Corrupt;
        };
        let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let Ok(kb) = r.get_bytes() else {
                return Load::Corrupt;
            };
            let Ok(k) = String::from_utf8(kb) else {
                return Load::Corrupt;
            };
            let Ok(v) = r.get_bytes() else {
                return Load::Corrupt;
            };
            entries.push((k, v));
        }
        if r.remaining() != 0 {
            return Load::Corrupt;
        }
        Load::Ok(Rom::from_entries(entries))
    }

    /// Persists the round watermark (rewritten after every round barrier).
    pub fn save_watermark(&self, wm: Watermark) -> io::Result<()> {
        let mut w = Writer::new();
        w.put_u64(wm.completed_rounds);
        w.put_u64(wm.epoch);
        write_atomic(&self.state_path(), &w.into_bytes())
    }

    /// Loads and digest-verifies the round watermark.
    pub fn load_watermark(&self) -> Load<Watermark> {
        let body = match read_verified(&self.state_path()) {
            Load::Ok(b) => b,
            Load::Absent => return Load::Absent,
            Load::Corrupt => return Load::Corrupt,
        };
        let mut r = Reader::new(&body);
        let (Ok(completed_rounds), Ok(epoch)) = (r.get_u64(), r.get_u64()) else {
            return Load::Corrupt;
        };
        if r.remaining() != 0 {
            return Load::Corrupt;
        }
        Load::Ok(Watermark {
            completed_rounds,
            epoch,
        })
    }

    /// Chaos hook: truncates `state.bin` to half its length, simulating a
    /// torn write that survived. Returns whether there was a file to damage.
    pub fn truncate_state_file(&self) -> io::Result<bool> {
        let path = self.state_path();
        let Ok(meta) = fs::metadata(&path) else {
            return Ok(false);
        };
        let f = fs::OpenOptions::new().write(true).open(&path)?;
        f.set_len(meta.len() / 2)?;
        f.sync_all()?;
        Ok(true)
    }
}

/// Body digest under the state domain tag.
fn digest(body: &[u8]) -> [u8; 32] {
    sha256::hash_parts(DIGEST_DOMAIN, &[body])
}

/// Writes `header || body` to `path` crash-consistently: tmp file in the same
/// directory, fsync, atomic rename over the destination.
fn write_atomic(path: &Path, body: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&[VERSION])?;
        f.write_all(&digest(body))?;
        f.write_all(body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads `path`, verifies magic + version + digest, and returns the body.
fn read_verified(path: &Path) -> Load<Vec<u8>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Load::Absent,
        Err(_) => return Load::Corrupt,
    };
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC || bytes[8] != VERSION {
        return Load::Corrupt;
    }
    let stored: &[u8] = &bytes[9..9 + 32];
    let body = &bytes[HEADER_LEN..];
    if digest(body).as_slice() != stored {
        return Load::Corrupt;
    }
    Load::Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "proauth-state-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_rom() -> Rom {
        let mut rom = Rom::new();
        rom.write("v_cert", vec![1, 2, 3, 4]);
        rom.write("self_key", vec![9; 32]);
        rom
    }

    #[test]
    fn rom_roundtrip_and_write_once() {
        let root = temp_root("rom");
        let sd = StateDir::open(&root, 3).unwrap();
        assert_eq!(sd.load_rom(), Load::Absent);
        let rom = sample_rom();
        sd.save_rom(&rom).unwrap();
        let loaded = sd.load_rom().ok().unwrap();
        assert_eq!(
            loaded.entries().collect::<Vec<_>>(),
            rom.entries().collect::<Vec<_>>()
        );
        // Write-once: saving a different ROM must not overwrite the first.
        let mut other = Rom::new();
        other.write("v_cert", vec![0xff]);
        sd.save_rom(&other).unwrap();
        let still = sd.load_rom().ok().unwrap();
        assert_eq!(still.read("self_key"), Some(&[9u8; 32][..]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn watermark_roundtrip_and_rewrite() {
        let root = temp_root("wm");
        let sd = StateDir::open(&root, 1).unwrap();
        assert_eq!(sd.load_watermark(), Load::Absent);
        for round in [1u64, 7, 42] {
            sd.save_watermark(Watermark {
                completed_rounds: round,
                epoch: round / 8,
            })
            .unwrap();
            let wm = sd.load_watermark().ok().unwrap();
            assert_eq!(wm.completed_rounds, round);
            assert_eq!(wm.epoch, round / 8);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncation_detected_by_digest() {
        let root = temp_root("trunc");
        let sd = StateDir::open(&root, 2).unwrap();
        sd.save_watermark(Watermark {
            completed_rounds: 12,
            epoch: 1,
        })
        .unwrap();
        assert!(sd.truncate_state_file().unwrap());
        assert!(sd.load_watermark().is_corrupt());
        // The ROM file is untouched by state truncation.
        sd.save_rom(&sample_rom()).unwrap();
        assert!(matches!(sd.load_rom(), Load::Ok(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bitflip_detected_by_digest() {
        let root = temp_root("flip");
        let sd = StateDir::open(&root, 4).unwrap();
        sd.save_rom(&sample_rom()).unwrap();
        let path = sd.rom_path();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert_eq!(sd.load_rom(), Load::Corrupt);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_and_short_files_are_corrupt_not_panics() {
        let root = temp_root("garbage");
        let sd = StateDir::open(&root, 5).unwrap();
        fs::write(sd.state_path(), b"x").unwrap();
        assert!(sd.load_watermark().is_corrupt());
        fs::write(sd.rom_path(), vec![0u8; 1024]).unwrap();
        assert!(sd.load_rom().is_corrupt());
        let _ = fs::remove_dir_all(&root);
    }
}
