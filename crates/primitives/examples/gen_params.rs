//! One-off generator for the Schnorr group constants embedded in
//! `proauth-crypto::group`. Run with:
//!
//! ```text
//! cargo run --release -p proauth-primitives --example gen_params
//! ```
//!
//! Generation is deterministic (fixed seed), so the constants in the crypto
//! crate can be re-derived and audited at any time.

use proauth_primitives::bigint::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gen_prime(bits: usize, rng: &mut StdRng) -> BigUint {
    loop {
        let mut cand = BigUint::random_below(rng, &BigUint::one().shl(bits));
        // Force top bit and oddness.
        cand = cand
            .add(&BigUint::one().shl(bits - 1))
            .rem(&BigUint::one().shl(bits));
        if cand.bits() < bits {
            cand = cand.add(&BigUint::one().shl(bits - 1));
        }
        if cand.is_even() {
            cand = cand.add(&BigUint::one());
        }
        if cand.is_probable_prime(32, rng) {
            return cand;
        }
    }
}

fn gen_group(pbits: usize, qbits: usize, rng: &mut StdRng) -> (BigUint, BigUint, BigUint) {
    let q = gen_prime(qbits, rng);
    let one = BigUint::one();
    loop {
        // p = q*r + 1 with r chosen so p has pbits bits.
        let r_bits = pbits - qbits;
        let mut r = BigUint::random_below(rng, &one.shl(r_bits));
        if r.bit(0) {
            r = r.add(&one); // force even so p is odd
        }
        if r.is_zero() {
            continue;
        }
        let p = q.mul(&r).add(&one);
        if p.bits() != pbits {
            continue;
        }
        if !p.is_probable_prime(32, rng) {
            continue;
        }
        // Find a generator of the order-q subgroup: g = h^r mod p != 1.
        for h in 2u64..100 {
            let g = BigUint::from_u64(h).modpow(&r, &p);
            if !g.is_one() {
                // Sanity: g^q == 1.
                assert!(g.modpow(&q, &p).is_one());
                return (p, q, g);
            }
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x70726f61757468); // "proauth"
    for (name, pbits, qbits) in [
        ("TOY64", 64usize, 32usize),
        ("S256", 256, 160),
        ("S512", 512, 256),
        ("S1024", 1024, 256),
    ] {
        let (p, q, g) = gen_group(pbits, qbits, &mut rng);
        println!("// {name}: p {pbits} bits, q {qbits} bits");
        println!("const {name}_P: &str = \"{}\";", p.to_hex());
        println!("const {name}_Q: &str = \"{}\";", q.to_hex());
        println!("const {name}_G: &str = \"{}\";", g.to_hex());
        println!();
    }
}
