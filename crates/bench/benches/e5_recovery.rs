//! E5 — recovery latency and capacity (§1.3 / §4.2).
//!
//! Breaks `k ≤ t` nodes per time unit (wiping their entire volatile state)
//! on a rotating schedule, and measures:
//!
//! * whether every wiped node regains certified communication at the next
//!   refreshment phase (the paper's recovery claim: one refresh suffices);
//! * the recovery latency in rounds (break-in → first authenticated message
//!   accepted from the victim again);
//! * whether USign remains live throughout.

use proauth_adversary::{CorruptMode, MobileBreakins};
use proauth_bench::{print_table, uls_cfg, uls_node};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::uls_schedule;
use proauth_sim::message::OutputEvent;
use proauth_sim::runner::run_ul;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn main() {
    let sched = uls_schedule(NORMAL);
    let units = 4u64;
    let mut rows = Vec::new();

    for k in 1..=T {
        let mut adv = MobileBreakins::<HeartbeatApp>::rotating(
            N,
            k,
            units - 1, // leave the final unit quiet so the last victims recover
            sched.unit_rounds,
            sched.refresh_rounds() + 2, // break during normal operation
            4,
            CorruptMode::Wipe,
        );
        let visits = adv.visits.clone();
        let result = run_ul(uls_cfg(N, T, NORMAL, units, 50 + k as u64), uls_node(N, T), &mut adv);

        // Per victim: rounds from break-in to first accepted message after it.
        let mut recovered = 0usize;
        let mut latencies: Vec<u64> = Vec::new();
        for v in &visits {
            let first_after = result
                .outputs
                .iter()
                .enumerate()
                .filter(|(idx, _)| *idx != v.node.idx())
                .flat_map(|(_, log)| log.iter())
                .filter_map(|(round, ev)| match ev {
                    OutputEvent::Accepted { from, .. }
                        if *from == v.node && *round > v.leave_at =>
                    {
                        Some(*round)
                    }
                    _ => None,
                })
                .min();
            if let Some(r) = first_after {
                recovered += 1;
                latencies.push(r - v.break_at);
            }
        }
        let avg_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        let max_latency = latencies.iter().max().copied().unwrap_or(0);
        // Theoretical bound: worst-case wait for the next refresh plus the
        // refresh itself plus one logical round.
        let bound = sched.unit_rounds + sched.refresh_rounds() + 2;
        rows.push(vec![
            k.to_string(),
            format!("{}/{}", recovered, visits.len()),
            format!("{avg_latency:.0}"),
            max_latency.to_string(),
            bound.to_string(),
            result.stats.alerts.iter().sum::<u64>().to_string(),
        ]);
    }

    print_table(
        "E5 — recovery from full state wipes, rotating k break-ins per unit (n = 5, t = 2)",
        &[
            "k wiped/unit",
            "recovered",
            "avg latency (rounds)",
            "max latency",
            "1-refresh bound",
            "alerts",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: every wiped node recovers, always within one refresh cycle\n\
         (max latency ≤ bound); alerts only where a victim was still mid-recovery at\n\
         its first refresh after the wipe."
    );
}
