//! The synchronous execution engines for the AL and UL models.
//!
//! Both runners implement the paper's execution semantics precisely:
//!
//! * an adversary-free **set-up phase** with faithful delivery and writable
//!   ROM (§2.1: "we assume an initial set-up phase where the parties
//!   communicate without the intervention of the adversary");
//! * synchronous **rounds**: messages sent in round `w` are delivered at the
//!   start of round `w+1`;
//! * **rushing**: the adversary acts on each round's honest messages before
//!   deciding deliveries / broken-node messages;
//! * **break-ins**: while broken, a node's program does not run, its inbox is
//!   diverted to the adversary, and its memory (but never its ROM) is
//!   mutable by the adversary;
//! * fresh per-round randomness seeded outside corruptible node state;
//! * ground-truth tracking of link reliability and the `s`-operational set,
//!   which also drives the "compromised"/"recovered" lines of the global
//!   output (UL semantics per §2.2; AL uses broken status per §2.1).
//!
//! # Examples
//!
//! ```
//! use proauth_sim::adversary::FaithfulUl;
//! use proauth_sim::clock::Schedule;
//! use proauth_sim::message::NodeId;
//! use proauth_sim::process::{Process, RoundCtx, SetupCtx};
//! use proauth_sim::runner::{run_ul, SimConfig};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}
//!     fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
//!         ctx.send_all(vec![ctx.time.round as u8]);
//!     }
//!     fn state_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut cfg = SimConfig::new(3, 1, Schedule::new(10, 2, 2));
//! cfg.total_rounds = 10;
//! let result = run_ul(cfg, |_| Echo, &mut FaithfulUl);
//! assert_eq!(result.stats.messages_sent, 3 * 2 * 10);
//! ```

use crate::adversary::{AlAdversary, BreakPlan, NetView, UlAdversary};
use crate::clock::{Schedule, TimeView};
use crate::message::{Envelope, NodeId, OutboxEntry, OutputEvent, OutputLog};
use crate::pool::{self, WorkerPool};
use crate::process::{Process, Rom, RoundCtx, SetupCtx};
use crate::reliability::{
    link_reliability, link_reliability_pooled, OperationalRule, OperationalTracker, PairMatrix,
};
use proauth_primitives::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulation parameters shared by both models.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of nodes.
    pub n: usize,
    /// Disconnection threshold `s` used for operational tracking and the
    /// global-output semantics.
    pub s: usize,
    /// Round/unit layout.
    pub schedule: Schedule,
    /// Master seed for all node and protocol randomness.
    pub seed: u64,
    /// Length of the adversary-free set-up phase, in rounds.
    pub setup_rounds: u64,
    /// Number of post-setup rounds to execute.
    pub total_rounds: u64,
    /// Which reading of Definition 5 to apply.
    pub rule: OperationalRule,
    /// Record the full per-round transcript (memory-heavy).
    pub record_transcript: bool,
    /// Execute honest nodes on a persistent worker pool each round. Results
    /// are bit-identical to sequential execution for any worker count
    /// (per-node state is disjoint, randomness is derived per (node, round),
    /// and per-worker results are merged in `NodeId` order); useful when node
    /// computation (big-group crypto) dominates.
    ///
    /// Defaults to `true` when the `PROAUTH_THREADS` environment variable is
    /// set, so the whole test suite can be swept across pool sizes.
    pub parallel: bool,
    /// Worker-pool size when `parallel` is set. `0` = auto: the
    /// `PROAUTH_THREADS` environment variable, else available parallelism.
    pub threads: usize,
}

impl SimConfig {
    /// A reasonable default configuration for `n` nodes with threshold `s`.
    pub fn new(n: usize, s: usize, schedule: Schedule) -> Self {
        SimConfig {
            n,
            s,
            schedule,
            seed: 0,
            setup_rounds: 8,
            total_rounds: schedule.unit_rounds * 3,
            rule: OperationalRule::default(),
            record_transcript: false,
            parallel: pool::env_threads().is_some(),
            threads: 0,
        }
    }
}

/// Per-round transcript record (ground truth; used by analyses and tests).
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// The round's time view.
    pub time: TimeView,
    /// Messages sent by honest nodes.
    pub sent: Vec<Envelope>,
    /// Messages actually delivered.
    pub delivered: Vec<Envelope>,
    /// Broken set during the round.
    pub broken: Vec<bool>,
    /// Operational set after the round.
    pub operational: Vec<bool>,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages sent by honest nodes.
    pub messages_sent: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Total payload bytes sent by honest nodes.
    pub bytes_sent: u64,
    /// Alerts emitted, per node.
    pub alerts: Vec<u64>,
    /// Rounds each node spent broken.
    pub broken_rounds: Vec<u64>,
    /// Rounds each node spent non-operational (post-start).
    pub non_operational_rounds: Vec<u64>,
}

/// The result of a simulation run: the paper's "global output" plus ground
/// truth for analysis.
#[derive(Debug)]
pub struct SimResult {
    /// Per-node output logs (component `i` of the global output).
    pub outputs: Vec<OutputLog>,
    /// The adversary's output (component 0 of the global output).
    pub adversary_output: Vec<String>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Operational set at the end of the run.
    pub final_operational: Vec<bool>,
    /// Each node's ROM as frozen at the end of setup (e.g. the PDS
    /// verification key `v_cert`).
    pub roms: Vec<Rom>,
    /// Full transcript if requested.
    pub transcript: Option<Vec<RoundRecord>>,
}

impl SimResult {
    /// All events of a given node.
    pub fn events_of(&self, node: NodeId) -> &[(u64, OutputEvent)] {
        &self.outputs[node.idx()]
    }

    /// Whether `node` emitted [`OutputEvent::Alert`] during time unit `unit`.
    pub fn alerted_in_unit(&self, node: NodeId, unit: u64, schedule: &Schedule) -> bool {
        self.outputs[node.idx()]
            .iter()
            .any(|(round, ev)| *ev == OutputEvent::Alert && schedule.unit_of(*round) == unit)
    }
}

/// Derives the deterministic per-(node, round) RNG.
fn round_rng(seed: u64, node: u32, round: u64, tag: &str) -> StdRng {
    let digest = sha256::hash_parts(
        "proauth/sim/rng",
        &[
            tag.as_bytes(),
            &seed.to_be_bytes(),
            &node.to_be_bytes(),
            &round.to_be_bytes(),
        ],
    );
    StdRng::from_seed(digest)
}

/// Which model a run executes under (affects delivery and output semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    Al,
    Ul,
}

/// One honest node's work for a round: disjoint `&mut` access to its state
/// plus the round's inputs and reusable outbox buffer. Slots are what the
/// worker pool distributes; every result a job produces lands back in its
/// slot and is merged by the engine in `NodeId` order, which is what keeps
/// the parallel path bit-identical to the serial one.
struct NodeSlot<'a, P> {
    id: NodeId,
    node: &'a mut P,
    output: &'a mut OutputLog,
    rom: &'a Rom,
    inbox: Vec<Envelope>,
    input: Option<Vec<u8>>,
    outbox: Vec<OutboxEntry>,
    alerts: u64,
}

/// Executes one node's round into its slot. Free function so the serial path
/// and the pool jobs share the exact same code.
fn exec_slot<P: Process>(seed: u64, time: TimeView, n: usize, slot: &mut NodeSlot<'_, P>) {
    let mut rng = round_rng(seed, slot.id.0, time.round, "round");
    // Incremental alert accounting: only events appended *this round* are
    // scanned, instead of re-filtering the node's whole output log (which
    // made long runs quadratic in total events).
    let out_start = slot.output.len();
    let mut ctx = RoundCtx {
        time,
        me: slot.id,
        n,
        inbox: &slot.inbox,
        rom: slot.rom,
        rng: &mut rng,
        input: slot.input.as_deref(),
        outbox: &mut slot.outbox,
        output: slot.output,
    };
    slot.node.on_round(&mut ctx);
    slot.alerts = slot.output[out_start..]
        .iter()
        .filter(|(_, e)| *e == OutputEvent::Alert)
        .count() as u64;
}

/// Node count below which the ground-truth computations (link matrix rows,
/// operational induction) are not worth shipping to the pool.
const POOLED_GROUND_TRUTH_MIN_N: usize = 24;

/// Internal engine shared by [`run_al`] and [`run_ul`].
struct Engine<P> {
    cfg: SimConfig,
    model: Model,
    nodes: Vec<P>,
    roms: Vec<Rom>,
    broken: Vec<bool>,
    tracker: OperationalTracker,
    /// Deliveries pending for the next round, per node. The per-node `Vec`s
    /// are recycled every round (taken as a slot's inbox, cleared, returned)
    /// so steady state allocates no inbox buffers at all.
    pending: Vec<Vec<Envelope>>,
    /// Reusable per-node outbox buffers, recycled the same way. Entries may
    /// carry many destinations; they stay unexpanded until the adversary
    /// boundary.
    outboxes: Vec<Vec<OutboxEntry>>,
    /// Reusable buffer for the round's merged sent set.
    sent_buf: Vec<Envelope>,
    /// All deliveries of the previous round (adversary view).
    last_delivered: Vec<Envelope>,
    outputs: Vec<OutputLog>,
    stats: SimStats,
    transcript: Option<Vec<RoundRecord>>,
    /// Previous "impaired" status used for output lines.
    prev_impaired: Vec<bool>,
    /// The persistent worker pool (present iff `cfg.parallel`); lives for
    /// the whole run instead of spawning threads every round.
    pool: Option<WorkerPool>,
}

impl<P: Process + Send> Engine<P> {
    fn new(cfg: SimConfig, model: Model, mut make_node: impl FnMut(NodeId) -> P) -> Self {
        let n = cfg.n;
        let nodes: Vec<P> = NodeId::all(n).map(&mut make_node).collect();
        Engine {
            tracker: OperationalTracker::with_rule(n, cfg.s, cfg.rule),
            model,
            nodes,
            roms: vec![Rom::new(); n],
            broken: vec![false; n],
            pending: vec![Vec::new(); n],
            outboxes: vec![Vec::new(); n],
            sent_buf: Vec::new(),
            last_delivered: Vec::new(),
            outputs: vec![Vec::new(); n],
            stats: SimStats {
                alerts: vec![0; n],
                broken_rounds: vec![0; n],
                non_operational_rounds: vec![0; n],
                ..SimStats::default()
            },
            transcript: if cfg.record_transcript {
                Some(Vec::new())
            } else {
                None
            },
            prev_impaired: vec![false; n],
            pool: if cfg.parallel {
                Some(WorkerPool::new(cfg.threads))
            } else {
                None
            },
            cfg,
        }
    }

    /// Runs the adversary-free set-up phase.
    fn setup(&mut self) {
        let n = self.cfg.n;
        for sr in 0..self.cfg.setup_rounds {
            let mut sent: Vec<Envelope> = Vec::new();
            for id in NodeId::all(n) {
                let inbox = std::mem::take(&mut self.pending[id.idx()]);
                let mut outbox: Vec<OutboxEntry> = Vec::new();
                let mut rng = round_rng(self.cfg.seed, id.0, sr, "setup");
                let mut ctx = SetupCtx {
                    setup_round: sr,
                    me: id,
                    n,
                    inbox: &inbox,
                    rom: &mut self.roms[id.idx()],
                    rng: &mut rng,
                    outbox: &mut outbox,
                };
                self.nodes[id.idx()].on_setup_round(&mut ctx);
                for entry in &outbox {
                    sent.extend(entry.envelopes());
                }
            }
            for env in sent {
                self.pending[env.to.idx()].push(env);
            }
        }
    }

    /// Executes one post-setup round; `deliver` maps (sent, view) to the
    /// delivered set under the model's rules; `input_fn` supplies the
    /// per-round external inputs `x_{i,w}`.
    #[allow(clippy::too_many_lines)]
    fn round(
        &mut self,
        round: u64,
        plan: BreakPlan,
        corrupt: &mut dyn FnMut(NodeId, &mut dyn std::any::Any, &TimeView),
        deliver: &mut dyn FnMut(&[Envelope], &NetView<'_>) -> Vec<Envelope>,
        input_fn: &mut dyn FnMut(NodeId, u64) -> Option<Vec<u8>>,
    ) {
        let n = self.cfg.n;
        let time = TimeView::at(&self.cfg.schedule, round);

        // Apply break-in plan.
        for id in plan.break_into {
            self.broken[id.idx()] = true;
        }
        for id in plan.leave {
            self.broken[id.idx()] = false;
        }

        // Memory corruption of broken nodes.
        for id in NodeId::all(n) {
            if self.broken[id.idx()] {
                corrupt(id, self.nodes[id.idx()].state_mut(), &time);
                self.stats.broken_rounds[id.idx()] += 1;
            }
        }

        // Honest nodes execute; broken nodes' inboxes divert to the adversary.
        // Inputs are sampled serially in NodeId order (the provider may be
        // stateful), then nodes run either sequentially or on the pool — the
        // result is identical: per-node state is disjoint, randomness is
        // derived per (node, round), and slot results are merged in NodeId
        // order, so execution order cannot matter.
        let mut broken_inboxes: Vec<Envelope> = Vec::new();
        let seed = self.cfg.seed;
        let mut pool = self.pool.take();
        {
            let mut slots: Vec<NodeSlot<'_, P>> = Vec::with_capacity(n);
            for (((idx, node), output), rom) in self
                .nodes
                .iter_mut()
                .enumerate()
                .zip(self.outputs.iter_mut())
                .zip(self.roms.iter())
            {
                let id = NodeId::from_idx(idx);
                let mut inbox = std::mem::take(&mut self.pending[idx]);
                if self.broken[idx] {
                    broken_inboxes.append(&mut inbox);
                    self.pending[idx] = inbox; // keep the (now empty) buffer
                    continue;
                }
                let input = input_fn(id, round);
                slots.push(NodeSlot {
                    id,
                    node,
                    output,
                    rom,
                    inbox,
                    input,
                    outbox: std::mem::take(&mut self.outboxes[idx]),
                    alerts: 0,
                });
            }
            match pool.as_mut() {
                Some(pool) => {
                    pool.for_each_mut(&mut slots, |_, slot| exec_slot(seed, time, n, slot));
                }
                None => {
                    for slot in &mut slots {
                        exec_slot(seed, time, n, slot);
                    }
                }
            }
            // Merge in slot (= NodeId) order and recycle the buffers. This
            // is where multi-destination entries expand into per-destination
            // envelopes: the adversary boundary below must see (and may drop
            // or inject) individual links, but nothing before this point
            // needed more than the shared payload plus a destination list.
            self.sent_buf.clear();
            for mut slot in slots {
                let idx = slot.id.idx();
                self.stats.alerts[idx] += slot.alerts;
                for entry in &slot.outbox {
                    let fanout = entry.fanout() as u64;
                    self.stats.messages_sent += fanout;
                    self.stats.bytes_sent += entry.payload.len() as u64 * fanout;
                    self.sent_buf.extend(entry.envelopes());
                }
                slot.inbox.clear();
                self.pending[idx] = slot.inbox;
                slot.outbox.clear();
                self.outboxes[idx] = slot.outbox;
            }
        }
        self.pool = pool;

        // Delivery under the model's rules (rushing: adversary sees `sent`).
        let delivered = {
            let view = NetView {
                time,
                n,
                broken: &self.broken,
                operational: self.tracker.operational(),
                last_delivered: &self.last_delivered,
                broken_inboxes: &broken_inboxes,
            };
            deliver(&self.sent_buf, &view)
        };
        self.stats.messages_delivered += delivered.len() as u64;

        // Ground truth: reliability + operational set. Both are row-/node-
        // parallel; only worth the handshake at larger n.
        let pooled_truth = n >= POOLED_GROUND_TRUTH_MIN_N;
        let reliability: PairMatrix = match self.pool.as_mut() {
            Some(pool) if pooled_truth => {
                link_reliability_pooled(n, &self.sent_buf, &delivered, &self.broken, pool)
            }
            _ => link_reliability(n, &self.sent_buf, &delivered, &self.broken),
        };
        self.tracker.on_round_pooled(
            &self.broken,
            &reliability,
            self.cfg.schedule.in_refresh(round),
            self.cfg.schedule.is_refresh_end(round),
            if pooled_truth {
                self.pool.as_mut()
            } else {
                None
            },
        );

        // "Compromised"/"recovered" output lines. In the UL model these track
        // loss of s-operational status (§2.2); in the AL model, break-ins.
        for id in NodeId::all(n) {
            let impaired = match self.model {
                Model::Al => self.broken[id.idx()],
                Model::Ul => !self.tracker.is_operational(id),
            };
            if impaired && !self.prev_impaired[id.idx()] {
                self.outputs[id.idx()].push((round, OutputEvent::Compromised));
            } else if !impaired && self.prev_impaired[id.idx()] {
                self.outputs[id.idx()].push((round, OutputEvent::Recovered));
            }
            if !self.tracker.is_operational(id) {
                self.stats.non_operational_rounds[id.idx()] += 1;
            }
            self.prev_impaired[id.idx()] = impaired;
        }

        if let Some(t) = &mut self.transcript {
            t.push(RoundRecord {
                time,
                sent: self.sent_buf.clone(),
                delivered: delivered.clone(),
                broken: self.broken.clone(),
                operational: self.tracker.operational().to_vec(),
            });
        }

        // Queue deliveries for the next round.
        for env in &delivered {
            self.pending[env.to.idx()].push(env.clone());
        }
        self.last_delivered = delivered;
    }

    fn finish(self, adversary_output: Vec<String>) -> SimResult {
        SimResult {
            outputs: self.outputs,
            adversary_output,
            stats: self.stats,
            final_operational: self.tracker.operational().to_vec(),
            roms: self.roms,
            transcript: self.transcript,
        }
    }
}

/// Runs a protocol in the **AL model** against an [`AlAdversary`].
pub fn run_al<P: Process + Send, A: AlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
) -> SimResult {
    run_al_with_inputs(cfg, make_node, adversary, |_, _| None)
}

/// Like [`run_al`], with per-round external inputs (`x_{i,w}` in §2.1).
pub fn run_al_with_inputs<P: Process + Send, A: AlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
    mut input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
) -> SimResult {
    let mut engine = Engine::new(cfg, Model::Al, make_node);
    engine.setup();
    for round in 0..engine.cfg.total_rounds {
        let time = TimeView::at(&engine.cfg.schedule, round);
        let plan = {
            let view = NetView {
                time,
                n: engine.cfg.n,
                broken: &engine.broken,
                operational: engine.tracker.operational(),
                last_delivered: &engine.last_delivered,
                broken_inboxes: &[],
            };
            adversary.plan(&view)
        };
        let adv = std::cell::RefCell::new(&mut *adversary);
        engine.round(
            round,
            plan,
            &mut |id, state, tv| adv.borrow_mut().corrupt(id, state, tv),
            &mut |sent, view| {
                // AL semantics: all honest messages delivered faithfully; the
                // adversary may add messages in the name of broken nodes.
                let mut delivered = sent.to_vec();
                let extra = adv.borrow_mut().broken_sends(sent, view);
                delivered.extend(
                    extra
                        .into_iter()
                        .filter(|e| view.broken[e.from.idx()] && e.to != e.from),
                );
                delivered
            },
            &mut input_fn,
        );
    }
    let out = adversary.output();
    engine.finish(out)
}

/// Runs a protocol in the **UL model** against a [`UlAdversary`].
pub fn run_ul<P: Process + Send, A: UlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
) -> SimResult {
    run_ul_with_inputs(cfg, make_node, adversary, |_, _| None)
}

/// Like [`run_ul`], with per-round external inputs (`x_{i,w}` in §2.1).
pub fn run_ul_with_inputs<P: Process + Send, A: UlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
    mut input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
) -> SimResult {
    let mut engine = Engine::new(cfg, Model::Ul, make_node);
    engine.setup();
    for round in 0..engine.cfg.total_rounds {
        let time = TimeView::at(&engine.cfg.schedule, round);
        let plan = {
            let view = NetView {
                time,
                n: engine.cfg.n,
                broken: &engine.broken,
                operational: engine.tracker.operational(),
                last_delivered: &engine.last_delivered,
                broken_inboxes: &[],
            };
            adversary.plan(&view)
        };
        let adv = std::cell::RefCell::new(&mut *adversary);
        engine.round(
            round,
            plan,
            &mut |id, state, tv| adv.borrow_mut().corrupt(id, state, tv),
            &mut |sent, view| adv.borrow_mut().deliver(sent, view),
            &mut input_fn,
        );
    }
    let out = adversary.output();
    engine.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FaithfulUl, PassiveAl};
    use std::any::Any;

    /// A node that pings every peer each round and counts pongs.
    struct Pinger {
        received: u64,
        rom_check: Option<Vec<u8>>,
    }

    impl Process for Pinger {
        fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
            if ctx.setup_round == 0 {
                ctx.rom.write("tag", vec![ctx.me.0 as u8]);
            }
        }

        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            self.received += ctx.inbox.len() as u64;
            self.rom_check = ctx.rom.read("tag").map(|v| v.to_vec());
            ctx.send_all(vec![0xAB]);
            if ctx.time.round == 0 {
                ctx.emit(OutputEvent::Custom("started".into()));
            }
        }

        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cfg(n: usize) -> SimConfig {
        let mut c = SimConfig::new(n, 1, Schedule::new(10, 2, 2));
        c.total_rounds = 10;
        c.setup_rounds = 1;
        c
    }

    #[test]
    fn faithful_ul_run_delivers_everything() {
        let result = run_ul(
            cfg(4),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        // 4 nodes × 3 peers × 10 rounds sent; all but the last round's are
        // delivered within the run.
        assert_eq!(result.stats.messages_sent, 120);
        assert_eq!(result.stats.messages_delivered, 120);
        assert!(result.final_operational.iter().all(|&b| b));
        // Everyone logged the start event.
        for id in NodeId::all(4) {
            assert!(result
                .events_of(id)
                .contains(&(0, OutputEvent::Custom("started".into()))));
        }
    }

    #[test]
    fn al_run_matches_ul_faithful() {
        let r1 = run_al(
            cfg(3),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut PassiveAl,
        );
        let r2 = run_ul(
            cfg(3),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        assert_eq!(r1.stats.messages_sent, r2.stats.messages_sent);
        assert_eq!(r1.outputs, r2.outputs);
    }

    #[test]
    fn rom_survives_into_rounds() {
        struct RomReader {
            seen: Option<Vec<u8>>,
        }
        impl Process for RomReader {
            fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
                ctx.rom.write("k", vec![42]);
            }
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                self.seen = ctx.rom.read("k").map(|v| v.to_vec());
                if ctx.time.round == 5 && self.seen == Some(vec![42]) {
                    ctx.emit(OutputEvent::Custom("rom-ok".into()));
                }
            }
            fn state_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let result = run_ul(cfg(2), |_| RomReader { seen: None }, &mut FaithfulUl);
        assert!(result
            .events_of(NodeId(1))
            .contains(&(5, OutputEvent::Custom("rom-ok".into()))));
    }

    /// Adversary that breaks node 1 for rounds 2..5 and wipes its state.
    struct Wiper;
    impl UlAdversary for Wiper {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                2 => BreakPlan::break_into([NodeId(1)]),
                5 => BreakPlan::leave([NodeId(1)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _node: NodeId, state: &mut dyn Any, _time: &TimeView) {
            if let Some(p) = state.downcast_mut::<Pinger>() {
                p.received = 0; // memory corruption
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }

    #[test]
    fn break_in_diverts_execution_and_corrupts_memory() {
        // Run across the unit-1 refresh phase so node 1 can rejoin (the UL
        // "recovered" line fires when it becomes s-operational again, which
        // only happens at a refresh-phase end — Definition 5.3).
        let mut c = cfg(3);
        c.total_rounds = 20;
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut Wiper,
        );
        // Node 1 was broken rounds 2,3,4 → did not send 2 msgs × 3 rounds.
        assert_eq!(result.stats.messages_sent, 3 * 2 * 20 - 6);
        assert_eq!(result.stats.broken_rounds[0], 3);
        // Compromised at break-in; recovered at the unit-1 refresh end.
        let evs: Vec<&OutputEvent> = result.outputs[0].iter().map(|(_, e)| e).collect();
        assert!(evs.contains(&&OutputEvent::Compromised));
        assert!(evs.contains(&&OutputEvent::Recovered));
        let recovered_round = result.outputs[0]
            .iter()
            .find(|(_, e)| *e == OutputEvent::Recovered)
            .map(|(r, _)| *r)
            .unwrap();
        assert_eq!(recovered_round, 13, "rejoin at end of unit-1 refresh");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mk = || {
            run_ul(
                cfg(4),
                |_| Pinger {
                    received: 0,
                    rom_check: None,
                },
                &mut FaithfulUl,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats.messages_sent, b.stats.messages_sent);
    }

    #[test]
    fn transcript_recorded_when_requested() {
        let mut c = cfg(2);
        c.record_transcript = true;
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        let t = result.transcript.expect("transcript");
        assert_eq!(t.len(), 10);
        assert_eq!(t[3].time.round, 3);
        assert!(!t[0].sent.is_empty());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::adversary::FaithfulUl;
    use std::any::Any;

    /// A compute-heavy node to make parallel execution meaningful.
    struct Worker;

    impl Process for Worker {
        fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            use rand::RngCore;
            // Derived randomness feeds the payload: any divergence between
            // parallel and sequential scheduling would change the bytes.
            let tag = (ctx.rng.next_u64() % 251) as u8;
            ctx.send_all(vec![tag]);
            if !ctx.inbox.is_empty() {
                ctx.emit(OutputEvent::Custom(format!(
                    "got {} msgs, first byte {}",
                    ctx.inbox.len(),
                    ctx.inbox[0].payload[0]
                )));
            }
        }
        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let mk_cfg = |parallel: bool| {
            let mut c = SimConfig::new(6, 2, Schedule::new(10, 2, 2));
            c.total_rounds = 25;
            c.setup_rounds = 1;
            c.seed = 99;
            c.parallel = parallel;
            c
        };
        let seq = run_ul(mk_cfg(false), |_| Worker, &mut FaithfulUl);
        let par = run_ul(mk_cfg(true), |_| Worker, &mut FaithfulUl);
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
        assert_eq!(seq.stats.bytes_sent, par.stats.bytes_sent);
        assert_eq!(seq.final_operational, par.final_operational);
    }
}
