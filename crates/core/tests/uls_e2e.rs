//! End-to-end tests of the full ULS construction over unauthenticated links:
//! the executable content of Theorem 14 (security) and Proposition 31
//! (awareness), on the happy path and under break-ins.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{sign_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::adversary::{BreakPlan, FaithfulUl, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, run_ul_with_inputs, SimConfig, SimResult};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn unit_rounds() -> u64 {
    uls_schedule(NORMAL).unit_rounds
}

fn cfg(total_units: u64) -> SimConfig {
    let mut c = SimConfig::new(N, T, uls_schedule(NORMAL));
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = unit_rounds() * total_units;
    c.seed = 42;
    c
}

fn make_node(id: NodeId) -> UlsNode<HeartbeatApp> {
    let group = Group::new(GroupId::Toy64);
    UlsNode::new(UlsConfig::new(group, N, T), id, HeartbeatApp::default())
}

fn count_events(result: &SimResult, pred: impl Fn(&OutputEvent) -> bool) -> usize {
    result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, ev)| pred(ev))
        .count()
}

#[test]
fn faithful_run_stays_authenticated_across_refreshes() {
    let result = run_ul(cfg(3), make_node, &mut FaithfulUl);
    // No alerts on the happy path.
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0, "no alerts");
    // Heartbeats flow: every node accepted plenty of app messages.
    let accepted = count_events(&result, |e| matches!(e, OutputEvent::Accepted { .. }));
    assert!(accepted > 4 * N, "heartbeats accepted: {accepted}");
    // All nodes remain operational.
    assert!(result.final_operational.iter().all(|&b| b));
    // No impersonations (Definition 10).
    let imps = awareness::find_impersonations(&result.outputs, &uls_schedule(NORMAL), |_, _| false);
    assert!(imps.is_empty(), "{imps:?}");
}

#[test]
fn usign_works_over_unauthenticated_links() {
    let sign_round = unit_rounds() + proauth_core::PART1_ROUNDS + proauth_core::PART2_ROUNDS + 2;
    let result = run_ul_with_inputs(cfg(2), make_node, &mut FaithfulUl, |_, round| {
        (round == sign_round).then(|| sign_input(b"ul payment order"))
    });
    let signed = count_events(
        &result,
        |e| matches!(e, OutputEvent::Signed { msg, .. } if msg == b"ul payment order"),
    );
    assert_eq!(signed, N, "every node obtains the threshold signature");
    // Ideal-model conformance (Definition 12's hard invariants).
    let checker = IdealChecker::new(T);
    let all: Vec<NodeId> = NodeId::all(N).collect();
    let violations = checker.check(&result.outputs, &all, &[], &uls_schedule(NORMAL));
    assert!(violations.is_empty(), "{violations:?}");
}

/// Breaks one node during unit 0, wipes its entire volatile state, and
/// leaves. The node must be re-certified and share-recovered by the unit-1
/// refresh, and fully participating in unit 1's normal phase.
struct WipeOne {
    target: NodeId,
    break_at: u64,
    leave_at: u64,
}

impl UlAdversary for WipeOne {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == self.break_at {
            BreakPlan::break_into([self.target])
        } else if view.time.round == self.leave_at {
            BreakPlan::leave([self.target])
        } else {
            BreakPlan::none()
        }
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn std::any::Any, _time: &TimeView) {
        if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
            node.corrupt_wipe();
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

#[test]
fn wiped_node_regains_certified_communication() {
    let result = run_ul(
        cfg(3),
        make_node,
        &mut WipeOne {
            target: NodeId(3),
            break_at: 4,
            leave_at: 8,
        },
    );
    // Node 3's heartbeats are accepted again during unit 1's normal phase
    // (after the unit-1 refresh re-certified it).
    let unit1_normal_start = unit_rounds() + proauth_core::PART1_ROUNDS + proauth_core::PART2_ROUNDS;
    let accepted_from_3_after = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(3).idx())
        .flat_map(|(_, log)| log.iter())
        .filter(|(round, ev)| {
            *round > unit1_normal_start
                && matches!(ev, OutputEvent::Accepted { from, .. } if *from == NodeId(3))
        })
        .count();
    assert!(
        accepted_from_3_after > 0,
        "node 3 re-authenticated after recovery"
    );
    // It is operational again at the end.
    assert!(result.final_operational[NodeId(3).idx()]);
    // And it can sign again: no alert in unit 2 from node 3.
    assert!(!result.alerted_in_unit(NodeId(3), 2, &uls_schedule(NORMAL)));
}

#[test]
fn usign_after_recovery_includes_recovered_node() {
    // Sign in unit 2 after node 2 was wiped in unit 0.
    let sign_round = 2 * unit_rounds() + proauth_core::PART1_ROUNDS + proauth_core::PART2_ROUNDS + 2;
    let result = run_ul_with_inputs(
        cfg(3),
        make_node,
        &mut WipeOne {
            target: NodeId(2),
            break_at: 4,
            leave_at: 8,
        },
        |_, round| (round == sign_round).then(|| sign_input(b"post-recovery")),
    );
    // Node 2 itself reports the signature (it has a working share again).
    let node2_signed = result.outputs[NodeId(2).idx()]
        .iter()
        .any(|(_, ev)| matches!(ev, OutputEvent::Signed { msg, .. } if msg == b"post-recovery"));
    assert!(node2_signed, "recovered node participates in signing");
}

#[test]
fn deterministic_runs() {
    let a = run_ul(cfg(2), make_node, &mut FaithfulUl);
    let b = run_ul(cfg(2), make_node, &mut FaithfulUl);
    assert_eq!(a.outputs, b.outputs);
}

#[test]
fn broken_node_emits_compromised_and_recovered_lines() {
    let result = run_ul(
        cfg(2),
        make_node,
        &mut WipeOne {
            target: NodeId(4),
            break_at: 4,
            leave_at: 6,
        },
    );
    let evs: Vec<&OutputEvent> = result.outputs[NodeId(4).idx()]
        .iter()
        .map(|(_, e)| e)
        .collect();
    assert!(evs.contains(&&OutputEvent::Compromised));
    assert!(evs.contains(&&OutputEvent::Recovered));
}

#[test]
fn app_inputs_during_refresh_are_queued_not_lost() {
    // Two inputs land at node 1 while π is suspended (mid-refresh). With the
    // grow-only-set app, both must appear in node 1's replica afterwards —
    // one consumed per app tick once normal operation resumes.
    use proauth_core::authenticator::GrowSetApp;
    use std::sync::{Arc, Mutex};

    type Replica = Arc<Mutex<std::collections::BTreeSet<(u32, Vec<u8>)>>>;

    struct Reader {
        replica: Replica,
        read_at: u64,
    }
    impl UlAdversary for Reader {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            if view.time.round == self.read_at {
                BreakPlan::break_into([NodeId(1)])
            } else {
                BreakPlan::none()
            }
        }
        fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
            if let Some(node) = state.downcast_mut::<UlsNode<GrowSetApp>>() {
                *self.replica.lock().unwrap() = node.app.set.clone();
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }

    let refresh_mid = unit_rounds() + 5; // inside Part I of unit 1
    let c = cfg(2);
    let replica = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let mut adv = Reader {
        replica: replica.clone(),
        read_at: c.total_rounds - 1,
    };
    let group = Group::new(GroupId::Toy64);
    let _result = run_ul_with_inputs(
        c,
        |id| UlsNode::new(UlsConfig::new(group.clone(), N, T), id, GrowSetApp::default()),
        &mut adv,
        move |id, round| {
            if id != NodeId(1) {
                return None;
            }
            if round == refresh_mid {
                Some(proauth_core::uls::app_input(b"queued-one"))
            } else if round == refresh_mid + 1 {
                Some(proauth_core::uls::app_input(b"queued-two"))
            } else {
                None
            }
        },
    );
    let set = replica.lock().unwrap().clone();
    assert!(set.contains(&(1, b"queued-one".to_vec())), "{set:?}");
    assert!(set.contains(&(1, b"queued-two".to_vec())), "{set:?}");
}
