//! Constructor/configuration validation: bad parameters fail loudly at
//! construction, not silently at refresh time.

use proauth_core::disperse::{DisperseLayer, DisperseMode};
use proauth_core::uls::{uls_schedule, UlsConfig};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::als::AlsConfig;
use proauth_sim::message::NodeId;

#[test]
#[should_panic(expected = "n >= 2t+1")]
fn uls_config_rejects_undersized_network() {
    let group = Group::new(GroupId::Toy64);
    let _ = UlsConfig::new(group, 4, 2); // needs n >= 5
}

#[test]
#[should_panic(expected = "n >= 2t+1")]
fn als_config_rejects_undersized_network() {
    let group = Group::new(GroupId::Toy64);
    let _ = AlsConfig::new(group, 2, 1);
}

#[test]
#[should_panic(expected = "must be even")]
fn uls_schedule_rejects_odd_normal_rounds() {
    let _ = uls_schedule(13);
}

#[test]
fn uls_schedule_shape() {
    let s = uls_schedule(12);
    assert_eq!(s.unit_rounds, proauth_core::PART1_ROUNDS + proauth_core::PART2_ROUNDS + 12);
    assert_eq!(s.part1_rounds, proauth_core::PART1_ROUNDS);
    assert_eq!(s.part2_rounds, proauth_core::PART2_ROUNDS);
}

#[test]
fn boundary_network_sizes_accepted() {
    let group = Group::new(GroupId::Toy64);
    // Smallest legal network: n = 3, t = 1.
    let c = UlsConfig::new(group.clone(), 3, 1);
    assert_eq!(c.n, 3);
    // t = 0 (no fault tolerance, still a valid PDS with threshold 1).
    let c = UlsConfig::new(group, 1, 0);
    assert_eq!(c.t, 0);
}

#[test]
fn relaxed_fanout_larger_than_network_is_harmless() {
    // Fanout caps at n−1 naturally.
    let mut layer = DisperseLayer::new(NodeId(1), 4, DisperseMode::Relaxed { fanout: 99 });
    layer.send(NodeId(2), vec![1].into());
    let out = layer.drain_outgoing();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].fanout(), 3);
}

#[test]
fn input_tag_helpers_roundtrip() {
    let s = proauth_core::uls::sign_input(b"doc");
    assert_eq!(s[0], 1);
    assert_eq!(&s[1..], b"doc");
    let a = proauth_core::uls::app_input(b"chat");
    assert_eq!(a[0], 2);
    assert_eq!(&a[1..], b"chat");
}
