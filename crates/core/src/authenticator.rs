//! The proactive authenticator Λ (§5): the top-layer protocol interface.
//!
//! A protocol `π` written for the AL model implements [`AlProtocol`]; the
//! compiler `Λ(π)` is [`crate::uls::UlsNode`] parameterized by that protocol:
//! the top layer runs unchanged, every message it sends travels through
//! AUTH-SEND, and the node inherits the ULS refresh/alert machinery —
//! exactly the layered-authenticator structure of Definition 10.
//!
//! One logical `π` round costs two physical rounds (the DISPERSE echo), and
//! `π` is suspended during refreshment phases (which the paper sizes at "a
//! few seconds" against time units of hours or days).

use proauth_sim::message::{NodeId, OutputEvent};

/// Context handed to the top-layer protocol each logical round.
#[derive(Debug)]
pub struct AppCtx<'a> {
    /// Current time unit.
    pub unit: u64,
    /// Logical round counter (increments once per app tick).
    pub logical_round: u64,
    /// This node.
    pub me: NodeId,
    /// Network size.
    pub n: usize,
    /// Authenticated messages accepted since the previous logical round.
    pub accepted: &'a [(NodeId, Vec<u8>)],
    /// External input for this logical round, if any.
    pub input: Option<&'a [u8]>,
    pub(crate) sends: Vec<(NodeId, Vec<u8>)>,
    pub(crate) outputs: Vec<OutputEvent>,
}

impl<'a> AppCtx<'a> {
    /// Sends an authenticated message to `to` (delivered — links permitting —
    /// at the next logical round).
    pub fn send(&mut self, to: NodeId, msg: Vec<u8>) {
        self.sends.push((to, msg));
    }

    /// Sends to every other node.
    pub fn send_all(&mut self, msg: Vec<u8>) {
        for to in NodeId::all(self.n) {
            if to != self.me {
                self.sends.push((to, msg.clone()));
            }
        }
    }

    /// Emits a protocol output event.
    pub fn output(&mut self, ev: OutputEvent) {
        self.outputs.push(ev);
    }
}

/// A protocol designed for the AL model (the `π` that Λ compiles).
pub trait AlProtocol: 'static {
    /// Executes one logical round of `π`.
    fn on_logical_round(&mut self, ctx: &mut AppCtx<'_>);
}

/// The trivial protocol (runs the ULS machinery with no top layer).
#[derive(Debug, Default, Clone)]
pub struct NullApp;

impl AlProtocol for NullApp {
    fn on_logical_round(&mut self, _ctx: &mut AppCtx<'_>) {}
}

/// A simple demonstration protocol: each node broadcasts a heartbeat every
/// logical round and records what it accepts. Useful for awareness
/// experiments — its `Sent`/`Accepted` events define the internal/external
/// views of Definition 10.
#[derive(Debug, Default, Clone)]
pub struct HeartbeatApp {
    /// Total heartbeats accepted, per peer (0-based index).
    pub heard: Vec<u64>,
}

impl AlProtocol for HeartbeatApp {
    fn on_logical_round(&mut self, ctx: &mut AppCtx<'_>) {
        if self.heard.is_empty() {
            self.heard = vec![0; ctx.n];
        }
        for (from, msg) in ctx.accepted {
            self.heard[from.idx()] += 1;
            ctx.outputs.push(OutputEvent::Accepted {
                from: *from,
                msg: msg.clone(),
            });
        }
        let beat = format!("hb:{}:{}", ctx.me.0, ctx.logical_round).into_bytes();
        for to in NodeId::all(ctx.n) {
            if to != ctx.me {
                ctx.sends.push((to, beat.clone()));
                ctx.outputs.push(OutputEvent::Sent {
                    to,
                    msg: beat.clone(),
                });
            }
        }
    }
}

/// A replicated grow-only set — a small but *stateful* `π` demonstrating
/// that the authenticator preserves application-level invariants: every
/// element in any replica was added by the authentic node it claims, and
/// replicas converge whenever the links permit.
///
/// Protocol: local inputs become `add:<me>:<value>` broadcasts; nodes merge
/// everything they accept. Because additions are idempotent and commutative,
/// the set is a CRDT — convergence needs no ordering, only authenticity and
/// (eventual) delivery, exactly what the compiler provides.
#[derive(Debug, Default, Clone)]
pub struct GrowSetApp {
    /// The replica contents: (origin, value) pairs.
    pub set: std::collections::BTreeSet<(u32, Vec<u8>)>,
    /// Re-broadcast buffer: everything I know, gossiped periodically so
    /// late/recovered nodes catch up.
    gossip_counter: u64,
}

impl GrowSetApp {
    fn encode_entry(origin: u32, value: &[u8]) -> Vec<u8> {
        let mut out = origin.to_be_bytes().to_vec();
        out.extend_from_slice(value);
        out
    }

    fn decode_entry(bytes: &[u8]) -> Option<(u32, Vec<u8>)> {
        if bytes.len() < 4 {
            return None;
        }
        let origin = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        Some((origin, bytes[4..].to_vec()))
    }
}

impl AlProtocol for GrowSetApp {
    fn on_logical_round(&mut self, ctx: &mut AppCtx<'_>) {
        // Local input: add to my replica and broadcast.
        if let Some(value) = ctx.input {
            self.set.insert((ctx.me.0, value.to_vec()));
        }
        // Merge authentic gossip. The AUTHENTICITY invariant: an entry
        // claiming origin o is only merged when it arrives from o itself —
        // the compiler guarantees `from` is genuine.
        for (from, msg) in ctx.accepted {
            if let Some((origin, value)) = Self::decode_entry(msg) {
                if origin == from.0 {
                    self.set.insert((origin, value));
                }
            }
        }
        // Gossip my own entries every 4th logical round (staggered by id so
        // rounds are not bursty).
        self.gossip_counter += 1;
        if (self.gossip_counter + u64::from(ctx.me.0)).is_multiple_of(4) {
            let mine: Vec<(u32, Vec<u8>)> = self
                .set
                .iter()
                .filter(|(o, _)| *o == ctx.me.0)
                .cloned()
                .collect();
            for (origin, value) in mine {
                ctx.send_all(Self::encode_entry(origin, &value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ctx_send_all_excludes_self() {
        let mut ctx = AppCtx {
            unit: 0,
            logical_round: 0,
            me: NodeId(2),
            n: 4,
            accepted: &[],
            input: None,
            sends: Vec::new(),
            outputs: Vec::new(),
        };
        ctx.send_all(vec![1]);
        assert_eq!(ctx.sends.len(), 3);
        assert!(ctx.sends.iter().all(|(to, _)| *to != NodeId(2)));
    }

    #[test]
    fn growset_merges_only_authentic_origins() {
        let mut app = GrowSetApp::default();
        let accepted = vec![
            // Authentic: claimed origin matches the (verified) sender.
            (NodeId(2), GrowSetApp::encode_entry(2, b"real")),
            // Laundered: node 3 relaying an entry claiming node 4's origin.
            (NodeId(3), GrowSetApp::encode_entry(4, b"laundered")),
            // Garbage.
            (NodeId(2), vec![1]),
        ];
        let mut ctx = AppCtx {
            unit: 0,
            logical_round: 0,
            me: NodeId(1),
            n: 4,
            accepted: &accepted,
            input: Some(b"mine"),
            sends: Vec::new(),
            outputs: Vec::new(),
        };
        app.on_logical_round(&mut ctx);
        assert!(app.set.contains(&(1, b"mine".to_vec())));
        assert!(app.set.contains(&(2, b"real".to_vec())));
        assert!(!app.set.iter().any(|(_, v)| v == b"laundered"));
    }

    #[test]
    fn growset_gossips_own_entries() {
        let mut app = GrowSetApp::default();
        app.set.insert((1, b"x".to_vec()));
        app.set.insert((2, b"theirs".to_vec()));
        // Drive rounds until the gossip tick fires.
        let mut sent = Vec::new();
        for round in 0..4 {
            let mut ctx = AppCtx {
                unit: 0,
                logical_round: round,
                me: NodeId(1),
                n: 3,
                accepted: &[],
                input: None,
                sends: Vec::new(),
                outputs: Vec::new(),
            };
            app.on_logical_round(&mut ctx);
            sent.extend(ctx.sends);
        }
        assert!(!sent.is_empty());
        // Only my own entries are gossiped (no origin laundering).
        for (_, msg) in &sent {
            let (origin, _) = GrowSetApp::decode_entry(msg).unwrap();
            assert_eq!(origin, 1);
        }
    }

    #[test]
    fn heartbeat_records_accepts() {
        let mut app = HeartbeatApp::default();
        let accepted = vec![(NodeId(1), b"hb:1:0".to_vec())];
        let mut ctx = AppCtx {
            unit: 0,
            logical_round: 1,
            me: NodeId(2),
            n: 3,
            accepted: &accepted,
            input: None,
            sends: Vec::new(),
            outputs: Vec::new(),
        };
        app.on_logical_round(&mut ctx);
        assert_eq!(app.heard[0], 1);
        assert_eq!(ctx.sends.len(), 2);
        // Sent + Accepted events present for awareness analysis.
        assert!(ctx
            .outputs
            .iter()
            .any(|e| matches!(e, OutputEvent::Accepted { .. })));
        assert!(ctx.outputs.iter().any(|e| matches!(e, OutputEvent::Sent { .. })));
    }
}
