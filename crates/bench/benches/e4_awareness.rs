//! E4 — Proposition 31: `(t,t)`-awareness.
//!
//! Runs the certification-hijack attack (the strongest impersonation that
//! never breaks into its victim) against every possible victim over several
//! seeds, and measures:
//!
//! * how often the attack mechanically succeeds (fake key certified,
//!   forgeries accepted by honest nodes);
//! * how often the victim alerts **in the same time unit** — the
//!   proposition demands *always*;
//! * that the adversary stayed `(t,t)`-limited each time.

use proauth_adversary::{Hijacker, LimitObserver};
use proauth_bench::{pct, print_table, uls_cfg, uls_node};
use proauth_core::awareness;
use proauth_core::uls::uls_schedule;
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::run_ul;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn main() {
    let sched = uls_schedule(NORMAL);
    let seeds = 5u64;
    let mut rows = Vec::new();
    let mut attacks = 0usize;
    let mut successes = 0usize;
    let mut alerts = 0usize;
    let mut covered = 0usize;
    let mut limited = 0usize;

    for victim_idx in 0..N {
        let victim = NodeId::from_idx(victim_idx);
        let mut v_success = 0;
        let mut v_alert = 0;
        for seed in 0..seeds {
            let group = Group::new(GroupId::Toy64);
            let mut adv =
                LimitObserver::new(Hijacker::new(group, victim, 1, sched.unit_rounds));
            let result = run_ul(
                uls_cfg(N, T, NORMAL, 2, 40 + seed * 31 + victim_idx as u64),
                uls_node(N, T),
                &mut adv,
            );
            attacks += 1;
            let accepted = result
                .outputs
                .iter()
                .flat_map(|log| log.iter())
                .filter(|(_, ev)| {
                    matches!(ev, OutputEvent::Accepted { msg, .. }
                        if msg == b"FORGED-BY-HIJACKER")
                })
                .count();
            let succeeded = adv.inner.harvested_cert.is_some() && accepted > 0;
            if succeeded {
                successes += 1;
                v_success += 1;
            }
            let alerted = result.alerted_in_unit(victim, 1, &sched);
            if alerted {
                alerts += 1;
                v_alert += 1;
            }
            if adv.max_impaired() <= T {
                limited += 1;
            }
            // Every impersonation incident covered by a same-unit alert?
            let uncovered = awareness::unalerted_impersonations(
                &result.outputs,
                &sched,
                |_, _| false,
                |node, unit| result.alerted_in_unit(node, unit, &sched),
            );
            if uncovered.is_empty() {
                covered += 1;
            }
        }
        rows.push(vec![
            format!("{victim}"),
            format!("{v_success}/{seeds}"),
            format!("{v_alert}/{seeds}"),
        ]);
    }

    print_table(
        "E4 / Prop. 31 — certification hijack per victim (n = 5, t = 2, 5 seeds)",
        &["victim", "attack succeeded", "victim alerted in unit"],
        &rows,
    );
    println!("\naggregate over {attacks} attack runs:");
    println!("  attack success rate          : {}", pct(successes, attacks));
    println!("  same-unit alert rate         : {}", pct(alerts, attacks));
    println!("  runs fully covered by alerts : {}", pct(covered, attacks));
    println!("  runs within the (t,t) limit  : {}", pct(limited, attacks));
    println!(
        "\nExpected shape: success 100% (disconnection makes impersonation unavoidable),\n\
         alerts 100% (Proposition 31), coverage 100%, limit compliance 100%."
    );
}
