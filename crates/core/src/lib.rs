//! # proauth-core
//!
//! The primary contribution of Canetti–Halevi–Herzberg (PODC '97 /
//! *J. Cryptology* 2000): maintaining authenticated communication over
//! unauthenticated links under repeated transient break-ins.
//!
//! * [`disperse`] — protocol DISPERSE (Fig. 2) and its §6 O(nt) relaxation;
//! * [`mod@certify`] — CERTIFY / VER-CERT (Fig. 3) and per-unit local keys;
//! * [`pa`] — PARTIAL-AGREEMENT (Fig. 5, Lemma 16);
//! * [`wire`] — the layered wire formats;
//! * [`uls`] — the ULS construction of §4.2 (Theorem 14): the UL-model PDS
//!   plus the proactive-authentication refresh machinery;
//! * [`authenticator`] — the proactive authenticator Λ of §5 (Theorem 30,
//!   Proposition 31): compile any [`authenticator::AlProtocol`] into the UL
//!   model by plugging it into [`uls::UlsNode`];
//! * [`awareness`] — internal/external views and impersonation detection
//!   (Definitions 10–11);
//! * [`partition`] — the §6 two-level scalability scheme (topology and
//!   break-in arithmetic);
//! * [`hier`] — the §6 scheme end to end: cluster-local ULS stacks under a
//!   top-level PDS over cluster representatives.
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs` at the repository root: build a
//! [`uls::UlsConfig`], spawn [`uls::UlsNode`]s in `proauth_sim::run_ul`, and
//! authenticated communication survives break-ins and hostile links.

pub mod authenticator;
pub mod awareness;
pub mod certify;
pub mod disperse;
pub mod hier;
pub mod pa;
pub mod partition;
pub mod uls;
pub mod wire;

pub use authenticator::{AlProtocol, AppCtx, GrowSetApp, HeartbeatApp, NullApp};
pub use certify::{certify, ver_cert, DestCheck, LocalKeys};
pub use disperse::{DisperseLayer, DisperseMode};
pub use hier::{
    heartbeat_msg, transit_input, HierConfig, HierNode, HierWire, HIER_SETUP_ROUNDS,
};
pub use pa::PaInstance;
pub use uls::{
    app_input, sign_input, uls_schedule, AuthMode, UlsConfig, UlsNode, PART1_ROUNDS,
    PART2_ROUNDS, SETUP_ROUNDS,
};
