//! Randomized end-to-end security fuzz: seeded random `(t,t)`-limited
//! adversaries mixing break-ins (wipe or spy) and targeted isolations. For
//! every seed, the theorems' invariants are asserted on the global output.
//!
//! (A *global* random dropper is deliberately absent: even 1% background
//! loss makes arbitrary nodes `s`-disconnected in some round, which by
//! Definition 7 is **not** a `(t,t)`-limited adversary — E10 covers that
//! regime separately, where only the no-forgery invariant is claimed.)
//!
//! Invariants per seed:
//!
//! * no forgery (ideal-process conformance, Definition 12);
//! * every impersonation of a never-broken node covered by a same-unit
//!   alert (Proposition 31);
//! * the adversary really stayed within the `(t,t)` limit (ground truth);
//! * full recovery once the adversary goes quiet.

use proauth_adversary::LimitObserver;
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_sim::runner::{run_ul, SimConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;
const ATTACK_UNITS: u64 = 3;
const TOTAL_UNITS: u64 = ATTACK_UNITS + 1; // final unit quiet for recovery

#[derive(Debug, Clone)]
enum Action {
    /// Break in for `[from, to)` and wipe all volatile state.
    Wipe { node: NodeId, from: u64, to: u64 },
    /// Break in for `[from, to)`, read-only.
    Spy { node: NodeId, from: u64, to: u64 },
    /// Drop all the node's traffic for `[from, to)`.
    Isolate { node: NodeId, from: u64, to: u64 },
}

/// Generates a random attack plan touching at most `t` nodes per unit.
///
/// A subtlety of Definition 7 that this generator must respect: a node
/// attacked in unit `u` stays non-`s`-operational until the END of unit
/// `u+1`'s refreshment phase (rejoining is only possible there), so it
/// *also* consumes a slot of unit `u+1`'s budget. Attacking only every
/// other unit keeps the per-unit impairment at ≤ `t` by construction; the
/// `LimitObserver` double-checks from ground truth.
fn random_plan(seed: u64, unit_rounds: u64) -> Vec<Action> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut actions = Vec::new();
    for unit in (0..ATTACK_UNITS).step_by(2) {
        let victims = rng.gen_range(0..=T);
        let mut chosen: BTreeSet<u32> = BTreeSet::new();
        while chosen.len() < victims {
            chosen.insert(rng.gen_range(1..=N as u32));
        }
        for node in chosen {
            let node = NodeId(node);
            let unit_start = unit * unit_rounds;
            // Stay clear of the very end of the unit so break-ins do not
            // straddle the next unit's budget.
            let from = unit_start + rng.gen_range(2..unit_rounds / 2);
            let dwell: u64 = rng.gen_range(2..8);
            let to = (from + dwell).min(unit_start + unit_rounds - 2);
            let action = match rng.gen_range(0..3) {
                0 => Action::Wipe { node, from, to },
                1 => Action::Spy { node, from, to },
                _ => Action::Isolate { node, from, to },
            };
            actions.push(action);
        }
    }
    actions
}

struct RandomAdversary {
    actions: Vec<Action>,
    dropper: StdRng,
    drop_p: f64,
}

impl UlAdversary for RandomAdversary {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let round = view.time.round;
        let mut plan = BreakPlan::none();
        for a in &self.actions {
            match a {
                Action::Wipe { node, from, to } | Action::Spy { node, from, to } => {
                    if round == *from {
                        plan.break_into.push(*node);
                    }
                    if round == *to {
                        plan.leave.push(*node);
                    }
                }
                Action::Isolate { .. } => {}
            }
        }
        plan
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        let wiping = self.actions.iter().any(|a| {
            matches!(a, Action::Wipe { node: v, from, to }
                if *v == node && time.round >= *from && time.round < *to)
        });
        if wiping {
            if let Some(n) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
                n.corrupt_wipe();
            }
        }
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let round = view.time.round;
        sent.iter()
            .filter(|e| {
                // Unit-long isolations.
                let isolated = self.actions.iter().any(|a| {
                    matches!(a, Action::Isolate { node, from, to }
                        if (e.from == *node || e.to == *node)
                            && round >= *from && round < *to)
                });
                !isolated && self.dropper.gen::<f64>() >= self.drop_p
            })
            .cloned()
            .collect()
    }
}

fn run_seed(seed: u64) -> (Vec<Action>, usize) {
    let schedule = uls_schedule(NORMAL);
    let mut cfg = SimConfig::new(N, T, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * TOTAL_UNITS;
    cfg.seed = seed;
    let actions = random_plan(seed, schedule.unit_rounds);
    let mut adv = LimitObserver::new(RandomAdversary {
        actions: actions.clone(),
        dropper: StdRng::seed_from_u64(seed ^ 0xD06),
        drop_p: 0.0,
    });
    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), N, T), id, HeartbeatApp::default()),
        &mut adv,
    );

    // Invariant 1: the adversary stayed (t,t)-limited.
    assert!(
        adv.max_impaired() <= T,
        "seed {seed}: impaired {} > t, plan {actions:?}",
        adv.max_impaired()
    );

    // Invariant 2: no forgery.
    let checker = IdealChecker::new(T);
    let violations = checker.check_no_forgery(&result.outputs, &[]);
    assert!(violations.is_empty(), "seed {seed}: {violations:?}");

    // Invariant 3: impersonations of never-broken nodes are alert-covered.
    let broken_in = |node: NodeId, unit: u64| {
        actions.iter().any(|a| match a {
            Action::Wipe { node: v, from, to } | Action::Spy { node: v, from, to } => {
                *v == node
                    && schedule.unit_of(*from) <= unit
                    && unit <= schedule.unit_of(to.saturating_sub(1))
            }
            Action::Isolate { .. } => false,
        })
    };
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        &schedule,
        broken_in,
        |node, unit| result.alerted_in_unit(node, unit, &schedule),
    );
    assert!(uncovered.is_empty(), "seed {seed}: {uncovered:?}");

    // Invariant 4: with the final unit quiet, everyone ends operational.
    let operational = result.final_operational.iter().filter(|&&b| b).count();
    assert_eq!(
        operational, N,
        "seed {seed}: recovery incomplete, plan {actions:?}"
    );

    (actions, operational)
}

#[test]
fn random_limited_adversaries_never_break_the_invariants() {
    for seed in 0..6u64 {
        let (actions, _) = run_seed(700 + seed);
        let _ = actions;
    }
}
