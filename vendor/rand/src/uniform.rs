//! Uniform range sampling, mirroring rand 0.8's `UniformInt` widening
//! multiply rejection so seeded streams match upstream.

use crate::{Rng, RngCore};

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $large_is_small:expr) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let range =
                    (self.end.wrapping_sub(self.start) as $unsigned) as $u_large;
                let zone = if $large_is_small {
                    // Small int types share a u32 wide type: exact zone.
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = gen_large::<$u_large, R>(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let range = ((high.wrapping_sub(low) as $unsigned) as $u_large)
                    .wrapping_add(1);
                if range == 0 {
                    // Full integer domain.
                    return gen_large::<$u_large, R>(rng) as $ty;
                }
                let zone = if $large_is_small {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = gen_large::<$u_large, R>(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, true);
uniform_int_impl!(u16, u16, u32, true);
uniform_int_impl!(u32, u32, u32, false);
uniform_int_impl!(u64, u64, u64, false);
uniform_int_impl!(usize, usize, u64, false);
uniform_int_impl!(i8, u8, u32, true);
uniform_int_impl!(i16, u16, u32, true);
uniform_int_impl!(i32, u32, u32, false);
uniform_int_impl!(i64, u64, u64, false);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = rng.gen();
        self.start + unit * (self.end - self.start)
    }
}

/// Widening multiply: `(hi, lo)` of `a · b`.
trait WideningMul: Copy {
    fn widening(a: Self, b: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn widening(a: u32, b: u32) -> (u32, u32) {
        let t = (a as u64) * (b as u64);
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    fn widening(a: u64, b: u64) -> (u64, u64) {
        let t = (a as u128) * (b as u128);
        ((t >> 64) as u64, t as u64)
    }
}

fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    T::widening(a, b)
}

/// Draws a full-width value of the wide type (u32 via `next_u32`, u64 via
/// `next_u64`) — the same draw upstream `v: $u_large = rng.gen()` performs.
trait GenLarge: Sized {
    fn gen_large<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl GenLarge for u32 {
    fn gen_large<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl GenLarge for u64 {
    fn gen_large<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

fn gen_large<T: GenLarge, R: RngCore + ?Sized>(rng: &mut R) -> T {
    T::gen_large(rng)
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_full_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }
}
