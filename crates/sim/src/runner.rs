//! The synchronous execution engines for the AL and UL models.
//!
//! Both runners implement the paper's execution semantics precisely:
//!
//! * an adversary-free **set-up phase** with faithful delivery and writable
//!   ROM (§2.1: "we assume an initial set-up phase where the parties
//!   communicate without the intervention of the adversary");
//! * synchronous **rounds**: messages sent in round `w` are delivered at the
//!   start of round `w+1`;
//! * **rushing**: the adversary acts on each round's honest messages before
//!   deciding deliveries / broken-node messages;
//! * **break-ins**: while broken, a node's program does not run, its inbox is
//!   diverted to the adversary, and its memory (but never its ROM) is
//!   mutable by the adversary;
//! * fresh per-round randomness seeded outside corruptible node state;
//! * ground-truth tracking of link reliability and the `s`-operational set,
//!   which also drives the "compromised"/"recovered" lines of the global
//!   output (UL semantics per §2.2; AL uses broken status per §2.1).
//!
//! # Examples
//!
//! ```
//! use proauth_sim::adversary::FaithfulUl;
//! use proauth_sim::clock::Schedule;
//! use proauth_sim::message::NodeId;
//! use proauth_sim::process::{Process, RoundCtx, SetupCtx};
//! use proauth_sim::runner::{run_ul, SimConfig};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}
//!     fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
//!         ctx.send_all(vec![ctx.time.round as u8]);
//!     }
//!     fn state_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut cfg = SimConfig::new(3, 1, Schedule::new(10, 2, 2));
//! cfg.total_rounds = 10;
//! let result = run_ul(cfg, |_| Echo, &mut FaithfulUl);
//! assert_eq!(result.stats.messages_sent, 3 * 2 * 10);
//! ```

use crate::adversary::{AlAdversary, BreakPlan, NetView, UlAdversary};
use crate::clock::{Phase, Schedule, TimeView};
use crate::driver;
use crate::message::{Envelope, NodeId, OutboxEntry, OutputEvent, OutputLog};
use crate::pool::{self, WorkerPool};
use crate::process::{Process, Rom};
use crate::reliability::{
    link_reliability, link_reliability_pooled, ClusterTrackers, OperationalRule,
    OperationalTracker, PairMatrix,
};
use proauth_telemetry::{self as telemetry, PhaseTimer, Shard, Telemetry};
use std::time::Instant;

/// Simulation parameters shared by both models.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of nodes.
    pub n: usize,
    /// Disconnection threshold `s` used for operational tracking and the
    /// global-output semantics.
    pub s: usize,
    /// Round/unit layout.
    pub schedule: Schedule,
    /// Master seed for all node and protocol randomness.
    pub seed: u64,
    /// Length of the adversary-free set-up phase, in rounds.
    pub setup_rounds: u64,
    /// Number of post-setup rounds to execute.
    pub total_rounds: u64,
    /// Which reading of Definition 5 to apply.
    pub rule: OperationalRule,
    /// Record the full per-round transcript (memory-heavy).
    pub record_transcript: bool,
    /// Execute honest nodes on a persistent worker pool each round. Results
    /// are bit-identical to sequential execution for any worker count
    /// (per-node state is disjoint, randomness is derived per (node, round),
    /// and per-worker results are merged in `NodeId` order); useful when node
    /// computation (big-group crypto) dominates.
    ///
    /// Defaults to `true` when the `PROAUTH_THREADS` environment variable is
    /// set, so the whole test suite can be swept across pool sizes.
    pub parallel: bool,
    /// Worker-pool size when `parallel` is set. `0` = auto: the
    /// `PROAUTH_THREADS` environment variable, else available parallelism.
    pub threads: usize,
    /// Telemetry handle for the run: metrics registry plus optional JSONL
    /// flight recorder. Off by default (near-zero cost — instrumented call
    /// sites reduce to a branch on a process-global flag); defaults to a
    /// file sink when the `PROAUTH_TRACE` environment variable names a path.
    ///
    /// Enabling telemetry never changes a [`SimResult`]: recording is
    /// one-way, wall-clock values stay out of deterministic state, and
    /// per-node shards are merged in `NodeId` order, so results *and* traces
    /// (minus `wall_*` fields) are bit-identical across worker counts.
    pub telemetry: Telemetry,
    /// Optional §6 cluster topology (1-based global node ids per cluster;
    /// must cover `1..=n` exactly once). When set, Definition-4/5 ground
    /// truth runs *per cluster* ([`ClusterTrackers`]): a node's operational
    /// status is judged against its cluster-local links only, matching the
    /// hierarchical construction where protocol obligations are cluster-
    /// scoped. `None` (the default) keeps the flat tracker.
    pub clusters: Option<Vec<Vec<u32>>>,
}

impl SimConfig {
    /// A reasonable default configuration for `n` nodes with threshold `s`.
    pub fn new(n: usize, s: usize, schedule: Schedule) -> Self {
        SimConfig {
            n,
            s,
            schedule,
            seed: 0,
            setup_rounds: 8,
            total_rounds: schedule.unit_rounds * 3,
            rule: OperationalRule::default(),
            record_transcript: false,
            parallel: pool::env_threads().is_some(),
            threads: 0,
            telemetry: Telemetry::from_env(),
            clusters: None,
        }
    }
}

/// The engine's Definition-4/5 ground truth: the flat tracker, or the
/// per-cluster trackers of the §6 two-level topology. Either way the engine
/// only ever asks for the (global) operational view and feeds one round of
/// impairment + link reliability at a time.
enum GroundTruth {
    Flat(OperationalTracker),
    Clustered(ClusterTrackers),
}

impl GroundTruth {
    fn operational(&self) -> &[bool] {
        match self {
            GroundTruth::Flat(t) => t.operational(),
            GroundTruth::Clustered(t) => t.operational(),
        }
    }

    fn is_operational(&self, id: NodeId) -> bool {
        match self {
            GroundTruth::Flat(t) => t.is_operational(id),
            GroundTruth::Clustered(t) => t.is_operational(id),
        }
    }

    fn on_round_pooled(
        &mut self,
        broken: &[bool],
        reliable: &PairMatrix,
        in_refresh: bool,
        refresh_end: bool,
        pool: Option<&mut WorkerPool>,
    ) {
        match self {
            GroundTruth::Flat(t) => t.on_round_pooled(broken, reliable, in_refresh, refresh_end, pool),
            // Clusters are ≈√n-sized: the per-cluster induction is too small
            // to be worth the pool handshake, and serial execution keeps it
            // trivially identical across worker counts.
            GroundTruth::Clustered(t) => t.on_round(broken, reliable, in_refresh, refresh_end),
        }
    }
}

/// Per-round transcript record (ground truth; used by analyses and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// The round's time view.
    pub time: TimeView,
    /// Messages sent by honest nodes.
    pub sent: Vec<Envelope>,
    /// Messages actually delivered.
    pub delivered: Vec<Envelope>,
    /// Broken set during the round.
    pub broken: Vec<bool>,
    /// Crash-stopped set during the round.
    pub crashed: Vec<bool>,
    /// Operational set after the round.
    pub operational: Vec<bool>,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages sent by honest nodes.
    pub messages_sent: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Honest messages the adversary failed to deliver (per-round multiset
    /// diff of sent vs delivered; a modified message counts as modified, not
    /// dropped).
    pub messages_dropped: u64,
    /// Messages delivered that no honest node sent this round (adversary
    /// injections, including AL broken-node sends and replays).
    pub messages_injected: u64,
    /// Messages whose (from, to) link carried a different payload than the
    /// honest sender handed over (min of unmatched sent/delivered per link).
    pub messages_modified: u64,
    /// Total payload bytes sent by honest nodes.
    pub bytes_sent: u64,
    /// Crash-stop events (scheduled crashes plus panics converted to
    /// crashes).
    pub crashes: u64,
    /// Node steps that panicked and were converted into crashes.
    pub panics: u64,
    /// Restart events (crashed nodes brought back as fresh instances).
    pub restarts: u64,
    /// Alerts emitted, per node.
    pub alerts: Vec<u64>,
    /// Rounds each node spent broken.
    pub broken_rounds: Vec<u64>,
    /// Rounds each node spent crash-stopped.
    pub crashed_rounds: Vec<u64>,
    /// Rounds each node spent non-operational (post-start).
    pub non_operational_rounds: Vec<u64>,
    /// Per-unit Definition-7 scoreboard, one entry per (possibly partial)
    /// time unit in round order. Flat runs carry only the global counts;
    /// hierarchy runs add the per-cluster breakdown and the two-level
    /// budget verdict.
    pub unit_scores: Vec<UnitScore>,
}

/// Definition-7 accounting for one time unit: how many *distinct* nodes the
/// adversary impaired (broke or crashed) during the unit, and how many lost
/// s-operational status. In hierarchy runs the same counts are also scored
/// per cluster, because the budget that matters there is two-level: each
/// cluster's PDS tolerates `⌊(m_c−1)/2⌋` corrupt members, and the top-level
/// PDS over representatives tolerates `⌊(k−1)/2⌋` majority-compromised
/// clusters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitScore {
    /// The unit index.
    pub unit: u64,
    /// Distinct nodes broken or crashed at any round of the unit.
    pub impaired: u64,
    /// Distinct nodes non-operational at any round of the unit.
    pub non_operational: u64,
    /// Per-cluster breakdown (empty in flat runs).
    pub clusters: Vec<ClusterUnitScore>,
}

/// One cluster's share of a [`UnitScore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterUnitScore {
    /// Cluster size `m_c`.
    pub size: u64,
    /// Distinct members broken or crashed at any round of the unit.
    pub impaired: u64,
    /// Distinct members non-operational at any round of the unit.
    pub non_operational: u64,
}

impl ClusterUnitScore {
    /// Whether the impairment exceeded the cluster PDS's threshold
    /// `⌊(m_c−1)/2⌋` — past it, the cluster's shares (and so its
    /// representative) must be presumed adversarial for the unit.
    pub fn majority_compromised(&self) -> bool {
        self.impaired > self.size.saturating_sub(1) / 2
    }
}

impl UnitScore {
    /// Flat Definition-7 verdict: at most `t` distinct break-ins this unit.
    pub fn within_flat_budget(&self, t: usize) -> bool {
        self.impaired <= t as u64
    }

    /// Number of clusters whose local PDS threshold was exceeded.
    pub fn majority_compromised_clusters(&self) -> u64 {
        self.clusters
            .iter()
            .filter(|c| c.majority_compromised())
            .count() as u64
    }

    /// Two-level Definition-7 verdict for hierarchy runs: a unit is within
    /// budget when the clusters that blew their local threshold are few
    /// enough for the top-level PDS over representatives to outvote them —
    /// at most `⌊(k−1)/2⌋` of `k` clusters. (With no clusters configured
    /// this degenerates to `true`; use [`UnitScore::within_flat_budget`]
    /// for flat runs.)
    pub fn within_two_level_budget(&self) -> bool {
        let k = self.clusters.len() as u64;
        self.majority_compromised_clusters() <= k.saturating_sub(1) / 2
    }
}

/// The result of a simulation run: the paper's "global output" plus ground
/// truth for analysis. `PartialEq` compares every component, so determinism
/// tests can assert two runs are bit-identical with one `assert_eq!`.
#[derive(Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Per-node output logs (component `i` of the global output).
    pub outputs: Vec<OutputLog>,
    /// The adversary's output (component 0 of the global output).
    pub adversary_output: Vec<String>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Operational set at the end of the run.
    pub final_operational: Vec<bool>,
    /// Each node's ROM as frozen at the end of setup (e.g. the PDS
    /// verification key `v_cert`).
    pub roms: Vec<Rom>,
    /// Full transcript if requested.
    pub transcript: Option<Vec<RoundRecord>>,
}

impl SimResult {
    /// All events of a given node.
    pub fn events_of(&self, node: NodeId) -> &[(u64, OutputEvent)] {
        &self.outputs[node.idx()]
    }

    /// Whether `node` emitted [`OutputEvent::Alert`] during time unit `unit`.
    pub fn alerted_in_unit(&self, node: NodeId, unit: u64, schedule: &Schedule) -> bool {
        self.outputs[node.idx()]
            .iter()
            .any(|(round, ev)| *ev == OutputEvent::Alert && schedule.unit_of(*round) == unit)
    }
}

/// Per-round adversary interference, reconstructed by diffing the honest
/// sent set against the delivered set: `(dropped, injected, modified)`.
///
/// The fast path covers faithful delivery (same length, same links, shared
/// payloads — one pointer comparison per envelope), so the accounting is
/// effectively free on benign runs and `SimStats` can carry these fields
/// unconditionally. The slow path is a per-link multiset diff: an unmatched
/// sent and an unmatched delivery on the *same* link pair up as one
/// modification; the leftovers are drops and injections respectively.
fn delivery_diff(sent: &[Envelope], delivered: &[Envelope]) -> (u64, u64, u64) {
    if sent.len() == delivered.len() {
        let faithful = sent.iter().zip(delivered).all(|(a, b)| {
            a.from == b.from
                && a.to == b.to
                && (std::sync::Arc::ptr_eq(&a.payload, &b.payload) || a.payload == b.payload)
        });
        if faithful {
            return (0, 0, 0);
        }
    }
    use std::collections::HashMap;
    // Signed multiset per (link, payload): sends count up, deliveries down.
    let mut multiset: HashMap<(NodeId, NodeId, &[u8]), i64> = HashMap::new();
    for env in sent {
        *multiset.entry((env.from, env.to, &env.payload)).or_insert(0) += 1;
    }
    for env in delivered {
        *multiset.entry((env.from, env.to, &env.payload)).or_insert(0) -= 1;
    }
    // Net unmatched counts per link, ignoring payloads.
    let mut links: HashMap<(NodeId, NodeId), (u64, u64)> = HashMap::new();
    for ((from, to, _), count) in multiset {
        let slot = links.entry((from, to)).or_insert((0, 0));
        if count > 0 {
            slot.0 += count as u64; // sent but not delivered as-is
        } else {
            slot.1 += (-count) as u64; // delivered but never sent as-is
        }
    }
    let (mut dropped, mut injected, mut modified) = (0, 0, 0);
    for (_, (unmatched_sent, unmatched_delivered)) in links {
        let m = unmatched_sent.min(unmatched_delivered);
        modified += m;
        dropped += unmatched_sent - m;
        injected += unmatched_delivered - m;
    }
    (dropped, injected, modified)
}

/// Which model a run executes under (affects delivery and output semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    Al,
    Ul,
}

/// One honest node's work for a round: disjoint `&mut` access to its state
/// plus the round's inputs and reusable outbox buffer. Slots are what the
/// worker pool distributes; every result a job produces lands back in its
/// slot and is merged by the engine in `NodeId` order, which is what keeps
/// the parallel path bit-identical to the serial one.
struct NodeSlot<'a, P> {
    id: NodeId,
    node: &'a mut P,
    output: &'a mut OutputLog,
    rom: &'a Rom,
    inbox: Vec<Envelope>,
    input: Option<Vec<u8>>,
    outbox: Vec<OutboxEntry>,
    alerts: u64,
    /// Set when the node's step panicked; the engine converts this into a
    /// crash-stop during the merge.
    panicked: bool,
    /// Telemetry shard (present iff telemetry is on): installed as the
    /// thread-local recording scope while the node executes, merged by the
    /// engine in `NodeId` order afterwards.
    shard: Option<Shard>,
}

/// Executes one node's round into its slot. The protocol step itself —
/// randomness derivation, context construction, panic→crash conversion,
/// incremental alert accounting — is [`driver::step_round`], shared verbatim
/// with the socket daemon; this wrapper only adds the engine's telemetry
/// shard plumbing. Free function so the serial path and the pool jobs share
/// the exact same code.
fn exec_slot<P: Process>(seed: u64, time: TimeView, n: usize, slot: &mut NodeSlot<'_, P>) {
    // Install the slot's telemetry shard as this thread's recording scope,
    // saving whatever was there: the publisher thread participates in pool
    // batches while holding the engine-side shard, so scopes must nest.
    let scoped = slot.shard.is_some();
    let prev = if scoped {
        let mut shard = slot.shard.take().expect("shard present");
        shard.set_ctx(slot.id.0, time.round);
        telemetry::install(Some(shard))
    } else {
        None
    };
    let report = driver::step_round(
        seed,
        time,
        slot.id,
        n,
        slot.node,
        slot.rom,
        slot.output,
        &slot.inbox,
        slot.input.as_deref(),
        &mut slot.outbox,
    );
    slot.alerts = report.alerts;
    slot.panicked = report.panicked;
    if scoped {
        slot.shard = telemetry::install(prev);
    }
}

/// Node count below which the ground-truth computations (link matrix rows,
/// operational induction) are not worth shipping to the pool.
const POOLED_GROUND_TRUTH_MIN_N: usize = 24;

/// Internal engine shared by [`run_al`] and [`run_ul`].
struct Engine<'f, P> {
    cfg: SimConfig,
    model: Model,
    nodes: Vec<P>,
    /// Node factory, retained so restarted nodes come back as *fresh*
    /// instances — all volatile state lost, ROM intact (§4.2 recovery).
    make_node: Box<dyn FnMut(NodeId) -> P + 'f>,
    roms: Vec<Rom>,
    broken: Vec<bool>,
    /// Crash-stopped set: these nodes do not execute and their pending
    /// traffic is discarded (not diverted — a crash is not a break-in).
    crashed: Vec<bool>,
    /// Scratch: `broken ∨ crashed`, the impairment fed to the ground-truth
    /// computations so crashed rounds are charged to the (s,t) budget
    /// (`link_reliability` treats silent links as trivially reliable, so a
    /// crashed node must be marked explicitly).
    impaired_buf: Vec<bool>,
    /// Round each node's current `broken ∨ crashed` spell began; cleared on
    /// the first round the node is both released and s-operational again.
    /// Drives the recovery-latency histogram.
    impaired_since: Vec<Option<u64>>,
    /// Distinct nodes impaired so far in the current unit (reset at unit
    /// boundaries; feeds [`SimStats::unit_scores`]).
    unit_impaired: Vec<bool>,
    /// Distinct nodes non-operational so far in the current unit.
    unit_non_op: Vec<bool>,
    tracker: GroundTruth,
    /// Precomputed per-cluster telemetry keys (empty unless clustered and
    /// telemetry is on — avoids per-round formatting).
    cluster_tele_keys: Vec<&'static str>,
    /// Deliveries pending for the next round, per node. The per-node `Vec`s
    /// are recycled every round (taken as a slot's inbox, cleared, returned)
    /// so steady state allocates no inbox buffers at all.
    pending: Vec<Vec<Envelope>>,
    /// Reusable per-node outbox buffers, recycled the same way. Entries may
    /// carry many destinations; they stay unexpanded until the adversary
    /// boundary.
    outboxes: Vec<Vec<OutboxEntry>>,
    /// Reusable buffer for the round's merged sent set.
    sent_buf: Vec<Envelope>,
    /// All deliveries of the previous round (adversary view).
    last_delivered: Vec<Envelope>,
    outputs: Vec<OutputLog>,
    stats: SimStats,
    transcript: Option<Vec<RoundRecord>>,
    /// Previous "impaired" status used for output lines.
    prev_impaired: Vec<bool>,
    /// The persistent worker pool (present iff `cfg.parallel`); lives for
    /// the whole run instead of spawning threads every round.
    pool: Option<WorkerPool>,
    /// Per-node telemetry shards (present iff telemetry is on), recycled
    /// like the outbox buffers and merged in `NodeId` order each round.
    shards: Vec<Option<Shard>>,
    /// Engine-side shard for adversary callbacks (plan/corrupt/deliver run
    /// on the engine thread, outside any node scope).
    engine_shard: Option<Shard>,
    /// Span timer over the schedule's phases (Fig. 1).
    phase_timer: PhaseTimer,
}

impl<'f, P: Process + Send> Engine<'f, P> {
    fn new(cfg: SimConfig, model: Model, make_node: impl FnMut(NodeId) -> P + 'f) -> Self {
        let n = cfg.n;
        let mut make_node: Box<dyn FnMut(NodeId) -> P + 'f> = Box::new(make_node);
        let nodes: Vec<P> = NodeId::all(n).map(&mut *make_node).collect();
        let tracker = match &cfg.clusters {
            Some(clusters) => GroundTruth::Clustered(ClusterTrackers::new(
                clusters.clone(),
                n,
                cfg.s,
                cfg.rule,
            )),
            None => GroundTruth::Flat(OperationalTracker::with_rule(n, cfg.s, cfg.rule)),
        };
        let cluster_tele_keys = match (&cfg.clusters, cfg.telemetry.is_on()) {
            (Some(clusters), true) => (0..clusters.len())
                .map(|c| telemetry::intern_name(&format!("engine/cluster{c}/non_op_rounds")))
                .collect(),
            _ => Vec::new(),
        };
        Engine {
            tracker,
            cluster_tele_keys,
            model,
            nodes,
            make_node,
            roms: vec![Rom::new(); n],
            broken: vec![false; n],
            crashed: vec![false; n],
            impaired_buf: Vec::with_capacity(n),
            impaired_since: vec![None; n],
            unit_impaired: vec![false; n],
            unit_non_op: vec![false; n],
            pending: vec![Vec::new(); n],
            outboxes: vec![Vec::new(); n],
            sent_buf: Vec::new(),
            last_delivered: Vec::new(),
            outputs: vec![Vec::new(); n],
            stats: SimStats {
                alerts: vec![0; n],
                broken_rounds: vec![0; n],
                crashed_rounds: vec![0; n],
                non_operational_rounds: vec![0; n],
                ..SimStats::default()
            },
            transcript: if cfg.record_transcript {
                Some(Vec::new())
            } else {
                None
            },
            prev_impaired: vec![false; n],
            pool: if cfg.parallel {
                Some(WorkerPool::new(cfg.threads))
            } else {
                None
            },
            shards: (0..n).map(|_| cfg.telemetry.new_shard()).collect(),
            engine_shard: cfg.telemetry.new_shard(),
            phase_timer: PhaseTimer::new(),
            cfg,
        }
    }

    /// Takes the engine-side shard for an adversary callback outside
    /// [`Engine::round`] (the `plan` call), with its round context set.
    /// Install it via [`telemetry::install`] and hand the result back to
    /// [`Engine::put_adv_shard`].
    fn take_adv_shard(&mut self, round: u64) -> Option<Shard> {
        let mut shard = self.engine_shard.take();
        if let Some(sh) = shard.as_mut() {
            sh.set_ctx(0, round);
        }
        shard
    }

    fn put_adv_shard(&mut self, shard: Option<Shard>) {
        self.engine_shard = shard;
    }

    /// Runs the adversary-free set-up phase.
    fn setup(&mut self) {
        let n = self.cfg.n;
        for sr in 0..self.cfg.setup_rounds {
            let mut sent: Vec<Envelope> = Vec::new();
            for id in NodeId::all(n) {
                let inbox = std::mem::take(&mut self.pending[id.idx()]);
                let mut outbox: Vec<OutboxEntry> = Vec::new();
                driver::step_setup(
                    self.cfg.seed,
                    sr,
                    id,
                    n,
                    &mut self.nodes[id.idx()],
                    &mut self.roms[id.idx()],
                    &inbox,
                    &mut outbox,
                );
                for entry in &outbox {
                    sent.extend(entry.envelopes());
                }
            }
            for env in sent {
                self.pending[env.to.idx()].push(env);
            }
        }
        // The flight recorder starts at the adversary boundary: one
        // `run_start` header after the adversary-free set-up phase. Worker
        // count and wall-clock deliberately stay out of it — the trace
        // (minus `wall_*` fields) must be identical across engines.
        self.cfg.telemetry.emit_event("run_start", |ev| {
            ev.u64("n", self.cfg.n as u64)
                .u64("s", self.cfg.s as u64)
                .u64("seed", self.cfg.seed)
                .u64("setup_rounds", self.cfg.setup_rounds)
                .u64("total_rounds", self.cfg.total_rounds)
                .u64("unit_rounds", self.cfg.schedule.unit_rounds)
                .u64("part1_rounds", self.cfg.schedule.part1_rounds)
                .u64("part2_rounds", self.cfg.schedule.part2_rounds);
        });
    }

    /// Executes one post-setup round; `deliver` maps (sent, view) to the
    /// delivered set under the model's rules; `input_fn` supplies the
    /// per-round external inputs `x_{i,w}`.
    #[allow(clippy::too_many_lines)]
    fn round(
        &mut self,
        round: u64,
        plan: BreakPlan,
        corrupt: &mut dyn FnMut(NodeId, &mut dyn std::any::Any, &TimeView),
        deliver: &mut dyn FnMut(&[Envelope], &NetView<'_>) -> Vec<Envelope>,
        input_fn: &mut dyn FnMut(NodeId, u64) -> Option<Vec<u8>>,
    ) {
        let n = self.cfg.n;
        let time = TimeView::at(&self.cfg.schedule, round);
        let tele_on = self.cfg.telemetry.is_on();
        let round_start = tele_on.then(Instant::now);
        if tele_on {
            let label = match time.phase {
                Phase::RefreshPart1 { .. } => telemetry::PHASE_REFRESH1,
                Phase::RefreshPart2 { .. } => telemetry::PHASE_REFRESH2,
                Phase::Normal => telemetry::PHASE_NORMAL,
            };
            self.phase_timer
                .on_round(&self.cfg.telemetry, round, time.unit, label);
            self.cfg.telemetry.emit_event("round_start", |ev| {
                ev.u64("round", round)
                    .u64("unit", time.unit)
                    .u64("auth_unit", time.auth_unit)
                    .str("phase", label)
                    .u64("round_in_unit", time.round_in_unit);
            });
            self.cfg
                .telemetry
                .add("adversary/break_ins", plan.break_into.len() as u64);
            self.cfg
                .telemetry
                .add("adversary/leaves", plan.leave.len() as u64);
        }
        // Apply crash / restart plan. A crash-stop halts the node without
        // giving the adversary anything; a restart replaces the instance with
        // a freshly constructed one (volatile state lost, ROM preserved), so
        // the node re-certifies via the share-recovery / refresh path.
        for id in &plan.crash {
            if !self.crashed[id.idx()] {
                self.crashed[id.idx()] = true;
                self.stats.crashes += 1;
                if tele_on {
                    self.cfg.telemetry.add("adversary/crashes", 1);
                    self.cfg.telemetry.emit_event("node_crash", |ev| {
                        ev.u64("round", round)
                            .u64("node", u64::from(id.0))
                            .str("cause", "scheduled");
                    });
                }
            }
        }
        for id in &plan.restart {
            if self.crashed[id.idx()] {
                self.crashed[id.idx()] = false;
                self.stats.restarts += 1;
                self.nodes[id.idx()] = (self.make_node)(*id);
                self.pending[id.idx()].clear();
                if tele_on {
                    self.cfg.telemetry.add("adversary/restarts", 1);
                    self.cfg.telemetry.emit_event("node_restart", |ev| {
                        ev.u64("round", round).u64("node", u64::from(id.0));
                    });
                }
            }
        }
        // Engine-side recording scope: adversary callbacks (corrupt, the
        // deliver boundary) run on this thread outside any node scope.
        // Node jobs save/restore it (see `exec_slot`), so the publisher
        // thread participating in pool batches cannot clobber it.
        let adv_prev = tele_on.then(|| {
            let shard = self.take_adv_shard(round);
            telemetry::install(shard)
        });

        // Apply break-in plan.
        for id in plan.break_into {
            self.broken[id.idx()] = true;
        }
        for id in plan.leave {
            self.broken[id.idx()] = false;
        }

        // Memory corruption of broken nodes.
        for id in NodeId::all(n) {
            if self.broken[id.idx()] {
                corrupt(id, self.nodes[id.idx()].state_mut(), &time);
                self.stats.broken_rounds[id.idx()] += 1;
            }
            if self.crashed[id.idx()] {
                self.stats.crashed_rounds[id.idx()] += 1;
            }
        }

        // Honest nodes execute; broken nodes' inboxes divert to the adversary.
        // Inputs are sampled serially in NodeId order (the provider may be
        // stateful), then nodes run either sequentially or on the pool — the
        // result is identical: per-node state is disjoint, randomness is
        // derived per (node, round), and slot results are merged in NodeId
        // order, so execution order cannot matter.
        let mut broken_inboxes: Vec<Envelope> = Vec::new();
        let seed = self.cfg.seed;
        let sent_before = self.stats.messages_sent;
        let mut round_alerts = 0u64;
        let mut pool = self.pool.take();
        {
            let mut slots: Vec<NodeSlot<'_, P>> = Vec::with_capacity(n);
            for (((idx, node), output), rom) in self
                .nodes
                .iter_mut()
                .enumerate()
                .zip(self.outputs.iter_mut())
                .zip(self.roms.iter())
            {
                let id = NodeId::from_idx(idx);
                let mut inbox = std::mem::take(&mut self.pending[idx]);
                if self.broken[idx] {
                    broken_inboxes.append(&mut inbox);
                    self.pending[idx] = inbox; // keep the (now empty) buffer
                    continue;
                }
                if self.crashed[idx] {
                    // Crash ≠ break-in: pending traffic is lost, not
                    // diverted to the adversary.
                    inbox.clear();
                    self.pending[idx] = inbox;
                    continue;
                }
                let input = input_fn(id, round);
                slots.push(NodeSlot {
                    id,
                    node,
                    output,
                    rom,
                    inbox,
                    input,
                    outbox: std::mem::take(&mut self.outboxes[idx]),
                    alerts: 0,
                    panicked: false,
                    shard: self.shards[idx].take(),
                });
            }
            match pool.as_mut() {
                Some(pool) => {
                    pool.for_each_mut(&mut slots, |_, slot| exec_slot(seed, time, n, slot));
                }
                None => {
                    for slot in &mut slots {
                        exec_slot(seed, time, n, slot);
                    }
                }
            }
            // Merge in slot (= NodeId) order and recycle the buffers. This
            // is where multi-destination entries expand into per-destination
            // envelopes: the adversary boundary below must see (and may drop
            // or inject) individual links, but nothing before this point
            // needed more than the shared payload plus a destination list.
            self.sent_buf.clear();
            for mut slot in slots {
                let idx = slot.id.idx();
                if slot.panicked {
                    // The step panicked: record the node as crash-stopped
                    // (its partial round was already discarded in
                    // `exec_slot`). It rejoins only if the adversary
                    // restarts it, and its rounds are charged to the (s,t)
                    // budget from this round on.
                    self.crashed[idx] = true;
                    self.stats.panics += 1;
                    self.stats.crashes += 1;
                    self.stats.crashed_rounds[idx] += 1;
                    if tele_on {
                        self.cfg.telemetry.add("engine/panics", 1);
                        self.cfg.telemetry.emit_event("node_crash", |ev| {
                            ev.u64("round", round)
                                .u64("node", u64::from(slot.id.0))
                                .str("cause", "panic");
                        });
                    }
                }
                self.stats.alerts[idx] += slot.alerts;
                round_alerts += slot.alerts;
                if let Some(shard) = slot.shard.as_mut() {
                    self.cfg.telemetry.merge_shard(shard);
                }
                self.shards[idx] = slot.shard.take();
                for entry in &slot.outbox {
                    let fanout = entry.fanout() as u64;
                    self.stats.messages_sent += fanout;
                    self.stats.bytes_sent += entry.payload.len() as u64 * fanout;
                    self.sent_buf.extend(entry.envelopes());
                }
                slot.inbox.clear();
                self.pending[idx] = slot.inbox;
                slot.outbox.clear();
                self.outboxes[idx] = slot.outbox;
            }
        }
        self.pool = pool;

        // Delivery under the model's rules (rushing: adversary sees `sent`).
        let delivered = {
            let view = NetView {
                time,
                n,
                broken: &self.broken,
                crashed: &self.crashed,
                operational: self.tracker.operational(),
                last_delivered: &self.last_delivered,
                broken_inboxes: &broken_inboxes,
            };
            deliver(&self.sent_buf, &view)
        };
        self.stats.messages_delivered += delivered.len() as u64;

        // Adversary interference accounting. Computed unconditionally so the
        // new `SimStats` fields never depend on telemetry being on (the fast
        // path makes faithful rounds nearly free); mirrored into the
        // registry when it is.
        let (dropped, injected, modified) = delivery_diff(&self.sent_buf, &delivered);
        self.stats.messages_dropped += dropped;
        self.stats.messages_injected += injected;
        self.stats.messages_modified += modified;
        if tele_on {
            self.cfg.telemetry.add("adversary/dropped", dropped);
            self.cfg.telemetry.add("adversary/injected", injected);
            self.cfg.telemetry.add("adversary/modified", modified);
        }

        // Ground truth: reliability + operational set. Both are row-/node-
        // parallel; only worth the handshake at larger n. Crashed nodes are
        // merged into the impairment the ground truth sees: a silent node's
        // links would otherwise count as trivially reliable, and Definition-7
        // accounting must charge crashed rounds like broken ones.
        self.impaired_buf.clear();
        self.impaired_buf
            .extend(self.broken.iter().zip(&self.crashed).map(|(b, c)| *b || *c));
        let pooled_truth = n >= POOLED_GROUND_TRUTH_MIN_N;
        let reliability: PairMatrix = match self.pool.as_mut() {
            Some(pool) if pooled_truth => {
                link_reliability_pooled(n, &self.sent_buf, &delivered, &self.impaired_buf, pool)
            }
            _ => link_reliability(n, &self.sent_buf, &delivered, &self.impaired_buf),
        };
        self.tracker.on_round_pooled(
            &self.impaired_buf,
            &reliability,
            self.cfg.schedule.in_refresh(round),
            self.cfg.schedule.is_refresh_end(round),
            if pooled_truth {
                self.pool.as_mut()
            } else {
                None
            },
        );
        if tele_on && !self.cluster_tele_keys.is_empty() {
            if let GroundTruth::Clustered(ct) = &self.tracker {
                for (c, key) in self.cluster_tele_keys.iter().enumerate() {
                    let non_op = ct.cluster_size(c) - ct.cluster_operational_count(c);
                    self.cfg.telemetry.add(key, non_op as u64);
                }
            }
        }

        // "Compromised"/"recovered" output lines. In the UL model these track
        // loss of s-operational status (§2.2); in the AL model, break-ins
        // (and crash-stops, which equally halt the program).
        for id in NodeId::all(n) {
            let impaired = match self.model {
                Model::Al => self.impaired_buf[id.idx()],
                Model::Ul => !self.tracker.is_operational(id),
            };
            if impaired && !self.prev_impaired[id.idx()] {
                self.outputs[id.idx()].push((round, OutputEvent::Compromised));
            } else if !impaired && self.prev_impaired[id.idx()] {
                self.outputs[id.idx()].push((round, OutputEvent::Recovered));
            }
            if !self.tracker.is_operational(id) {
                self.stats.non_operational_rounds[id.idx()] += 1;
                self.unit_non_op[id.idx()] = true;
            }
            if self.impaired_buf[id.idx()] {
                self.unit_impaired[id.idx()] = true;
            }
            self.prev_impaired[id.idx()] = impaired;
            // Recovery latency: rounds from the start of a broken/crashed
            // spell until the node is released *and* s-operational again
            // (re-certified at a refresh end). Engine-thread registry write,
            // so the histogram is identical across worker counts.
            if self.impaired_buf[id.idx()] {
                if self.impaired_since[id.idx()].is_none() {
                    self.impaired_since[id.idx()] = Some(round);
                }
            } else if self.tracker.is_operational(id) {
                if let Some(start) = self.impaired_since[id.idx()].take() {
                    self.cfg
                        .telemetry
                        .observe_value("engine/recovery_rounds", round - start);
                }
            }
        }

        if let Some(t) = &mut self.transcript {
            t.push(RoundRecord {
                time,
                sent: self.sent_buf.clone(),
                delivered: delivered.clone(),
                broken: self.broken.clone(),
                crashed: self.crashed.clone(),
                operational: self.tracker.operational().to_vec(),
            });
        }

        // Queue deliveries for the next round.
        let delivered_count = delivered.len() as u64;
        for env in &delivered {
            self.pending[env.to.idx()].push(env.clone());
        }
        self.last_delivered = delivered;

        // Close the engine-side scope, merge its shard (adversary events land
        // before `round_end` in the trace), and emit the round footer.
        if let Some(prev) = adv_prev {
            let mut shard = telemetry::install(prev);
            if let Some(sh) = shard.as_mut() {
                self.cfg.telemetry.merge_shard(sh);
            }
            self.put_adv_shard(shard);
        }
        if tele_on {
            let wall_ns = round_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            self.cfg.telemetry.observe_ns("engine/round_ns", wall_ns);
            let broken_count = self.broken.iter().filter(|b| **b).count() as u64;
            let crashed_count = self.crashed.iter().filter(|c| **c).count() as u64;
            let sent_count = self.stats.messages_sent - sent_before;
            self.cfg.telemetry.emit_event("round_end", |ev| {
                ev.u64("round", round)
                    .u64("sent", sent_count)
                    .u64("delivered", delivered_count)
                    .u64("dropped", dropped)
                    .u64("injected", injected)
                    .u64("modified", modified)
                    .u64("alerts", round_alerts)
                    .u64("broken", broken_count)
                    .u64("crashed", crashed_count)
                    .u64("wall_ns", wall_ns);
            });
            // Unit boundary: every shard has merged at the barrier, so the
            // registry deltas are deterministic — close the unit's metrics
            // row (also at run end, for a final partial unit).
            if time.round_in_unit + 1 == self.cfg.schedule.unit_rounds
                || round + 1 == self.cfg.total_rounds
            {
                self.cfg.telemetry.unit_mark(time.unit);
            }
        }
        if time.round_in_unit + 1 == self.cfg.schedule.unit_rounds
            || round + 1 == self.cfg.total_rounds
        {
            self.close_unit_score(time.unit);
        }
    }

    /// Closes the Definition-7 scoreboard for a finished (or final partial)
    /// unit: distinct-node impairment counts, the per-cluster breakdown in
    /// hierarchy runs, and the matching telemetry counters.
    fn close_unit_score(&mut self, unit: u64) {
        let mut score = UnitScore {
            unit,
            impaired: self.unit_impaired.iter().filter(|b| **b).count() as u64,
            non_operational: self.unit_non_op.iter().filter(|b| **b).count() as u64,
            clusters: Vec::new(),
        };
        if let Some(clusters) = &self.cfg.clusters {
            score.clusters = clusters
                .iter()
                .map(|members| ClusterUnitScore {
                    size: members.len() as u64,
                    impaired: members
                        .iter()
                        .filter(|&&m| self.unit_impaired[(m - 1) as usize])
                        .count() as u64,
                    non_operational: members
                        .iter()
                        .filter(|&&m| self.unit_non_op[(m - 1) as usize])
                        .count() as u64,
                })
                .collect();
            if self.cfg.telemetry.is_on() {
                self.cfg.telemetry.add(
                    "engine/majority_compromised_cluster_units",
                    score.majority_compromised_clusters(),
                );
                if !score.within_two_level_budget() {
                    self.cfg.telemetry.add("engine/units_over_two_level_budget", 1);
                }
            }
        }
        if self.cfg.telemetry.is_on() {
            self.cfg.telemetry.add("engine/unit_impaired_nodes", score.impaired);
        }
        self.stats.unit_scores.push(score);
        self.unit_impaired.iter_mut().for_each(|b| *b = false);
        self.unit_non_op.iter_mut().for_each(|b| *b = false);
    }

    fn finish(mut self, adversary_output: Vec<String>) -> SimResult {
        let tele = self.cfg.telemetry.clone();
        self.phase_timer.finish(&tele, self.cfg.total_rounds);
        tele.emit_event("run_end", |ev| {
            ev.u64("rounds", self.cfg.total_rounds)
                .u64("sent", self.stats.messages_sent)
                .u64("delivered", self.stats.messages_delivered)
                .u64("dropped", self.stats.messages_dropped)
                .u64("injected", self.stats.messages_injected)
                .u64("modified", self.stats.messages_modified)
                .u64("alerts", self.stats.alerts.iter().sum::<u64>());
        });
        tele.flush();
        SimResult {
            outputs: self.outputs,
            adversary_output,
            stats: self.stats,
            final_operational: self.tracker.operational().to_vec(),
            roms: self.roms,
            transcript: self.transcript,
        }
    }
}

/// Runs a protocol in the **AL model** against an [`AlAdversary`].
pub fn run_al<P: Process + Send, A: AlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
) -> SimResult {
    run_al_with_inputs(cfg, make_node, adversary, |_, _| None)
}

/// Like [`run_al`], with per-round external inputs (`x_{i,w}` in §2.1).
pub fn run_al_with_inputs<P: Process + Send, A: AlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
    mut input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
) -> SimResult {
    let mut engine = Engine::new(cfg, Model::Al, make_node);
    engine.setup();
    for round in 0..engine.cfg.total_rounds {
        let time = TimeView::at(&engine.cfg.schedule, round);
        let plan = {
            // The plan callback runs before `Engine::round`, so it gets the
            // engine-side recording scope installed around it explicitly.
            let prev = telemetry::install(engine.take_adv_shard(round));
            let view = NetView {
                time,
                n: engine.cfg.n,
                broken: &engine.broken,
                crashed: &engine.crashed,
                operational: engine.tracker.operational(),
                last_delivered: &engine.last_delivered,
                broken_inboxes: &[],
            };
            let plan = adversary.plan(&view);
            engine.put_adv_shard(telemetry::install(prev));
            plan
        };
        let adv = std::cell::RefCell::new(&mut *adversary);
        engine.round(
            round,
            plan,
            &mut |id, state, tv| adv.borrow_mut().corrupt(id, state, tv),
            &mut |sent, view| {
                // AL semantics: all honest messages delivered faithfully; the
                // adversary may add messages in the name of broken nodes.
                let mut delivered = sent.to_vec();
                let extra = adv.borrow_mut().broken_sends(sent, view);
                delivered.extend(
                    extra
                        .into_iter()
                        .filter(|e| view.broken[e.from.idx()] && e.to != e.from),
                );
                delivered
            },
            &mut input_fn,
        );
    }
    let out = adversary.output();
    engine.finish(out)
}

/// Runs a protocol in the **UL model** against a [`UlAdversary`].
pub fn run_ul<P: Process + Send, A: UlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
) -> SimResult {
    run_ul_with_inputs(cfg, make_node, adversary, |_, _| None)
}

/// Like [`run_ul`], with per-round external inputs (`x_{i,w}` in §2.1).
pub fn run_ul_with_inputs<P: Process + Send, A: UlAdversary>(
    cfg: SimConfig,
    make_node: impl FnMut(NodeId) -> P,
    adversary: &mut A,
    mut input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
) -> SimResult {
    let mut engine = Engine::new(cfg, Model::Ul, make_node);
    engine.setup();
    for round in 0..engine.cfg.total_rounds {
        let time = TimeView::at(&engine.cfg.schedule, round);
        let plan = {
            // The plan callback runs before `Engine::round`, so it gets the
            // engine-side recording scope installed around it explicitly.
            let prev = telemetry::install(engine.take_adv_shard(round));
            let view = NetView {
                time,
                n: engine.cfg.n,
                broken: &engine.broken,
                crashed: &engine.crashed,
                operational: engine.tracker.operational(),
                last_delivered: &engine.last_delivered,
                broken_inboxes: &[],
            };
            let plan = adversary.plan(&view);
            engine.put_adv_shard(telemetry::install(prev));
            plan
        };
        let adv = std::cell::RefCell::new(&mut *adversary);
        engine.round(
            round,
            plan,
            &mut |id, state, tv| adv.borrow_mut().corrupt(id, state, tv),
            &mut |sent, view| adv.borrow_mut().deliver(sent, view),
            &mut input_fn,
        );
    }
    let out = adversary.output();
    engine.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{RoundCtx, SetupCtx};
    use crate::adversary::{FaithfulUl, PassiveAl};
    use std::any::Any;

    /// A node that pings every peer each round and counts pongs.
    struct Pinger {
        received: u64,
        rom_check: Option<Vec<u8>>,
    }

    impl Process for Pinger {
        fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
            if ctx.setup_round == 0 {
                ctx.rom.write("tag", vec![ctx.me.0 as u8]);
            }
        }

        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            self.received += ctx.inbox.len() as u64;
            self.rom_check = ctx.rom.read("tag").map(|v| v.to_vec());
            ctx.send_all(vec![0xAB]);
            if ctx.time.round == 0 {
                ctx.emit(OutputEvent::Custom("started".into()));
            }
        }

        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cfg(n: usize) -> SimConfig {
        let mut c = SimConfig::new(n, 1, Schedule::new(10, 2, 2));
        c.total_rounds = 10;
        c.setup_rounds = 1;
        c
    }

    #[test]
    fn faithful_ul_run_delivers_everything() {
        let result = run_ul(
            cfg(4),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        // 4 nodes × 3 peers × 10 rounds sent; all but the last round's are
        // delivered within the run.
        assert_eq!(result.stats.messages_sent, 120);
        assert_eq!(result.stats.messages_delivered, 120);
        assert!(result.final_operational.iter().all(|&b| b));
        // Everyone logged the start event.
        for id in NodeId::all(4) {
            assert!(result
                .events_of(id)
                .contains(&(0, OutputEvent::Custom("started".into()))));
        }
    }

    #[test]
    fn al_run_matches_ul_faithful() {
        let r1 = run_al(
            cfg(3),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut PassiveAl,
        );
        let r2 = run_ul(
            cfg(3),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        assert_eq!(r1.stats.messages_sent, r2.stats.messages_sent);
        assert_eq!(r1.outputs, r2.outputs);
    }

    #[test]
    fn rom_survives_into_rounds() {
        struct RomReader {
            seen: Option<Vec<u8>>,
        }
        impl Process for RomReader {
            fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
                ctx.rom.write("k", vec![42]);
            }
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                self.seen = ctx.rom.read("k").map(|v| v.to_vec());
                if ctx.time.round == 5 && self.seen == Some(vec![42]) {
                    ctx.emit(OutputEvent::Custom("rom-ok".into()));
                }
            }
            fn state_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let result = run_ul(cfg(2), |_| RomReader { seen: None }, &mut FaithfulUl);
        assert!(result
            .events_of(NodeId(1))
            .contains(&(5, OutputEvent::Custom("rom-ok".into()))));
    }

    /// Adversary that breaks node 1 for rounds 2..5 and wipes its state.
    struct Wiper;
    impl UlAdversary for Wiper {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                2 => BreakPlan::break_into([NodeId(1)]),
                5 => BreakPlan::leave([NodeId(1)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _node: NodeId, state: &mut dyn Any, _time: &TimeView) {
            if let Some(p) = state.downcast_mut::<Pinger>() {
                p.received = 0; // memory corruption
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }

    #[test]
    fn break_in_diverts_execution_and_corrupts_memory() {
        // Run across the unit-1 refresh phase so node 1 can rejoin (the UL
        // "recovered" line fires when it becomes s-operational again, which
        // only happens at a refresh-phase end — Definition 5.3).
        let mut c = cfg(3);
        c.total_rounds = 20;
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut Wiper,
        );
        // Node 1 was broken rounds 2,3,4 → did not send 2 msgs × 3 rounds.
        assert_eq!(result.stats.messages_sent, 3 * 2 * 20 - 6);
        assert_eq!(result.stats.broken_rounds[0], 3);
        // Compromised at break-in; recovered at the unit-1 refresh end.
        let evs: Vec<&OutputEvent> = result.outputs[0].iter().map(|(_, e)| e).collect();
        assert!(evs.contains(&&OutputEvent::Compromised));
        assert!(evs.contains(&&OutputEvent::Recovered));
        let recovered_round = result.outputs[0]
            .iter()
            .find(|(_, e)| *e == OutputEvent::Recovered)
            .map(|(r, _)| *r)
            .unwrap();
        assert_eq!(recovered_round, 13, "rejoin at end of unit-1 refresh");
    }

    /// Breaks a majority of cluster 0 (nodes 1,2 of [1,2,3]) for unit 0
    /// only, then stays quiet.
    struct ClusterBreaker;

    impl UlAdversary for ClusterBreaker {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                2 => BreakPlan::break_into([NodeId(1), NodeId(2)]),
                5 => BreakPlan::leave([NodeId(1), NodeId(2)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _node: NodeId, _state: &mut dyn Any, _time: &TimeView) {}
        fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }

    #[test]
    fn unit_scores_track_two_level_definition7_budget() {
        let mut c = cfg(9);
        c.total_rounds = 20; // two units of 10 rounds
        c.clusters = Some(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut ClusterBreaker,
        );
        let scores = &result.stats.unit_scores;
        assert_eq!(scores.len(), 2, "one score per unit");

        // Unit 0: two distinct break-ins, both inside cluster 0 — that
        // cluster's ⌊(3−1)/2⌋ = 1 threshold is exceeded, so it counts as
        // majority-compromised; with k=3 clusters the top-level PDS
        // tolerates 1, so the two-level budget still holds even though the
        // flat t=1 budget is blown.
        let u0 = &scores[0];
        assert_eq!(u0.unit, 0);
        assert_eq!(u0.impaired, 2);
        assert_eq!(u0.clusters.len(), 3);
        assert_eq!(u0.clusters[0].impaired, 2);
        assert!(u0.clusters[0].majority_compromised());
        assert_eq!(u0.clusters[1].impaired, 0);
        assert_eq!(u0.clusters[2].impaired, 0);
        assert_eq!(u0.majority_compromised_clusters(), 1);
        assert!(u0.within_two_level_budget());
        assert!(!u0.within_flat_budget(1));
        // The broken pair also lost cluster-local operational status.
        assert!(u0.clusters[0].non_operational >= 2);

        // Unit 1: the adversary is quiet, so no impairment accrues.
        let u1 = &scores[1];
        assert_eq!(u1.unit, 1);
        assert_eq!(u1.impaired, 0);
        assert_eq!(u1.majority_compromised_clusters(), 0);
        assert!(u1.within_two_level_budget());
        assert!(u1.within_flat_budget(0));
    }

    #[test]
    fn flat_unit_scores_stay_clean_on_faithful_runs() {
        let mut c = cfg(4);
        c.total_rounds = 25; // two full units plus a partial third
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        let scores = &result.stats.unit_scores;
        assert_eq!(scores.len(), 3, "partial final unit gets a score too");
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(s.unit, i as u64);
            assert_eq!(s.impaired, 0);
            assert_eq!(s.non_operational, 0);
            assert!(s.clusters.is_empty(), "flat run has no cluster rows");
            assert!(s.within_flat_budget(0));
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mk = || {
            run_ul(
                cfg(4),
                |_| Pinger {
                    received: 0,
                    rom_check: None,
                },
                &mut FaithfulUl,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats.messages_sent, b.stats.messages_sent);
    }

    #[test]
    fn delivery_diff_classifies_interference() {
        let payload: crate::message::Payload = vec![1u8, 2, 3].into();
        let env = |from: u32, to: u32, p: &crate::message::Payload| {
            Envelope::new(NodeId(from), NodeId(to), p.clone())
        };
        let other: crate::message::Payload = vec![9u8].into();

        // Faithful (shared Arcs, same order): all zero via the fast path.
        let sent = vec![env(1, 2, &payload), env(2, 3, &payload)];
        assert_eq!(delivery_diff(&sent, &sent.clone()), (0, 0, 0));
        // Reordering alone is still faithful, via the multiset slow path.
        let reordered = vec![sent[1].clone(), sent[0].clone()];
        assert_eq!(delivery_diff(&sent, &reordered), (0, 0, 0));
        // A pure drop.
        assert_eq!(delivery_diff(&sent, &sent[..1]), (1, 0, 0));
        // A pure injection (new link).
        let mut plus = sent.clone();
        plus.push(env(3, 1, &other));
        assert_eq!(delivery_diff(&sent, &plus), (0, 1, 0));
        // Same link, different payload: a modification, not drop+inject.
        let modified = vec![env(1, 2, &other), env(2, 3, &payload)];
        assert_eq!(delivery_diff(&sent, &modified), (0, 0, 1));
        // Mixed: drop 1→2, inject 4→1, modify 2→3.
        let mixed = vec![env(2, 3, &other), env(4, 1, &other)];
        assert_eq!(delivery_diff(&sent, &mixed), (1, 1, 1));
    }

    #[test]
    fn stats_count_drops_and_injections() {
        /// Drops every message to node 2 and injects one forgery per round.
        struct DropInject;
        impl UlAdversary for DropInject {
            fn plan(&mut self, _view: &NetView<'_>) -> BreakPlan {
                BreakPlan::none()
            }
            fn corrupt(&mut self, _n: NodeId, _s: &mut dyn Any, _t: &TimeView) {}
            fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
                let mut out: Vec<Envelope> = sent
                    .iter()
                    .filter(|e| e.to != NodeId(2))
                    .cloned()
                    .collect();
                out.push(Envelope::new(NodeId(3), NodeId(1), vec![0xEE]));
                out
            }
        }
        let result = run_ul(
            cfg(3),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut DropInject,
        );
        // Each round: 2 messages to node 2 dropped, 1 forgery injected.
        assert_eq!(result.stats.messages_dropped, 2 * 10);
        assert_eq!(result.stats.messages_injected, 10);
        assert_eq!(result.stats.messages_modified, 0);
    }

    #[test]
    fn telemetry_enabled_run_matches_disabled_and_traces() {
        use proauth_telemetry::{memory_contents, strip_wall_fields};
        let off = run_ul(
            cfg(4),
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        let mut c = cfg(4);
        let (tele, buf) = Telemetry::with_memory_sink();
        c.telemetry = tele.clone();
        let on = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        // Recording is one-way: the result is unchanged.
        assert_eq!(off.outputs, on.outputs);
        assert_eq!(off.stats, on.stats);
        // The trace has the run framing and a round_end per round.
        let text = strip_wall_fields(&memory_contents(&buf));
        assert!(text.starts_with("{\"ev\":\"run_start\",\"n\":4"));
        assert!(text.ends_with("{\"ev\":\"run_end\",\"rounds\":10,\"sent\":120,\"delivered\":120,\"dropped\":0,\"injected\":0,\"modified\":0,\"alerts\":0}\n"));
        assert_eq!(text.matches("\"ev\":\"round_end\"").count(), 10);
        // Per-unit counter rows closed at each unit boundary (10 rounds of a
        // 10-round unit → exactly one mark).
        assert_eq!(tele.units().len(), 1);
        assert_eq!(tele.counter("adversary/dropped"), 0);
    }

    #[test]
    fn transcript_recorded_when_requested() {
        let mut c = cfg(2);
        c.record_transcript = true;
        let result = run_ul(
            c,
            |_| Pinger {
                received: 0,
                rom_check: None,
            },
            &mut FaithfulUl,
        );
        let t = result.transcript.expect("transcript");
        assert_eq!(t.len(), 10);
        assert_eq!(t[3].time.round, 3);
        assert!(!t[0].sent.is_empty());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::process::{RoundCtx, SetupCtx};
    use crate::adversary::FaithfulUl;
    use std::any::Any;

    /// A compute-heavy node to make parallel execution meaningful.
    struct Worker;

    impl Process for Worker {
        fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            use rand::RngCore;
            // Derived randomness feeds the payload: any divergence between
            // parallel and sequential scheduling would change the bytes.
            let tag = (ctx.rng.next_u64() % 251) as u8;
            ctx.send_all(vec![tag]);
            if !ctx.inbox.is_empty() {
                ctx.emit(OutputEvent::Custom(format!(
                    "got {} msgs, first byte {}",
                    ctx.inbox.len(),
                    ctx.inbox[0].payload[0]
                )));
            }
        }
        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let mk_cfg = |parallel: bool| {
            let mut c = SimConfig::new(6, 2, Schedule::new(10, 2, 2));
            c.total_rounds = 25;
            c.setup_rounds = 1;
            c.seed = 99;
            c.parallel = parallel;
            c
        };
        let seq = run_ul(mk_cfg(false), |_| Worker, &mut FaithfulUl);
        let par = run_ul(mk_cfg(true), |_| Worker, &mut FaithfulUl);
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
        assert_eq!(seq.stats.bytes_sent, par.stats.bytes_sent);
        assert_eq!(seq.final_operational, par.final_operational);
    }
}
