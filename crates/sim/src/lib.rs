//! # proauth-sim
//!
//! The computational models of Canetti–Halevi–Herzberg (PODC '97), §2, as an
//! executable synchronous network simulator:
//!
//! * [`clock`] — time units and refreshment phases (Fig. 1);
//! * [`message`] — envelopes, node ids, output events (the "global output");
//! * [`process`] — the node programming interface, including ROM;
//! * [`adversary`] — the AL and UL mobile-adversary interfaces;
//! * [`chaos`] — deterministic fault injection: compiled crash/restart
//!   schedules, chaotic delivery, and the panic→crash test hook;
//! * [`reliability`] — link reliability (Def. 4) and `s`-operational
//!   tracking (Defs. 5–6) from ground truth;
//! * [`pool`] — the persistent worker pool behind the parallel round engine;
//! * [`runner`] — the AL/UL execution engines ([`runner::run_al`],
//!   [`runner::run_ul`]).
//!
//! Observability rides on `proauth-telemetry` (re-exported as [`telemetry`]):
//! set [`runner::SimConfig::telemetry`] (or `PROAUTH_TRACE=path`) and the
//! engine emits a deterministic JSONL flight-recorder trace plus a metrics
//! registry, with per-node shards merged in `NodeId` order so results and
//! traces stay bit-identical across worker-pool sizes.
//!
//! The simulator is fully deterministic given a seed: node randomness is
//! derived per (node, round) outside corruptible state, matching the paper's
//! `r_{i,w}` formalization.

pub mod adversary;
pub mod chaos;
pub mod clock;
pub mod driver;
pub mod message;
pub mod net;
pub mod pool;
pub mod process;
pub mod reliability;
pub mod report;
pub mod runner;
pub mod workload;

pub use proauth_telemetry as telemetry;

pub use adversary::{AlAdversary, BreakPlan, NetView, UlAdversary};
pub use chaos::{ChaosConfig, ChaosNet, FaultSchedule, PanicOn, ProcessFaultPlan};
pub use driver::{NodeDriver, ProcessDriver, StepReport};
pub use clock::{Phase, Schedule, TimeView};
pub use message::{Envelope, NodeId, OutputEvent, OutputLog, Payload};
pub use pool::WorkerPool;
pub use process::{Process, Rom, RoundCtx, SetupCtx};
pub use reliability::{OperationalRule, OperationalTracker, PairMatrix};
pub use proauth_telemetry::Telemetry;
pub use report::{render_metrics, unit_summaries, NodeUnitSummary, ThroughputSummary, UnitSummary};
pub use workload::{ClientBatch, ClientOp, Workload, WorkloadConfig};
pub use runner::{
    run_al, run_al_with_inputs, run_ul, run_ul_with_inputs, RoundRecord, SimConfig, SimResult,
    SimStats,
};
