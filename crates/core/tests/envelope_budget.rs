//! Envelope-budget regression tests: the refresh phase must stay within an
//! O(n² · fanout) per-node envelope budget now that PA step-3 evidence rides
//! `Blob::EvidenceBundle` (one DISPERSE send per destination per subject)
//! instead of one send per majority member — the Θ(n³) wall this repo's E11
//! experiment used to hit.
//!
//! The §6 relaxed mode routes every DISPERSE through the lowest-indexed
//! `fanout` nodes, so those hub nodes still carry super-quadratic relay
//! traffic (that is the relaxation's stated trade-off, not a regression).
//! The budget is therefore asserted two ways: the *mean* across all nodes,
//! and the *max* across non-hub nodes.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::disperse::DisperseMode;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::NodeId;
use proauth_sim::runner::{run_ul, RoundRecord, SimConfig};

const FANOUT: usize = 7;

/// Runs unit 0 plus the full unit-1 refresh (Part I + Part II) and returns
/// the transcript.
fn run_refresh(n: usize, t: usize, bundle: bool) -> Vec<RoundRecord> {
    let schedule = uls_schedule(8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    // Unit 0 (44 rounds) + unit-1 refresh Part I and II (36 rounds).
    cfg.total_rounds = schedule.unit_rounds + schedule.part1_rounds + schedule.part2_rounds;
    cfg.seed = 87;
    cfg.parallel = false;
    cfg.record_transcript = true;
    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            c.auth_mode = AuthMode::SessionMac;
            c.disperse = DisperseMode::Relaxed { fanout: FANOUT };
            c.bundle_evidence = bundle;
            UlsNode::new(c, id, HeartbeatApp::default())
        },
        &mut FaithfulUl,
    );
    // The refresh must actually succeed — a budget met by nodes falling
    // over would prove nothing.
    assert!(
        result.stats.alerts.iter().all(|&a| a == 0),
        "refresh failed (alerts: {:?})",
        result.stats.alerts
    );
    result.transcript.expect("transcript recorded")
}

/// Per-node envelopes sent during the unit-1 refresh (rounds 44..80).
fn refresh_sent_per_node(transcript: &[RoundRecord], n: usize) -> Vec<usize> {
    let unit_rounds = uls_schedule(8).unit_rounds;
    let mut per_node = vec![0usize; n];
    for rec in transcript {
        if rec.time.round >= unit_rounds {
            for env in &rec.sent {
                per_node[env.from.idx()] += 1;
            }
        }
    }
    per_node
}

/// Total envelopes sent in the evidence rounds of the unit-1 refresh: the
/// step-3 send round (offset 3) and the relays' forwarding round (offset 4).
fn evidence_round_sent(transcript: &[RoundRecord]) -> usize {
    let unit_rounds = uls_schedule(8).unit_rounds;
    transcript
        .iter()
        .filter(|rec| {
            rec.time.round == unit_rounds + 3 || rec.time.round == unit_rounds + 4
        })
        .map(|rec| rec.sent.len())
        .sum()
}

/// Asserts the O(n² · fanout) budget on a bundled-run transcript.
fn assert_budget(transcript: &[RoundRecord], n: usize) {
    let per_node = refresh_sent_per_node(transcript, n);
    let budget = 12 * n * n * (FANOUT + 1);
    let mean = per_node.iter().sum::<usize>() / n;
    println!("n={n} refresh envelopes: mean={mean} per_node={per_node:?}");
    assert!(
        mean <= budget,
        "mean refresh envelopes per node {mean} exceeds budget {budget} (n = {n})"
    );
    // Nodes above index fanout+1 never serve as §6 relay hubs; their cost
    // must fit the same bound individually.
    let non_hub_max = per_node
        .iter()
        .enumerate()
        .filter(|(idx, _)| NodeId::from_idx(*idx).0 > FANOUT as u32 + 1)
        .map(|(_, &c)| c)
        .max()
        .expect("non-hub nodes exist");
    assert!(
        non_hub_max <= budget,
        "max non-hub refresh envelopes {non_hub_max} exceeds budget {budget} (n = {n})"
    );
}

#[test]
fn refresh_envelopes_within_quadratic_budget_n13() {
    let bundled = run_refresh(13, 3, true);
    assert_budget(&bundled, 13);

    // Ablation: the pre-bundle encoding relays one Evidence blob per
    // majority member — the evidence rounds alone must shrink by at least
    // the PA-majority factor (≈ n − 1 under faithful delivery; assert a
    // conservative 5×).
    let legacy = run_refresh(13, 3, false);
    let bundled_ev = evidence_round_sent(&bundled);
    let legacy_ev = evidence_round_sent(&legacy);
    println!(
        "n=13 evidence-round envelopes: bundled={bundled_ev} legacy={legacy_ev} \
         ratio={:.1}",
        legacy_ev as f64 / bundled_ev as f64
    );
    assert!(
        legacy_ev >= 5 * bundled_ev,
        "expected >= 5x evidence reduction at n = 13 (bundled {bundled_ev}, legacy {legacy_ev})"
    );
}

#[test]
#[ignore = "minutes-long in debug builds; ci.sh runs it in release mode"]
fn refresh_envelopes_within_quadratic_budget_n32() {
    let bundled = run_refresh(32, 3, true);
    assert_budget(&bundled, 32);
}

/// The headline Θ(n³) → Θ(n²) claim at n = 32. The legacy run relays
/// ~n · |MAJ| evidence blobs per subject through the fan-out hubs and takes
/// minutes in debug builds, so this runs only when asked for
/// (`cargo test -- --ignored`, wired into `ci.sh`).
#[test]
#[ignore = "slow: runs the pre-bundle Θ(n³) encoding at n = 32"]
fn evidence_bundling_cuts_envelopes_tenfold_n32() {
    let bundled = run_refresh(32, 3, true);
    let legacy = run_refresh(32, 3, false);
    let bundled_ev = evidence_round_sent(&bundled);
    let legacy_ev = evidence_round_sent(&legacy);
    println!(
        "n=32 evidence-round envelopes: bundled={bundled_ev} legacy={legacy_ev} \
         ratio={:.1}",
        legacy_ev as f64 / bundled_ev as f64
    );
    assert!(
        legacy_ev >= 10 * bundled_ev,
        "expected >= 10x evidence reduction at n = 32 (bundled {bundled_ev}, legacy {legacy_ev})"
    );
}
