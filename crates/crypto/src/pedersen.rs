//! Pedersen commitments and Pedersen VSS.
//!
//! The paper's recommended efficient PDS instantiations (its refs \[20\],
//! \[23\] — Gennaro–Jarecki–Krawczyk–Rabin and Herzberg et al.) use
//! *Pedersen* verifiable secret sharing in the key-generation and refresh
//! dealings: commitments `C_k = g^{a_k}·h^{b_k}` are information-
//! theoretically hiding, so a dealing reveals nothing about the dealt
//! polynomial — unlike Feldman commitments, which expose `g^{a_k}`.
//!
//! The bundled PDS uses Feldman ([`crate::feldman`]) because the only value
//! Feldman leaks about the *joint* key is `g^{secret}` — the public key,
//! which lives in ROM anyway — but this module provides the Pedersen
//! substrate for instantiations that need dealing-secrecy (e.g. when the
//! dealt secrets are themselves sensitive), matching the paper's cited
//! constructions. The second generator `h` is derived by hashing into the
//! group so that nobody knows `log_g h`.

use crate::group::Group;
use crate::shamir::Polynomial;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

/// Derives the auxiliary generator `h` with unknown discrete log:
/// hash-to-scalar `u = H(domain ‖ g)` and set `h = g^u`... that would have a
/// *known* log; instead hash into `Z_p^*` and cook the result into the
/// order-`q` subgroup by raising to the cofactor.
pub fn derive_h(group: &Group) -> BigUint {
    let cofactor = group.p().sub(&BigUint::one()).divrem(group.q()).0;
    let mut counter = 0u64;
    loop {
        let digest = proauth_primitives::sha256::hash_parts(
            "proauth/pedersen/h",
            &[&group.g().to_bytes_be(), &counter.to_be_bytes()],
        );
        let candidate = BigUint::from_bytes_be(&digest).rem(group.p());
        let h = group.exp(&candidate, &cofactor);
        if !h.is_one() && !h.is_zero() && group.contains(&h) {
            return h;
        }
        counter += 1;
    }
}

/// A Pedersen commitment `g^v · h^r`.
pub fn commit(group: &Group, h: &BigUint, value: &BigUint, blinding: &BigUint) -> BigUint {
    group.mul(&group.exp_g(value), &group.exp(h, blinding))
}

/// Pedersen coefficient commitments for a pair of polynomials
/// `(f, f̂)`: `C_k = g^{a_k} · h^{b_k}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PedersenCommitments {
    c: Vec<BigUint>,
}

impl PedersenCommitments {
    /// Commits to the coefficient pairs of `(f, blind)`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomials have different degrees.
    pub fn from_polynomials(
        group: &Group,
        h: &BigUint,
        f: &Polynomial,
        blind: &Polynomial,
    ) -> Self {
        assert_eq!(f.degree(), blind.degree(), "degree mismatch");
        PedersenCommitments {
            c: f.coeffs()
                .iter()
                .zip(blind.coeffs())
                .map(|(a, b)| commit(group, h, a, b))
                .collect(),
        }
    }

    /// The committed polynomial degree.
    pub fn degree(&self) -> usize {
        self.c.len() - 1
    }

    /// The raw commitment elements.
    pub fn elements(&self) -> &[BigUint] {
        &self.c
    }

    /// Evaluates the commitment polynomial at `i`: `Π C_k^{i^k}`.
    pub fn eval_in_exponent(&self, group: &Group, i: u32) -> BigUint {
        let q = group.q();
        let i_scalar = BigUint::from_u64(u64::from(i)).rem(q);
        let mut acc = group.identity();
        let mut pow = BigUint::one();
        for ck in &self.c {
            acc = group.mul(&acc, &group.exp(ck, &pow));
            pow = pow.mul_mod(&i_scalar, q);
        }
        acc
    }

    /// Verifies a share pair: `g^{share} · h^{blind_share} = Π C_k^{i^k}`.
    pub fn verify_share(
        &self,
        group: &Group,
        h: &BigUint,
        i: u32,
        share: &BigUint,
        blind_share: &BigUint,
    ) -> bool {
        if share >= group.q() || blind_share >= group.q() {
            return false;
        }
        commit(group, h, share, blind_share) == self.eval_in_exponent(group, i)
    }
}

impl Encode for PedersenCommitments {
    fn encode(&self, w: &mut Writer) {
        self.c.encode(w);
    }
}

impl Decode for PedersenCommitments {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let c = Vec::<BigUint>::decode(r)?;
        if c.is_empty() {
            return Err(WireError::BadLength);
        }
        Ok(PedersenCommitments { c })
    }
}

/// A full Pedersen dealing: commitments plus per-node share pairs.
#[derive(Debug, Clone)]
pub struct PedersenDealing {
    /// Public commitments.
    pub commitments: PedersenCommitments,
    /// Per-node `(share, blinding-share)` pairs, 1-based via index−1.
    pub shares: Vec<(BigUint, BigUint)>,
}

impl PedersenDealing {
    /// Deals a degree-`threshold` Pedersen sharing of `secret` to `n` nodes.
    pub fn deal<R: rand::RngCore>(
        group: &Group,
        h: &BigUint,
        threshold: usize,
        n: usize,
        secret: BigUint,
        rng: &mut R,
    ) -> Self {
        let f = Polynomial::random_with_secret(group, threshold, secret, rng);
        let blind = Polynomial::random(group, threshold, rng);
        PedersenDealing {
            commitments: PedersenCommitments::from_polynomials(group, h, &f, &blind),
            shares: (1..=n as u32)
                .map(|i| (f.eval_at(i), blind.eval_at(i)))
                .collect(),
        }
    }

    /// Node `i`'s share pair (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn share_for(&self, i: u32) -> &(BigUint, BigUint) {
        &self.shares[(i - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use crate::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, BigUint, StdRng) {
        let group = Group::new(GroupId::Toy64);
        let h = derive_h(&group);
        (group, h, StdRng::seed_from_u64(303))
    }

    #[test]
    fn h_is_a_valid_independent_generator() {
        let (group, h, _) = setup();
        assert!(group.contains(&h));
        assert!(!h.is_one());
        assert_ne!(&h, group.g());
        // Deterministic.
        assert_eq!(h, derive_h(&group));
    }

    #[test]
    fn commitment_is_binding_on_both_components() {
        let (group, h, mut rng) = setup();
        let v = group.random_scalar(&mut rng);
        let r = group.random_scalar(&mut rng);
        let c = commit(&group, &h, &v, &r);
        assert_eq!(c, commit(&group, &h, &v, &r));
        let v2 = group.scalar_add(&v, &BigUint::one());
        assert_ne!(c, commit(&group, &h, &v2, &r));
        let r2 = group.scalar_add(&r, &BigUint::one());
        assert_ne!(c, commit(&group, &h, &v, &r2));
    }

    #[test]
    fn honest_dealing_verifies_everywhere() {
        let (group, h, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let d = PedersenDealing::deal(&group, &h, 2, 5, secret.clone(), &mut rng);
        for i in 1..=5u32 {
            let (s, b) = d.share_for(i);
            assert!(d.commitments.verify_share(&group, &h, i, s, b));
        }
        // Shares interpolate back to the secret.
        let pts: Vec<(u32, BigUint)> = (1..=3u32)
            .map(|i| (i, d.share_for(i).0.clone()))
            .collect();
        assert_eq!(shamir::interpolate_at_zero(&group, &pts), secret);
    }

    #[test]
    fn tampered_share_or_blinding_rejected() {
        let (group, h, mut rng) = setup();
        let d = PedersenDealing::deal(&group, &h, 2, 4, BigUint::from_u64(9), &mut rng);
        let (s, b) = d.share_for(2).clone();
        let bad_s = group.scalar_add(&s, &BigUint::one());
        assert!(!d.commitments.verify_share(&group, &h, 2, &bad_s, &b));
        let bad_b = group.scalar_add(&b, &BigUint::one());
        assert!(!d.commitments.verify_share(&group, &h, 2, &s, &bad_b));
        // Out-of-range values rejected.
        assert!(!d
            .commitments
            .verify_share(&group, &h, 2, &s.add(group.q()), &b));
    }

    #[test]
    fn dealings_hide_the_secret_commitment() {
        // Unlike Feldman, the constant-term commitment is NOT g^secret: the
        // blinding term masks it.
        let (group, h, mut rng) = setup();
        let secret = BigUint::from_u64(5);
        let d = PedersenDealing::deal(&group, &h, 2, 4, secret.clone(), &mut rng);
        assert_ne!(
            d.commitments.elements()[0],
            group.exp_g(&secret),
            "C_0 does not expose g^secret"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let (group, h, mut rng) = setup();
        let d = PedersenDealing::deal(&group, &h, 2, 3, BigUint::from_u64(1), &mut rng);
        let bytes = d.commitments.to_bytes();
        assert_eq!(
            PedersenCommitments::from_bytes(&bytes).unwrap(),
            d.commitments
        );
        assert!(PedersenCommitments::from_bytes(&[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn additive_homomorphism() {
        // Pedersen commitments multiply to commit to the sums — the property
        // refresh protocols exploit.
        let (group, h, mut rng) = setup();
        let (v1, r1) = (group.random_scalar(&mut rng), group.random_scalar(&mut rng));
        let (v2, r2) = (group.random_scalar(&mut rng), group.random_scalar(&mut rng));
        let lhs = group.mul(&commit(&group, &h, &v1, &r1), &commit(&group, &h, &v2, &r2));
        let rhs = commit(
            &group,
            &h,
            &group.scalar_add(&v1, &v2),
            &group.scalar_add(&r1, &r2),
        );
        assert_eq!(lhs, rhs);
    }
}
