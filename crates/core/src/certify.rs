//! CERTIFY and VER-CERT (Fig. 3), plus the per-unit local key bundle.
//!
//! Each node holds, per time unit `u`: a centralized signing/verification
//! key pair (`s_i^u`, `v_i^u`) and the PDS certificate `cert_i^u` over the
//! statement *"the public key of `N_i` in time unit `u` is `v_i^u`"*.
//!
//! CERTIFY signs `⟨m, i, j, u, w⟩` with the local key and attaches
//! `(v, cert)`; VER-CERT checks format (source, destination, unit, round),
//! the certificate against the ROM-resident global verification key, and
//! finally the message signature — exactly the three steps of Fig. 3.

use crate::wire::{CertifiedMsg, MacMsg};
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::{Signature, SigningKey, VerifyKey};
use proauth_pds::als::AlsPds;
use proauth_pds::msg::signing_payload;
use proauth_pds::statement::key_statement;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::hmac::{hmac_sha256, tags_equal};
use proauth_primitives::sha256;
use proauth_primitives::wire::Writer;
use proauth_sim::message::NodeId;
use proauth_telemetry as telemetry;

/// A node's local (centralized) keys for one time unit.
#[derive(Debug, Clone)]
pub struct LocalKeys {
    /// The time unit these keys belong to.
    pub unit: u64,
    /// The signing key `s_i^u`.
    pub signing: SigningKey,
    /// The certificate `cert_i^u`, once obtained.
    pub cert: Option<Signature>,
}

impl LocalKeys {
    /// Generates a fresh pair for `unit` (certificate pending).
    pub fn generate<R: rand::RngCore>(group: &Group, unit: u64, rng: &mut R) -> Self {
        LocalKeys {
            unit,
            signing: SigningKey::generate(group, rng),
            cert: None,
        }
    }

    /// The verification key bytes (`v_i^u`).
    pub fn vk_bytes(&self) -> Vec<u8> {
        self.signing.verify_key().to_bytes()
    }

    /// Whether the bundle is usable for CERTIFY (certificate present).
    pub fn is_certified(&self) -> bool {
        self.cert.is_some()
    }
}

/// Derives the pairwise session key of §1.3's shared-key mode:
/// `H(g^{x_i·x_j} ‖ min(v_i, v_j) ‖ max(v_i, v_j) ‖ u)` — a static
/// Diffie–Hellman over the certified per-unit keys, so both endpoints derive
/// it without extra messages and it dies with the unit's keys.
///
/// Returns `None` if `peer_vk` is not a valid group element.
pub fn session_key(
    group: &Group,
    my_signing: &SigningKey,
    peer_vk: &BigUint,
    unit: u64,
) -> Option<[u8; 32]> {
    if !group.contains(peer_vk) {
        return None;
    }
    let dh = group.exp(peer_vk, my_signing.secret_scalar());
    let my_vk = my_signing.verify_key().element().to_bytes_be();
    let peer_bytes = peer_vk.to_bytes_be();
    let (lo, hi) = if my_vk <= peer_bytes {
        (my_vk, peer_bytes)
    } else {
        (peer_bytes, my_vk)
    };
    Some(sha256::hash_parts(
        "proauth/session-key/v1",
        &[&dh.to_bytes_be(), &lo, &hi, &unit.to_be_bytes()],
    ))
}

/// MAC-mode CERTIFY: authenticates `⟨m, i, j, u, w⟩` with the session key
/// instead of a signature. The certificate still rides along for receivers
/// that have not yet pinned the sender's key.
///
/// Returns `None` if the keys have no certificate yet.
pub fn mac_certify(
    keys: &LocalKeys,
    key: &[u8; 32],
    m: &[u8],
    i: NodeId,
    j: NodeId,
    w: u64,
) -> Option<MacMsg> {
    let cert = keys.cert.clone()?;
    let tuple = message_tuple(m, i.0, j.0, keys.unit, w);
    Some(MacMsg {
        m: m.to_vec(),
        i: i.0,
        j: j.0,
        u: keys.unit,
        w,
        tag: hmac_sha256(key, &tuple),
        vk: keys.vk_bytes(),
        cert,
    })
}

/// MAC-mode VER-CERT, format-and-tag part: checks the field bindings and the
/// HMAC. Certificate validation (once per sender per unit) is the caller's
/// job via [`ver_mac_certificate`].
pub fn ver_mac(
    me: NodeId,
    from: NodeId,
    expected_unit: u64,
    expected_w: u64,
    msg: &MacMsg,
    key: &[u8; 32],
) -> bool {
    if msg.i != from.0 || msg.j != me.0 || msg.u != expected_unit || msg.w != expected_w {
        return false;
    }
    let tuple = message_tuple(&msg.m, msg.i, msg.j, msg.u, msg.w);
    tags_equal(&msg.tag, &hmac_sha256(key, &tuple))
}

/// Validates the certificate a [`MacMsg`] carries and returns the sender's
/// verification-key element for pinning.
pub fn ver_mac_certificate(
    group: &Group,
    from: NodeId,
    msg: &MacMsg,
    v_cert: &BigUint,
) -> Option<BigUint> {
    let statement = key_statement(from, msg.u, &msg.vk);
    if !AlsPds::verify(group, v_cert, &statement, msg.u, &msg.cert) {
        return None;
    }
    let vk = BigUint::from_bytes_be(&msg.vk);
    group.contains(&vk).then_some(vk)
}

/// The canonical bytes signed by the local key: `⟨m, i, j, u, w⟩`.
fn message_tuple(m: &[u8], i: u32, j: u32, u: u64, w: u64) -> Vec<u8> {
    let mut wr = Writer::new();
    wr.put_bytes(b"proauth/certify/tuple/v1");
    wr.put_bytes(m);
    wr.put_u32(i);
    wr.put_u32(j);
    wr.put_u64(u);
    wr.put_u64(w);
    wr.into_bytes()
}

/// CERTIFY (Fig. 3): produces the message `⟨m, i, j, u, w, σ, v, cert⟩`.
///
/// Returns `None` if the keys have no certificate yet (a certless node
/// cannot authenticate — it is expected to alert instead).
pub fn certify<R: rand::RngCore>(
    keys: &LocalKeys,
    m: &[u8],
    i: NodeId,
    j: NodeId,
    w: u64,
    rng: &mut R,
) -> Option<CertifiedMsg> {
    let cert = keys.cert.clone()?;
    let tuple = message_tuple(m, i.0, j.0, keys.unit, w);
    let sig = telemetry::timed("crypto/sign_ns", || keys.signing.sign(&tuple, rng));
    Some(CertifiedMsg {
        m: m.to_vec(),
        i: i.0,
        j: j.0,
        u: keys.unit,
        w,
        sig,
        vk: keys.vk_bytes(),
        cert,
    })
}

/// How strictly VER-CERT checks the destination field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestCheck {
    /// Fig. 3 as written: the destination must be me.
    Me(NodeId),
    /// PARTIAL-AGREEMENT step 4: relayed messages were addressed to the
    /// relayer; accept any in-range destination (the message still binds its
    /// original destination inside the signature, so it cannot be replayed
    /// *as if* addressed to me by the strict paths).
    AnyDestination,
}

/// VER-CERT (Fig. 3): verifies a certified message.
///
/// * `from` — the node the message claims to come from (`i`);
/// * `expected_unit` — the unit whose keys are in force (`auth_unit`);
/// * `expected_w` — the round the message must have been certified at
///   (two physical rounds before receipt under AUTH-SEND);
/// * `v_cert` — the PDS global verification key from ROM.
pub fn ver_cert(
    group: &Group,
    dest: DestCheck,
    from: NodeId,
    expected_unit: u64,
    expected_w: u64,
    msg: &CertifiedMsg,
    v_cert: &BigUint,
) -> bool {
    // Step 1: format.
    if !ver_cert_format(dest, from, expected_unit, expected_w, msg) {
        return false;
    }
    // Step 2: certificate.
    let statement = key_statement(from, msg.u, &msg.vk);
    if !AlsPds::verify(group, v_cert, &statement, msg.u, &msg.cert) {
        return false;
    }
    // Step 3: message signature.
    ver_cert_signature(group, msg)
}

/// VER-CERT steps 1 and 3 only (format + message signature), for callers
/// that have already validated the certificate (step 2) as part of a batch
/// under `v_cert` — see [`cert_payload`].
pub fn ver_cert_precertified(
    group: &Group,
    dest: DestCheck,
    from: NodeId,
    expected_unit: u64,
    expected_w: u64,
    msg: &CertifiedMsg,
) -> bool {
    ver_cert_format(dest, from, expected_unit, expected_w, msg) && ver_cert_signature(group, msg)
}

/// The bytes the PDS signed for a node's per-unit key certificate. Every
/// certificate in the system verifies under the one ROM-resident `v_cert`,
/// so a receiver holding many certified messages can check all their
/// certificates in one [`proauth_crypto::schnorr::batch_verify`] call.
pub fn cert_payload(from: NodeId, unit: u64, vk: &[u8]) -> Vec<u8> {
    signing_payload(&key_statement(from, unit, vk), unit)
}

/// VER-CERT step 1: field bindings.
fn ver_cert_format(
    dest: DestCheck,
    from: NodeId,
    expected_unit: u64,
    expected_w: u64,
    msg: &CertifiedMsg,
) -> bool {
    if msg.i != from.0 || msg.u != expected_unit || msg.w != expected_w {
        return false;
    }
    match dest {
        DestCheck::Me(me) => msg.j == me.0,
        DestCheck::AnyDestination => msg.j != 0,
    }
}

/// VER-CERT step 3: the message signature under the attached local key.
fn ver_cert_signature(group: &Group, msg: &CertifiedMsg) -> bool {
    let Some(vk) = VerifyKey::from_element(group, BigUint::from_bytes_be(&msg.vk)) else {
        return false;
    };
    let tuple = message_tuple(&msg.m, msg.i, msg.j, msg.u, msg.w);
    telemetry::timed("crypto/verify_ns", || vk.verify(&tuple, &msg.sig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_crypto::group::GroupId;
    use proauth_pds::msg::signing_payload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a "PDS" whose key is just a centralized Schnorr key — enough
    /// to mint valid certificates for tests.
    struct TestCa {
        group: Group,
        sk: SigningKey,
    }

    impl TestCa {
        fn new(seed: u64) -> Self {
            let group = Group::new(GroupId::Toy64);
            let mut rng = StdRng::seed_from_u64(seed);
            let sk = SigningKey::generate(&group, &mut rng);
            TestCa { group, sk }
        }

        fn v_cert(&self) -> BigUint {
            self.sk.verify_key().element().clone()
        }

        fn issue(&self, node: NodeId, unit: u64, vk: &[u8], rng: &mut StdRng) -> Signature {
            let st = key_statement(node, unit, vk);
            self.sk.sign(&signing_payload(&st, unit), rng)
        }
    }

    fn setup() -> (TestCa, LocalKeys, StdRng) {
        let ca = TestCa::new(11);
        let mut rng = StdRng::seed_from_u64(22);
        let mut keys = LocalKeys::generate(&ca.group, 3, &mut rng);
        keys.cert = Some(ca.issue(NodeId(1), 3, &keys.vk_bytes(), &mut rng));
        (ca, keys, rng)
    }

    #[test]
    fn certify_verify_roundtrip() {
        let (ca, keys, mut rng) = setup();
        let msg = certify(&keys, b"hello", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        assert!(ver_cert(
            &ca.group,
            DestCheck::Me(NodeId(2)),
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
    }

    #[test]
    fn wrong_destination_rejected() {
        let (ca, keys, mut rng) = setup();
        let msg = certify(&keys, b"m", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        assert!(!ver_cert(
            &ca.group,
            DestCheck::Me(NodeId(3)),
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
        // Relaxed destination check accepts it (it is still well-formed).
        assert!(ver_cert(
            &ca.group,
            DestCheck::AnyDestination,
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
    }

    #[test]
    fn wrong_source_unit_or_round_rejected() {
        let (ca, keys, mut rng) = setup();
        let msg = certify(&keys, b"m", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        let v = ca.v_cert();
        assert!(!ver_cert(&ca.group, DestCheck::Me(NodeId(2)), NodeId(9), 3, 40, &msg, &v));
        assert!(!ver_cert(&ca.group, DestCheck::Me(NodeId(2)), NodeId(1), 4, 40, &msg, &v));
        assert!(!ver_cert(&ca.group, DestCheck::Me(NodeId(2)), NodeId(1), 3, 41, &msg, &v),
            "replay to a different round rejected");
    }

    #[test]
    fn forged_certificate_rejected() {
        let (ca, keys, mut rng) = setup();
        let rogue_ca = TestCa::new(99);
        let mut forged_keys = keys.clone();
        forged_keys.cert =
            Some(rogue_ca.issue(NodeId(1), 3, &forged_keys.vk_bytes(), &mut rng));
        let msg = certify(&forged_keys, b"m", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        assert!(!ver_cert(
            &ca.group,
            DestCheck::Me(NodeId(2)),
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (ca, keys, mut rng) = setup();
        let mut msg = certify(&keys, b"m", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        msg.m = b"tampered".to_vec();
        assert!(!ver_cert(
            &ca.group,
            DestCheck::Me(NodeId(2)),
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
    }

    #[test]
    fn stolen_cert_with_wrong_key_rejected() {
        // An adversary pairs node 1's valid certificate with its own local
        // key: the certificate does not match the attached vk.
        let (ca, keys, mut rng) = setup();
        let mut rogue = LocalKeys::generate(&ca.group, 3, &mut rng);
        rogue.cert = keys.cert.clone(); // steal node 1's cert
        let msg = certify(&rogue, b"m", NodeId(1), NodeId(2), 40, &mut rng).unwrap();
        assert!(!ver_cert(
            &ca.group,
            DestCheck::Me(NodeId(2)),
            NodeId(1),
            3,
            40,
            &msg,
            &ca.v_cert()
        ));
    }

    #[test]
    fn session_key_is_symmetric() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(77);
        let a = LocalKeys::generate(&group, 4, &mut rng);
        let b = LocalKeys::generate(&group, 4, &mut rng);
        let k_ab = session_key(&group, &a.signing, b.signing.verify_key().element(), 4).unwrap();
        let k_ba = session_key(&group, &b.signing, a.signing.verify_key().element(), 4).unwrap();
        assert_eq!(k_ab, k_ba, "both endpoints derive the same key");
        // Unit separation: a different unit gives a different key.
        let k_ab5 = session_key(&group, &a.signing, b.signing.verify_key().element(), 5).unwrap();
        assert_ne!(k_ab, k_ab5);
        // Invalid peer key rejected.
        assert!(session_key(&group, &a.signing, &BigUint::zero(), 4).is_none());
    }

    #[test]
    fn mac_certify_verify_roundtrip_and_binding() {
        let (ca, keys, mut rng) = setup();
        let peer = LocalKeys::generate(&ca.group, 3, &mut rng);
        let key =
            session_key(&ca.group, &keys.signing, peer.signing.verify_key().element(), 3).unwrap();
        let msg = mac_certify(&keys, &key, b"payload", NodeId(1), NodeId(2), 40).unwrap();
        assert!(ver_mac(NodeId(2), NodeId(1), 3, 40, &msg, &key));
        // Wrong key, destination, round, unit, or payload all fail.
        assert!(!ver_mac(NodeId(2), NodeId(1), 3, 40, &msg, &[0u8; 32]));
        assert!(!ver_mac(NodeId(3), NodeId(1), 3, 40, &msg, &key));
        assert!(!ver_mac(NodeId(2), NodeId(1), 3, 41, &msg, &key));
        assert!(!ver_mac(NodeId(2), NodeId(1), 4, 40, &msg, &key));
        let mut tampered = msg.clone();
        tampered.m = b"other".to_vec();
        assert!(!ver_mac(NodeId(2), NodeId(1), 3, 40, &tampered, &key));
        // Certificate validation pins the right key element.
        let pinned = ver_mac_certificate(&ca.group, NodeId(1), &msg, &ca.v_cert()).unwrap();
        assert_eq!(&pinned, keys.signing.verify_key().element());
        // A rogue certificate fails.
        let rogue = TestCa::new(55);
        let mut bad = msg.clone();
        bad.cert = rogue.issue(NodeId(1), 3, &bad.vk, &mut rng);
        assert!(ver_mac_certificate(&ca.group, NodeId(1), &bad, &ca.v_cert()).is_none());
    }

    #[test]
    fn certless_keys_cannot_certify() {
        let (_, _, mut rng) = setup();
        let group = Group::new(GroupId::Toy64);
        let keys = LocalKeys::generate(&group, 1, &mut rng);
        assert!(certify(&keys, b"m", NodeId(1), NodeId(2), 0, &mut rng).is_none());
        assert!(!keys.is_certified());
    }
}
