//! Fuzz/property tests for the PDS wire messages: decoding must never panic,
//! valid messages roundtrip, and session ids / signing payloads are
//! injective.

use proauth_pds::msg::{sid_for, signing_payload, AlsMsg};
use proauth_primitives::wire::Decode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = AlsMsg::from_bytes(&bytes);
    }

    #[test]
    fn sid_injective_on_msg_and_unit(
        m1 in proptest::collection::vec(any::<u8>(), 0..30),
        m2 in proptest::collection::vec(any::<u8>(), 0..30),
        u1 in any::<u64>(),
        u2 in any::<u64>(),
    ) {
        if (m1.clone(), u1) != (m2.clone(), u2) {
            prop_assert_ne!(sid_for(&m1, u1), sid_for(&m2, u2));
        } else {
            prop_assert_eq!(sid_for(&m1, u1), sid_for(&m2, u2));
        }
    }

    #[test]
    fn signing_payload_injective(
        m1 in proptest::collection::vec(any::<u8>(), 0..30),
        m2 in proptest::collection::vec(any::<u8>(), 0..30),
        u1 in any::<u64>(),
        u2 in any::<u64>(),
    ) {
        if (m1.clone(), u1) != (m2.clone(), u2) {
            prop_assert_ne!(signing_payload(&m1, u1), signing_payload(&m2, u2));
        }
    }

    #[test]
    fn truncated_valid_messages_rejected(
        unit in any::<u64>(),
        cut in 1usize..8,
    ) {
        use proauth_primitives::wire::Encode;
        let msg = AlsMsg::RecoveryNeed { unit };
        let bytes = msg.to_bytes();
        if cut < bytes.len() {
            prop_assert!(AlsMsg::from_bytes(&bytes[..bytes.len() - cut]).is_err());
        }
    }
}
