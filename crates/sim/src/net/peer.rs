//! Socket transport: address plans, listeners, and framed non-blocking
//! connections over TCP or Unix-domain sockets.

use super::frame::{encode_frame, FrameDecoder};
use super::msg::NetMsg;
use proauth_primitives::wire::{Decode, Encode};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where every process of a deployment listens, derived from one base
/// address so the CLI can describe a whole topology with a single flag.
///
/// * `tcp:HOST:BASE` — node `i` listens on `BASE + i`, the proxy on `BASE`,
///   the collector on `BASE - 1`.
/// * `unix:DIR` — node `i` listens on `DIR/node-i.sock`, the proxy on
///   `DIR/proxy.sock`, the collector on `DIR/client.sock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrPlan {
    /// TCP on `host`, ports `base ± offset`.
    Tcp {
        /// Host or IP to bind/dial.
        host: String,
        /// Base port (the proxy's).
        base: u16,
    },
    /// Unix-domain sockets inside a directory.
    Unix {
        /// Directory holding the sockets.
        dir: PathBuf,
    },
}

/// One concrete endpoint of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl AddrPlan {
    /// Parses `tcp:HOST:PORT` or `unix:DIR`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            let (host, port) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("bad tcp address '{rest}' (want HOST:PORT)"))?;
            let base: u16 = port
                .parse()
                .map_err(|_| format!("bad port in '{rest}'"))?;
            Ok(AddrPlan::Tcp {
                host: host.to_owned(),
                base,
            })
        } else if let Some(dir) = s.strip_prefix("unix:") {
            Ok(AddrPlan::Unix {
                dir: PathBuf::from(dir),
            })
        } else {
            Err(format!("bad net address '{s}' (want tcp:HOST:PORT or unix:DIR)"))
        }
    }

    /// Node `id`'s listen endpoint (1-based id).
    pub fn node(&self, id: u32) -> Endpoint {
        match self {
            AddrPlan::Tcp { host, base } => Endpoint::Tcp(format!("{host}:{}", base + id as u16)),
            AddrPlan::Unix { dir } => Endpoint::Unix(dir.join(format!("node-{id}.sock"))),
        }
    }

    /// The chaos proxy's listen endpoint.
    pub fn proxy(&self) -> Endpoint {
        match self {
            AddrPlan::Tcp { host, base } => Endpoint::Tcp(format!("{host}:{base}")),
            AddrPlan::Unix { dir } => Endpoint::Unix(dir.join("proxy.sock")),
        }
    }

    /// The collector's listen endpoint.
    pub fn collector(&self) -> Endpoint {
        match self {
            AddrPlan::Tcp { host, base } => Endpoint::Tcp(format!("{host}:{}", base - 1)),
            AddrPlan::Unix { dir } => Endpoint::Unix(dir.join("client.sock")),
        }
    }

    /// The collector's live **status** endpoint (Prometheus exposition /
    /// JSON snapshot / scoreboard over a one-request-per-connection text
    /// protocol — not [`super::msg::NetMsg`]-framed).
    pub fn status(&self) -> Endpoint {
        match self {
            AddrPlan::Tcp { host, base } => Endpoint::Tcp(format!("{host}:{}", base - 2)),
            AddrPlan::Unix { dir } => Endpoint::Unix(dir.join("status.sock")),
        }
    }
}

/// A listening socket of either family.
pub enum NetListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl NetListener {
    /// Binds `ep`, replacing a stale Unix socket file if present.
    pub fn bind(ep: &Endpoint) -> io::Result<Self> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Ok(NetListener::Tcp(l))
            }
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(NetListener::Unix(l))
            }
        }
    }

    /// Accepts one pending connection, if any (non-blocking).
    pub fn accept(&self) -> io::Result<Option<NetStream>> {
        let res = match self {
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetStream::from_tcp(s)),
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetStream::from_unix(s)),
        };
        match res {
            Ok(stream) => Ok(Some(stream?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The raw descriptor, for the poll set.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            NetListener::Tcp(l) => l.as_raw_fd(),
            NetListener::Unix(l) => l.as_raw_fd(),
        }
    }
}

/// A connected socket of either family, non-blocking.
pub enum NetStream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl NetStream {
    fn from_tcp(s: TcpStream) -> io::Result<Self> {
        s.set_nonblocking(true)?;
        // Round barriers are latency-bound: never batch small frames.
        s.set_nodelay(true)?;
        Ok(NetStream::Tcp(s))
    }

    fn from_unix(s: UnixStream) -> io::Result<Self> {
        s.set_nonblocking(true)?;
        Ok(NetStream::Unix(s))
    }

    /// Dials `ep`, retrying until `deadline` (peers start in arbitrary
    /// order, so the first dials race the peers' binds).
    pub fn dial(ep: &Endpoint, deadline: Instant) -> io::Result<Self> {
        loop {
            let attempt = match ep {
                Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).and_then(Self::from_tcp),
                Endpoint::Unix(path) => UnixStream::connect(path).and_then(Self::from_unix),
            };
            match attempt {
                Ok(s) => return Ok(s),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("dialing {ep} timed out: {e}"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// The raw descriptor, for the poll set.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            NetStream::Tcp(s) => s.as_raw_fd(),
            NetStream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// A framed, non-blocking connection: encodes [`NetMsg`]s into an outgoing
/// queue flushed on writability, decodes frames from incoming chunks.
pub struct Conn {
    stream: NetStream,
    decoder: FrameDecoder,
    /// Outgoing bytes not yet accepted by the kernel.
    outq: Vec<u8>,
    /// Cursor into `outq`.
    out_pos: usize,
    /// Peer closed (read side saw EOF or an unrecoverable error).
    pub closed: bool,
}

impl Conn {
    /// Wraps a connected stream.
    pub fn new(stream: NetStream) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            outq: Vec::new(),
            out_pos: 0,
            closed: false,
        }
    }

    /// The raw descriptor, for the poll set.
    pub fn raw_fd(&self) -> RawFd {
        self.stream.raw_fd()
    }

    /// Whether bytes are queued and unflushed (poll for writability).
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.outq.len()
    }

    /// Queues one message and attempts an opportunistic flush.
    pub fn send(&mut self, msg: &NetMsg) {
        if self.closed {
            return;
        }
        encode_frame(&mut self.outq, &msg.to_bytes());
        let _ = self.flush();
    }

    /// Chaos tool: queues only the first half of `msg`'s encoded frame and
    /// flushes, leaving the receiver's decoder waiting on a truncated frame.
    /// Dropping the connection right after models a socket reset mid-frame
    /// (the reconnect path must recover with a fresh decoder on both sides).
    pub fn send_partial(&mut self, msg: &NetMsg) {
        if self.closed {
            return;
        }
        let mut framed = Vec::new();
        encode_frame(&mut framed, &msg.to_bytes());
        framed.truncate(framed.len() / 2);
        self.outq.extend_from_slice(&framed);
        let _ = self.flush();
    }

    /// Writes queued bytes until the kernel would block or the queue drains.
    ///
    /// # Errors
    ///
    /// A broken pipe marks the connection closed and is *not* reported as an
    /// error — a departed peer is a normal condition the round loop already
    /// handles via the mark/deadline logic.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.outq.len() {
            match self.stream.write(&self.outq[self.out_pos..]) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(k) => self.out_pos += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.out_pos == self.outq.len() {
            self.outq.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            self.outq.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Blocks (via short sleeps) until the outgoing queue drains or the
    /// timeout expires; used for the final report/bye flush at shutdown.
    pub fn flush_blocking(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.wants_write() && !self.closed && Instant::now() < deadline {
            let _ = super::poll::poll(&[(self.raw_fd(), true)], Some(20));
            let _ = self.flush();
        }
    }

    /// Reads all available bytes and decodes complete frames into messages.
    ///
    /// Malformed frames or messages mark the connection closed (the stream
    /// cannot be resynchronized); well-formed traffic is returned in order.
    pub fn recv(&mut self) -> Vec<NetMsg> {
        let mut msgs = Vec::new();
        if self.closed {
            return msgs;
        }
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(k) => self.decoder.push(&chunk[..k]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => match NetMsg::from_bytes(&frame) {
                    Ok(msg) => msgs.push(msg),
                    Err(_) => {
                        self.closed = true;
                        break;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        msgs
    }
}

/// Bounded store-and-forward queue for frames addressed to a peer whose
/// connection is currently down.
///
/// The peer table holds a crashed node's **slot** across the disconnect:
/// instead of silently dropping traffic at a dead [`Conn`], the sender parks
/// it here and flushes the backlog into the replacement connection when the
/// restarted peer re-handshakes. The cap bounds memory during long outages
/// (drop-oldest — matching the engine's crash semantics, where traffic
/// pending toward a crashed node is discarded); `dropped` records how much
/// the outage cost.
#[derive(Default)]
pub struct PendingQueue {
    q: std::collections::VecDeque<NetMsg>,
    cap: usize,
    /// Frames dropped at the cap (oldest-first).
    pub dropped: u64,
}

impl PendingQueue {
    /// An empty queue holding at most `cap` frames.
    pub fn new(cap: usize) -> Self {
        PendingQueue {
            q: std::collections::VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// Parks one frame, evicting the oldest beyond the cap.
    pub fn push(&mut self, msg: NetMsg) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        while self.q.len() >= self.cap {
            self.q.pop_front();
            self.dropped += 1;
        }
        self.q.push_back(msg);
    }

    /// Flushes the backlog into a (fresh) connection, FIFO.
    pub fn drain_into(&mut self, conn: &mut Conn) {
        for msg in self.q.drain(..) {
            conn.send(&msg);
        }
    }

    /// Frames currently parked.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Discards the backlog (peer departed for good).
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_plan_parses_and_derives() {
        let tcp = AddrPlan::parse("tcp:127.0.0.1:9100").unwrap();
        assert_eq!(tcp.node(3), Endpoint::Tcp("127.0.0.1:9103".into()));
        assert_eq!(tcp.proxy(), Endpoint::Tcp("127.0.0.1:9100".into()));
        assert_eq!(tcp.collector(), Endpoint::Tcp("127.0.0.1:9099".into()));
        let unix = AddrPlan::parse("unix:/tmp/pa").unwrap();
        assert_eq!(
            unix.node(1),
            Endpoint::Unix(PathBuf::from("/tmp/pa/node-1.sock"))
        );
        assert!(AddrPlan::parse("udp:1.2.3.4").is_err());
        assert!(AddrPlan::parse("tcp:noport").is_err());
    }

    #[test]
    fn conn_roundtrip_over_unix_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut tx = Conn::new(NetStream::Unix(a));
        let mut rx = Conn::new(NetStream::Unix(b));
        let msg = NetMsg::Round {
            round: 5,
            seq: 2,
            from: crate::message::NodeId(1),
            to: crate::message::NodeId(2),
            payload: vec![0xAB; 100],
        };
        tx.send(&msg);
        tx.flush_blocking(Duration::from_secs(1));
        // Wait for readability, then receive.
        super::super::poll::poll(&[(rx.raw_fd(), false)], Some(1000)).unwrap();
        let got = rx.recv();
        assert_eq!(got, vec![msg]);
        assert!(!rx.closed);
    }

    #[test]
    fn pending_queue_is_fifo_and_drop_oldest() {
        let mut pq = PendingQueue::new(3);
        for round in 0..5u64 {
            pq.push(NetMsg::RoundMark {
                round,
                from: crate::message::NodeId(1),
            });
        }
        assert_eq!(pq.len(), 3);
        assert_eq!(pq.dropped, 2);
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut tx = Conn::new(NetStream::Unix(a));
        let mut rx = Conn::new(NetStream::Unix(b));
        pq.drain_into(&mut tx);
        assert!(pq.is_empty());
        tx.flush_blocking(Duration::from_secs(1));
        super::super::poll::poll(&[(rx.raw_fd(), false)], Some(1000)).unwrap();
        let rounds: Vec<u64> = rx
            .recv()
            .into_iter()
            .map(|m| match m {
                NetMsg::RoundMark { round, .. } => round,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Oldest (rounds 0, 1) evicted; survivors in send order.
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn send_partial_leaves_receiver_waiting_then_fresh_conn_resyncs() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut tx = Conn::new(NetStream::Unix(a));
        let mut rx = Conn::new(NetStream::Unix(b));
        tx.send_partial(&NetMsg::Round {
            round: 9,
            seq: 0,
            from: crate::message::NodeId(1),
            to: crate::message::NodeId(2),
            payload: vec![0x55; 300],
        });
        tx.flush_blocking(Duration::from_secs(1));
        super::super::poll::poll(&[(rx.raw_fd(), false)], Some(1000)).unwrap();
        // The truncated frame never decodes; the conn stays open, waiting.
        assert!(rx.recv().is_empty());
        assert!(!rx.closed);
        drop(tx); // the reset: sender goes away mid-frame
        super::super::poll::poll(&[(rx.raw_fd(), false)], Some(1000)).unwrap();
        assert!(rx.recv().is_empty());
        assert!(rx.closed);
        // A fresh connection pair (new decoders both sides) carries traffic
        // again — the redial path after a reset.
        let (a2, b2) = UnixStream::pair().unwrap();
        a2.set_nonblocking(true).unwrap();
        b2.set_nonblocking(true).unwrap();
        let mut tx2 = Conn::new(NetStream::Unix(a2));
        let mut rx2 = Conn::new(NetStream::Unix(b2));
        let hello = NetMsg::Hello { node: 1, run_id: 7 };
        tx2.send(&hello);
        tx2.flush_blocking(Duration::from_secs(1));
        super::super::poll::poll(&[(rx2.raw_fd(), false)], Some(1000)).unwrap();
        assert_eq!(rx2.recv(), vec![hello]);
    }
}
