//! Canonical certificate statements.
//!
//! The paper's certificates read *"it is certified that the personal
//! verification key of `N_i` for time unit `u` is `v`"* (§1.3). We encode the
//! statement canonically (domain tag + fixed field order) so that signing and
//! verifying agree byte-for-byte and no two distinct statements collide.

use proauth_primitives::wire::Writer;
use proauth_sim::message::NodeId;

const DOMAIN: &[u8] = b"proauth/statement/key-cert/v1";

/// Encodes "the public key of `node` in time unit `unit` is `key`".
pub fn key_statement(node: NodeId, unit: u64, key: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(DOMAIN);
    w.put_u32(node.0);
    w.put_u64(unit);
    w.put_bytes(key);
    w.into_bytes()
}

/// Parses a key statement back into `(node, unit, key)`.
///
/// Returns `None` if `bytes` is not a well-formed key statement.
pub fn parse_key_statement(bytes: &[u8]) -> Option<(NodeId, u64, Vec<u8>)> {
    use proauth_primitives::wire::Reader;
    let mut r = Reader::new(bytes);
    let domain = r.get_bytes().ok()?;
    if domain != DOMAIN {
        return None;
    }
    let node = r.get_u32().ok()?;
    let unit = r.get_u64().ok()?;
    let key = r.get_bytes().ok()?;
    if r.remaining() != 0 || node == 0 {
        return None;
    }
    Some((NodeId(node), unit, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = key_statement(NodeId(3), 7, b"pubkeybytes");
        let (node, unit, key) = parse_key_statement(&s).unwrap();
        assert_eq!(node, NodeId(3));
        assert_eq!(unit, 7);
        assert_eq!(key, b"pubkeybytes");
    }

    #[test]
    fn distinct_statements_differ() {
        assert_ne!(
            key_statement(NodeId(1), 2, b"k"),
            key_statement(NodeId(2), 1, b"k")
        );
        assert_ne!(
            key_statement(NodeId(1), 2, b"k"),
            key_statement(NodeId(1), 2, b"K")
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_key_statement(b"junk").is_none());
        assert!(parse_key_statement(&[]).is_none());
        // Wrong domain.
        let mut w = proauth_primitives::wire::Writer::new();
        w.put_bytes(b"other/domain");
        w.put_u32(1);
        w.put_u64(1);
        w.put_bytes(b"k");
        assert!(parse_key_statement(&w.into_bytes()).is_none());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut s = key_statement(NodeId(3), 7, b"x");
        s.push(0);
        assert!(parse_key_statement(&s).is_none());
    }
}
