//! One distributed-signing session (`ASign`) as a pure state machine.
//!
//! Timeline in logical rounds (session created at tick `T` when the node is
//! asked to sign):
//!
//! | tick  | action |
//! |-------|--------|
//! | T     | broadcast `SignInit` with a fresh nonce commitment |
//! | T+1   | fix the signer set `S` from received inits; the lowest `t+1` become *active*; active signers broadcast attempt-0 partials |
//! | T+2   | verify partials; all good → combine, broadcast `SignDone`; else exclude cheaters/missing, active signers of attempt 1 broadcast fresh `SignRetryNonce`s |
//! | T+3   | attempt-1 partials |
//! | T+4   | combine or fail |
//!
//! Robustness: every partial is publicly verifiable against the signer's
//! share key and nonce commitment, so cheaters are identified exactly and a
//! retry (with *fresh* nonces — reusing a nonce across attempts would leak
//! the share) excludes them. One retry suffices against `t` cheaters when
//! `|S| ≥ t+1` honest signers participate, because verification failures
//! only ever exclude cheaters.
//!
//! Drivers must ask all intended signers at the same logical tick (the ideal
//! process of §3.1 likewise requires sign requests to fall in one time unit).

use crate::msg::{signing_payload, AlsMsg, Sid};
use proauth_crypto::dkg::KeyShare;
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::{Signature, VerifyKey};
use proauth_crypto::thresh::{self, Nonce};
use proauth_primitives::bigint::BigUint;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum signing attempts (initial + one retry).
const MAX_ATTEMPTS: u32 = 2;

/// Session progress.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Waiting for the signer set to materialize (tick T → T+1).
    AwaitInits,
    /// Waiting for partials of `attempt`.
    AwaitPartials {
        attempt: u32,
        active: Vec<u32>,
        nonces: BTreeMap<u32, BigUint>,
    },
    /// Waiting for fresh nonces of `attempt`.
    AwaitRetryNonces { attempt: u32, active: Vec<u32> },
    /// Finished with a signature.
    Done,
    /// Gave up.
    Failed,
}

/// A signing session for one `(msg, unit)` pair.
#[derive(Debug, Clone)]
pub struct SignSession {
    /// Session id.
    pub sid: Sid,
    /// The message being signed.
    pub msg: Vec<u8>,
    /// The time unit of the request.
    pub unit: u64,
    me: u32,
    t: usize,
    state: State,
    /// Nonce commitments from `SignInit`s (the signer set `S`).
    inits: BTreeMap<u32, BigUint>,
    /// Partials of the current attempt.
    partials: BTreeMap<u32, BigUint>,
    /// Fresh nonces for the retry attempt.
    retry_nonces: BTreeMap<u32, BigUint>,
    /// Signers excluded for cheating or missing messages.
    excluded: BTreeSet<u32>,
    /// My nonce for the current attempt.
    my_nonce: Option<Nonce>,
    /// The completed signature, if any.
    result: Option<Signature>,
    /// Logical ticks since creation (maintained by the driver via
    /// [`SignSession::bump_age`]).
    age: u32,
}

impl SignSession {
    /// Starts a session at the node that was asked to sign. Returns the
    /// session plus the `SignInit` broadcast (`None` if the node holds no
    /// share and thus only listens for the result).
    #[allow(clippy::too_many_arguments)]
    pub fn start<R: rand::RngCore>(
        group: &Group,
        me: u32,
        t: usize,
        sid: Sid,
        msg: Vec<u8>,
        unit: u64,
        has_share: bool,
        rng: &mut R,
    ) -> (Self, Option<AlsMsg>) {
        let mut session = SignSession {
            sid,
            msg,
            unit,
            me,
            t,
            state: State::AwaitInits,
            inits: BTreeMap::new(),
            partials: BTreeMap::new(),
            retry_nonces: BTreeMap::new(),
            excluded: BTreeSet::new(),
            my_nonce: None,
            result: None,
            age: 0,
        };
        if !has_share {
            return (session, None);
        }
        let nonce = thresh::generate_nonce(group, rng);
        session.inits.insert(me, nonce.commitment.clone());
        let init = AlsMsg::SignInit {
            sid,
            msg: session.msg.clone(),
            unit,
            nonce: nonce.commitment.clone(),
        };
        session.my_nonce = Some(nonce);
        (session, Some(init))
    }

    /// Logical ticks since creation.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Advances the driver-maintained age counter.
    pub fn bump_age(&mut self) {
        self.age += 1;
    }

    /// Whether the session completed successfully.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Whether the session failed permanently.
    pub fn is_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// The produced signature, once done.
    pub fn result(&self) -> Option<&Signature> {
        self.result.as_ref()
    }

    /// Feeds an incoming session message (called on delivery).
    pub fn handle(&mut self, group: &Group, public_key: &BigUint, from: u32, msg: &AlsMsg) {
        match msg {
            AlsMsg::SignInit { nonce, .. }
                if matches!(self.state, State::AwaitInits) && group.contains(nonce) => {
                    self.inits.entry(from).or_insert_with(|| nonce.clone());
                }
            AlsMsg::SignPartial { attempt, z, .. } => {
                if let State::AwaitPartials {
                    attempt: cur,
                    active,
                    ..
                } = &self.state
                {
                    if *attempt == *cur && active.contains(&from) {
                        self.partials.entry(from).or_insert_with(|| z.clone());
                    }
                }
            }
            AlsMsg::SignRetryNonce { attempt, nonce, .. } => {
                if let State::AwaitRetryNonces { attempt: cur, active } = &self.state {
                    if *attempt == *cur && active.contains(&from) && group.contains(nonce) {
                        self.retry_nonces
                            .entry(from)
                            .or_insert_with(|| nonce.clone());
                    }
                }
            }
            AlsMsg::SignDone { e, s, .. }
                if self.result.is_none() => {
                    let sig = Signature {
                        e: e.clone(),
                        s: s.clone(),
                    };
                    if let Some(vk) = VerifyKey::from_element(group, public_key.clone()) {
                        if vk.verify(&signing_payload(&self.msg, self.unit), &sig) {
                            self.result = Some(sig);
                            self.state = State::Done;
                        }
                    }
                }
            _ => {}
        }
    }

    /// Advances the session by one logical tick; returns broadcasts.
    pub fn tick<R: rand::RngCore>(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        public_key: &BigUint,
        rng: &mut R,
    ) -> Vec<AlsMsg> {
        match std::mem::replace(&mut self.state, State::Failed) {
            State::AwaitInits => self.fix_signer_set(group, key),
            State::AwaitPartials {
                attempt,
                active,
                nonces,
            } => self.evaluate_partials(group, key, public_key, attempt, active, nonces, rng),
            State::AwaitRetryNonces { attempt, active } => {
                self.emit_retry_partials(group, key, public_key, attempt, active)
            }
            done_or_failed => {
                self.state = done_or_failed;
                Vec::new()
            }
        }
    }

    /// Tick T+1: the signer set is whatever inits arrived.
    fn fix_signer_set(&mut self, group: &Group, key: Option<&KeyShare>) -> Vec<AlsMsg> {
        let signers: Vec<u32> = self.inits.keys().copied().collect();
        if signers.len() < self.t + 1 {
            self.state = State::Failed;
            return Vec::new();
        }
        let active: Vec<u32> = signers.iter().take(self.t + 1).copied().collect();
        let nonces: BTreeMap<u32, BigUint> = active
            .iter()
            .map(|i| (*i, self.inits[i].clone()))
            .collect();
        self.partials.clear();
        let out = self.my_partial(group, key, 0, &active, &nonces);
        self.state = State::AwaitPartials {
            attempt: 0,
            active,
            nonces,
        };
        out
    }

    /// Computes and stores my partial for `attempt` if I am active.
    fn my_partial(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        attempt: u32,
        active: &[u32],
        nonces: &BTreeMap<u32, BigUint>,
    ) -> Vec<AlsMsg> {
        let (Some(key), Some(nonce)) = (key, self.my_nonce.as_ref()) else {
            return Vec::new();
        };
        if !active.contains(&self.me) || nonces.len() != active.len() {
            return Vec::new();
        }
        let commitments: Vec<BigUint> = active.iter().map(|i| nonces[i].clone()).collect();
        let r = thresh::combine_nonces(group, &commitments);
        let e = thresh::challenge(
            group,
            &r,
            &key.public_key,
            &signing_payload(&self.msg, self.unit),
        );
        let z = thresh::partial_sign(group, key, active, nonce, &e);
        self.partials.insert(self.me, z.clone());
        vec![AlsMsg::SignPartial {
            sid: self.sid,
            attempt,
            z,
        }]
    }

    /// Tick T+2 / T+4: combine or retry.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_partials<R: rand::RngCore>(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        public_key: &BigUint,
        attempt: u32,
        active: Vec<u32>,
        nonces: BTreeMap<u32, BigUint>,
        rng: &mut R,
    ) -> Vec<AlsMsg> {
        // Verify partials against public data; identify cheaters/missing.
        let mut good: Vec<BigUint> = Vec::new();
        let mut bad: Vec<u32> = Vec::new();
        let share_keys = key.map(|k| k.share_keys.clone());
        if nonces.len() == active.len() {
            let commitments: Vec<BigUint> = active.iter().map(|i| nonces[i].clone()).collect();
            let r = thresh::combine_nonces(group, &commitments);
            let e = thresh::challenge(group, &r, public_key, &signing_payload(&self.msg, self.unit));
            if let Some(keys) = share_keys.as_ref() {
                // Batch-first: one random-linear-combination check covers
                // every partial that arrived. Only when the batch rejects do
                // we fall back to per-signer verification, which is what
                // pinpoints the cheaters to exclude on retry.
                let mut checks: Vec<thresh::PartialCheck<'_>> = Vec::new();
                for &i in &active {
                    match self.partials.get(&i) {
                        Some(z) => checks.push(thresh::PartialCheck {
                            signer: i,
                            share_key: &keys[(i - 1) as usize],
                            nonce_commitment: &nonces[&i],
                            z_i: z,
                        }),
                        None => bad.push(i),
                    }
                }
                if thresh::batch_verify_partials(group, &active, &e, &checks) {
                    good.extend(checks.iter().map(|c| c.z_i.clone()));
                } else {
                    for c in &checks {
                        if thresh::verify_partial(
                            group,
                            &active,
                            c.signer,
                            c.share_key,
                            c.nonce_commitment,
                            &e,
                            c.z_i,
                        ) {
                            good.push(c.z_i.clone());
                        } else {
                            bad.push(c.signer);
                        }
                    }
                }
            } else {
                bad = active.clone();
            }
            if bad.is_empty() && good.len() == active.len() {
                let sig = thresh::combine_partials(group, &e, &good);
                // Final check before declaring success.
                if let Some(vk) = VerifyKey::from_element(group, public_key.clone()) {
                    if vk.verify(&signing_payload(&self.msg, self.unit), &sig) {
                        let done = AlsMsg::SignDone {
                            sid: self.sid,
                            e: sig.e.clone(),
                            s: sig.s.clone(),
                        };
                        self.result = Some(sig);
                        self.state = State::Done;
                        return vec![done];
                    }
                }
                bad = active.clone(); // inconsistent state: restart fully
            }
        } else {
            bad = active.clone();
        }

        // Retry with cheaters excluded and fresh nonces.
        self.excluded.extend(bad);
        let next_attempt = attempt + 1;
        if next_attempt >= MAX_ATTEMPTS {
            self.state = State::Failed;
            return Vec::new();
        }
        let candidates: Vec<u32> = self
            .inits
            .keys()
            .copied()
            .filter(|i| !self.excluded.contains(i))
            .collect();
        if candidates.len() < self.t + 1 {
            self.state = State::Failed;
            return Vec::new();
        }
        let active: Vec<u32> = candidates.into_iter().take(self.t + 1).collect();
        self.retry_nonces.clear();
        self.partials.clear();
        let mut out = Vec::new();
        if active.contains(&self.me) && key.is_some() {
            let nonce = thresh::generate_nonce(group, rng);
            self.retry_nonces.insert(self.me, nonce.commitment.clone());
            out.push(AlsMsg::SignRetryNonce {
                sid: self.sid,
                attempt: next_attempt,
                nonce: nonce.commitment.clone(),
            });
            self.my_nonce = Some(nonce);
        }
        self.state = State::AwaitRetryNonces {
            attempt: next_attempt,
            active,
        };
        out
    }

    /// Tick T+3: all retry nonces should be in; broadcast retry partials.
    fn emit_retry_partials(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        _public_key: &BigUint,
        attempt: u32,
        active: Vec<u32>,
    ) -> Vec<AlsMsg> {
        let nonces = std::mem::take(&mut self.retry_nonces);
        if !active.iter().all(|i| nonces.contains_key(i)) {
            // A retry signer went silent; no further attempts would have
            // consistent nonce sets, so give up.
            self.state = State::Failed;
            return Vec::new();
        }
        self.partials.clear();
        let out = self.my_partial(group, key, attempt, &active, &nonces);
        self.state = State::AwaitPartials {
            attempt,
            active,
            nonces,
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::sid_for;
    use proauth_crypto::dkg::{self, ReceivedDealing};
    use proauth_crypto::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, proauth_crypto::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, keys)
    }

    /// Drives `n` sessions in lockstep with faithful broadcast delivery.
    /// `drop_partial_from` simulates a signer whose partials never arrive.
    fn drive(
        group: &Group,
        keys: &[KeyShare],
        t: usize,
        participants: &[u32],
        drop_partial_from: Option<u32>,
        ticks: u32,
    ) -> Vec<SignSession> {
        let mut rng = StdRng::seed_from_u64(1000);
        let sid = sid_for(b"msg", 1);
        let pk = keys[0].public_key.clone();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        for &p in participants {
            let (s, init) = SignSession::start(
                group,
                p,
                t,
                sid,
                b"msg".to_vec(),
                1,
                true,
                &mut rng,
            );
            sessions.insert(p, s);
            if let Some(init) = init {
                in_flight.push((p, init));
            }
        }
        for _ in 0..ticks {
            // Deliver.
            let delivered = std::mem::take(&mut in_flight);
            for (from, msg) in &delivered {
                // A "silenced" signer's partials AND completed-signature
                // gossip are suppressed (it went dark mid-protocol).
                let drop = matches!(
                    msg,
                    AlsMsg::SignPartial { .. } | AlsMsg::SignDone { .. }
                ) && Some(*from) == drop_partial_from;
                if drop {
                    continue;
                }
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(group, &pk, *from, msg);
                    }
                }
            }
            // Tick.
            for (&p, s) in sessions.iter_mut() {
                let key = &keys[(p - 1) as usize];
                for m in s.tick(group, Some(key), &pk, &mut rng) {
                    in_flight.push((p, m));
                }
            }
        }
        sessions.into_values().collect()
    }

    #[test]
    fn happy_path_signs_in_three_ticks() {
        let (group, keys) = dkg_keys(5, 2, 101);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3, 4, 5], None, 3);
        for s in &sessions {
            assert!(s.is_done(), "session at {} done", s.me);
            let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
            assert!(vk.verify(&signing_payload(b"msg", 1), s.result().unwrap()));
        }
    }

    #[test]
    fn exactly_t_plus_one_signers_suffice() {
        let (group, keys) = dkg_keys(5, 2, 102);
        let sessions = drive(&group, &keys, 2, &[2, 4, 5], None, 3);
        assert!(sessions.iter().all(SignSession::is_done));
    }

    #[test]
    fn too_few_signers_fail() {
        let (group, keys) = dkg_keys(5, 2, 103);
        let sessions = drive(&group, &keys, 2, &[1, 2], None, 5);
        assert!(sessions.iter().all(SignSession::is_failed));
    }

    #[test]
    fn retry_recovers_from_silent_signer() {
        // 4 participants, t=2: active = {1,2,3}; node 1's partials are
        // dropped; retry with {2,3,4} succeeds by tick 5.
        let (group, keys) = dkg_keys(5, 2, 104);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3, 4], Some(1), 5);
        for s in sessions.iter().filter(|s| s.me != 1) {
            assert!(s.is_done(), "session at {} done after retry", s.me);
        }
    }

    #[test]
    fn silent_signer_with_no_spare_fails() {
        // Exactly t+1 participants and one goes silent: no quorum remains.
        let (group, keys) = dkg_keys(5, 2, 105);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3], Some(1), 6);
        for s in sessions.iter().filter(|s| s.me != 1) {
            assert!(s.is_failed(), "node {} should fail", s.me);
        }
    }

    #[test]
    fn share_less_node_learns_result_from_done() {
        let (group, keys) = dkg_keys(5, 2, 106);
        let mut rng = StdRng::seed_from_u64(2000);
        let sid = sid_for(b"m2", 3);
        let pk = keys[0].public_key.clone();
        // Node 5 has no share; it only listens.
        let (mut listener, init) =
            SignSession::start(&group, 5, 2, sid, b"m2".to_vec(), 3, false, &mut rng);
        assert!(init.is_none());
        // Make a real signature out-of-band and feed SignDone.
        let sessions = {
            let mut s = BTreeMap::new();
            for p in [1u32, 2, 3] {
                let (sess, i) = SignSession::start(
                    &group,
                    p,
                    2,
                    sid,
                    b"m2".to_vec(),
                    3,
                    true,
                    &mut rng,
                );
                s.insert(p, (sess, i.unwrap()));
            }
            s
        };
        let mut live: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut msgs: Vec<(u32, AlsMsg)> = Vec::new();
        for (p, (sess, init)) in sessions {
            live.insert(p, sess);
            msgs.push((p, init));
        }
        for _ in 0..3 {
            let delivered = std::mem::take(&mut msgs);
            for (from, m) in &delivered {
                for (&p, s) in live.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, m);
                    }
                }
                listener.handle(&group, &pk, *from, m);
            }
            for (&p, s) in live.iter_mut() {
                for m in s.tick(&group, Some(&keys[(p - 1) as usize]), &pk, &mut rng) {
                    msgs.push((p, m));
                }
            }
        }
        // Deliver the final SignDone round to the listener.
        for (from, m) in &msgs {
            listener.handle(&group, &pk, *from, m);
        }
        assert!(listener.is_done());
    }

    #[test]
    fn chaotic_delivery_garbles_partial_then_retry_excludes_and_signs_fresh() {
        // The network tampers with everything node 1 sends (its partials
        // arrive garbled, its SignDone never arrives) and delivers the rest
        // chaotically: every message duplicated, each tick's batch reversed.
        // Public verifiability must pin the blame on signer 1 exactly, and
        // the retry must run with FRESH nonces — reusing attempt-0 nonces
        // would leak shares.
        let (group, keys) = dkg_keys(5, 2, 108);
        let t = 2;
        let mut rng = StdRng::seed_from_u64(4000);
        let sid = sid_for(b"chaos", 1);
        let pk = keys[0].public_key.clone();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        for p in [1u32, 2, 3, 4] {
            let (s, init) =
                SignSession::start(&group, p, t, sid, b"chaos".to_vec(), 1, true, &mut rng);
            sessions.insert(p, s);
            in_flight.push((p, init.unwrap()));
        }
        let mut transcript: Vec<(u32, AlsMsg)> = Vec::new();
        for _ in 0..6 {
            let mut chaotic: Vec<(u32, AlsMsg)> = Vec::new();
            for (i, (from, msg)) in std::mem::take(&mut in_flight).into_iter().enumerate() {
                let msg = match (from, msg) {
                    (1, AlsMsg::SignPartial { sid, attempt, .. }) => AlsMsg::SignPartial {
                        sid,
                        attempt,
                        z: BigUint::from_u64(0xBAD),
                    },
                    (1, AlsMsg::SignDone { .. }) => continue,
                    (_, msg) => msg,
                };
                if i % 2 == 0 {
                    chaotic.push((from, msg.clone()));
                }
                chaotic.push((from, msg));
            }
            chaotic.reverse();
            for (from, msg) in &chaotic {
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, msg);
                    }
                }
            }
            transcript.extend(chaotic);
            for (&p, s) in sessions.iter_mut() {
                for m in s.tick(&group, Some(&keys[(p - 1) as usize]), &pk, &mut rng) {
                    in_flight.push((p, m));
                }
            }
        }

        // Everyone except the tampered node completes with a valid signature.
        let vk = VerifyKey::from_element(&group, pk.clone()).unwrap();
        for s in sessions.values().filter(|s| s.me != 1) {
            assert!(s.is_done(), "session at {} done after retry", s.me);
            assert!(vk.verify(&signing_payload(b"chaos", 1), s.result().unwrap()));
        }

        // The retry ran, and exactly the tampered signer was excluded from
        // the attempt-1 signer set.
        let attempt1_partials: BTreeSet<u32> = transcript
            .iter()
            .filter(|(_, m)| matches!(m, AlsMsg::SignPartial { attempt: 1, .. }))
            .map(|(from, _)| *from)
            .collect();
        assert_eq!(attempt1_partials, BTreeSet::from([2, 3, 4]));

        // Fresh nonces: each retry commitment differs from the same signer's
        // attempt-0 commitment.
        for signer in [2u32, 3, 4] {
            let init_nonce = transcript
                .iter()
                .find_map(|(from, m)| match m {
                    AlsMsg::SignInit { nonce, .. } if *from == signer => Some(nonce.clone()),
                    _ => None,
                })
                .unwrap();
            let retry_nonce = transcript
                .iter()
                .find_map(|(from, m)| match m {
                    AlsMsg::SignRetryNonce { nonce, .. } if *from == signer => Some(nonce.clone()),
                    _ => None,
                })
                .expect("retry nonce broadcast");
            assert_ne!(init_nonce, retry_nonce, "signer {signer} reused a nonce");
        }
    }

    #[test]
    fn forged_done_rejected() {
        let (group, keys) = dkg_keys(4, 1, 107);
        let mut rng = StdRng::seed_from_u64(3000);
        let sid = sid_for(b"m", 1);
        let (mut s, _) =
            SignSession::start(&group, 1, 1, sid, b"m".to_vec(), 1, true, &mut rng);
        s.handle(
            &group,
            &keys[0].public_key,
            2,
            &AlsMsg::SignDone {
                sid,
                e: BigUint::from_u64(1),
                s: BigUint::from_u64(2),
            },
        );
        assert!(!s.is_done());
    }
}
