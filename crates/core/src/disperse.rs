//! Protocol DISPERSE (Fig. 2): a two-phase echo guaranteeing delivery
//! between any two nodes connected by a length-≤2 path of reliable links
//! (Lemma 15).
//!
//! A blob sent at physical round `w` is delivered to its destination at
//! round `w+2`: the `Forward` fans out at `w` (arriving `w+1`), each
//! recipient emits a `Forwarding` to the destination at `w+1` (arriving
//! `w+2`). A `Forward` that reaches the destination directly is buffered one
//! round so both paths deliver at the same round — keeping the `w`-binding
//! of VER-CERT unambiguous.
//!
//! The §6 relaxation ("Relaxations for small t") is [`DisperseMode::Relaxed`]:
//! fan out to only `2t+1` nodes instead of all `n`, cutting the per-node
//! message complexity from `O(n²)` to `O(nt)` while preserving the
//! common-neighbor argument.

use crate::wire::{DisperseMsg, UlsWire};
use proauth_primitives::sha256;
use proauth_primitives::wire::Encode;
use proauth_sim::message::{Envelope, NodeId, Payload};
use std::collections::HashSet;

/// Fan-out policy (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisperseMode {
    /// Fig. 2 as written: fan out to all `n−1` other nodes.
    Full,
    /// §6 relaxation: fan out to the lowest-indexed `fanout` nodes
    /// (`fanout = 2t+1` preserves Lemma 15's guarantee).
    Relaxed {
        /// Number of nodes to fan out to.
        fanout: usize,
    },
}

/// Per-node DISPERSE machinery.
#[derive(Debug)]
pub struct DisperseLayer {
    me: NodeId,
    n: usize,
    mode: DisperseMode,
    /// Blobs delivered to me this round, deduplicated.
    seen_this_round: HashSet<[u8; 32]>,
    /// Direct `Forward`s addressed to me, buffered one round so their
    /// delivery round matches the relayed copies.
    self_buffer: Vec<(u32, Vec<u8>)>,
    /// Messages queued for sending at the end of this round.
    outgoing: Vec<Envelope>,
}

impl DisperseLayer {
    /// Creates the layer for node `me` in an `n`-node network.
    pub fn new(me: NodeId, n: usize, mode: DisperseMode) -> Self {
        DisperseLayer {
            me,
            n,
            mode,
            seen_this_round: HashSet::new(),
            self_buffer: Vec::new(),
            outgoing: Vec::new(),
        }
    }

    /// The set of nodes this layer fans out through.
    fn relays(&self) -> Vec<NodeId> {
        match self.mode {
            DisperseMode::Full => NodeId::all(self.n).filter(|&x| x != self.me).collect(),
            DisperseMode::Relaxed { fanout } => NodeId::all(self.n)
                .filter(|&x| x != self.me)
                .take(fanout)
                .collect(),
        }
    }

    /// Queues a blob for DISPERSE to `dst` (delivered at `now + 2`).
    pub fn send(&mut self, dst: NodeId, blob: Vec<u8>) {
        let mut targets = self.relays();
        if !targets.contains(&dst) && dst != self.me {
            targets.push(dst);
        }
        // The Forward is identical for every relay (it names only origin,
        // dst, and blob) — encode once and share the bytes across the whole
        // fan-out instead of re-serializing the blob per relay.
        let wire = UlsWire::Disperse(DisperseMsg::Forward {
            origin: self.me.0,
            dst: dst.0,
            blob,
        });
        let payload: Payload = wire.to_payload();
        for relay in targets {
            self.outgoing
                .push(Envelope::new(self.me, relay, payload.clone()));
        }
    }

    /// Processes one incoming DISPERSE message; returns a blob delivered to
    /// me, if any.
    ///
    /// `carrier` is the node the physical envelope claims to come from (used
    /// only for routing `Forwarding`s; authenticity is the upper layers'
    /// business).
    pub fn on_message(&mut self, carrier: NodeId, msg: DisperseMsg) -> Option<(u32, Vec<u8>)> {
        let _ = carrier;
        match msg {
            DisperseMsg::Forward { origin, dst, blob } => {
                if dst == self.me.0 {
                    // Direct copy: buffer a round (self-forwarding).
                    self.self_buffer.push((origin, blob));
                } else if NodeId(dst) != self.me && dst >= 1 && dst <= self.n as u32 {
                    // Relay duty.
                    let wire = UlsWire::Disperse(DisperseMsg::Forwarding {
                        origin,
                        blob,
                    });
                    self.outgoing
                        .push(Envelope::new(self.me, NodeId(dst), wire.to_bytes()));
                }
                None
            }
            DisperseMsg::Forwarding { origin, blob } => self.deliver(origin, blob),
        }
    }

    fn deliver(&mut self, origin: u32, blob: Vec<u8>) -> Option<(u32, Vec<u8>)> {
        let digest = sha256::hash_parts("disperse/dedup", &[&origin.to_be_bytes(), &blob]);
        if self.seen_this_round.insert(digest) {
            Some((origin, blob))
        } else {
            None
        }
    }

    /// Called once at the start of each round, *before* processing the
    /// round's inbox: clears the per-round dedup set and releases buffered
    /// self-forwards. Returns the blobs delivered via the direct path.
    pub fn begin_round(&mut self) -> Vec<(u32, Vec<u8>)> {
        self.seen_this_round.clear();
        let buffered = std::mem::take(&mut self.self_buffer);
        buffered
            .into_iter()
            .filter_map(|(origin, blob)| self.deliver(origin, blob))
            .collect()
    }

    /// Drains the messages queued this round (to go into the node's outbox).
    pub fn drain_outgoing(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_primitives::wire::Decode;

    fn decode(env: &Envelope) -> DisperseMsg {
        match UlsWire::from_bytes(&env.payload).unwrap() {
            UlsWire::Disperse(d) => d,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_fans_out_to_everyone() {
        let mut layer = DisperseLayer::new(NodeId(1), 5, DisperseMode::Full);
        layer.send(NodeId(3), vec![42]);
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 4); // everyone but me
        for env in &out {
            assert!(matches!(
                decode(env),
                DisperseMsg::Forward {
                    origin: 1,
                    dst: 3,
                    ..
                }
            ));
        }
    }

    #[test]
    fn relaxed_mode_limits_fanout() {
        let mut layer = DisperseLayer::new(NodeId(5), 10, DisperseMode::Relaxed { fanout: 3 });
        layer.send(NodeId(9), vec![1]);
        let out = layer.drain_outgoing();
        // 3 relays + the destination itself.
        assert_eq!(out.len(), 4);
        let tos: Vec<u32> = out.iter().map(|e| e.to.0).collect();
        assert!(tos.contains(&9));
    }

    #[test]
    fn relay_produces_forwarding() {
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        let delivered = layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: vec![7],
            },
        );
        assert!(delivered.is_none());
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(3));
        assert!(matches!(
            decode(&out[0]),
            DisperseMsg::Forwarding { origin: 1, .. }
        ));
    }

    #[test]
    fn forwarding_delivers_once_per_round() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        let d1 = layer.on_message(
            NodeId(2),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: vec![7],
            },
        );
        let d2 = layer.on_message(
            NodeId(4),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: vec![7],
            },
        );
        assert_eq!(d1, Some((1, vec![7])));
        assert_eq!(d2, None, "duplicate suppressed");
        // A different origin claim is a distinct delivery.
        let d3 = layer.on_message(
            NodeId(4),
            DisperseMsg::Forwarding {
                origin: 2,
                blob: vec![7],
            },
        );
        assert_eq!(d3, Some((2, vec![7])));
    }

    #[test]
    fn direct_forward_buffered_one_round() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        let direct = layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: vec![9],
            },
        );
        assert!(direct.is_none(), "not delivered in the arrival round");
        let released = layer.begin_round();
        assert_eq!(released, vec![(1, vec![9])]);
    }

    #[test]
    fn direct_and_relayed_copies_dedup() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: vec![9],
            },
        );
        // Next round: buffered direct copy delivers first...
        let released = layer.begin_round();
        assert_eq!(released.len(), 1);
        // ...and the relayed copy of the same blob is suppressed.
        let relayed = layer.on_message(
            NodeId(2),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: vec![9],
            },
        );
        assert!(relayed.is_none());
    }

    #[test]
    fn out_of_range_dst_ignored() {
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 77,
                blob: vec![1],
            },
        );
        assert!(layer.drain_outgoing().is_empty());
    }
}
