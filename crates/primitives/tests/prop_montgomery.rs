//! Property tests for the Montgomery fast-exponentiation layer: the
//! windowed, fixed-base, and multi-exponentiation paths must be
//! bit-identical to the generic reference (`BigUint::modpow_generic`) on
//! arbitrary odd moduli, bases, and exponents.

use proauth_primitives::bigint::BigUint;
use proauth_primitives::montgomery::{ExpTerm, Montgomery};
use proptest::prelude::*;

/// Strategy producing an odd modulus > 1 of up to 5 limbs (320 bits).
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..5).prop_map(|mut limbs| {
        limbs[0] |= 1; // odd, and ≥ 1
        let m = BigUint::from_limbs(limbs);
        if m.is_one() {
            BigUint::from_u64(3)
        } else {
            m
        }
    })
}

/// Strategy producing an arbitrary value of up to 5 limbs.
fn value() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windowed_modpow_matches_generic(m in odd_modulus(), base in value(), exp in value()) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let expected = base.modpow_generic(&exp, &m);
        prop_assert_eq!(ctx.modpow(&base, &exp), expected.clone());
        prop_assert_eq!(ctx.modpow_binary(&base, &exp), expected);
    }

    #[test]
    fn fixed_base_matches_generic(m in odd_modulus(), base in value(), exp in value(), max_bits in 1usize..300) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        // In-range exponents use the comb table; out-of-range ones fall back
        // to the windowed path. Either way the result is the reference one.
        let table = ctx.precompute(&base, max_bits);
        prop_assert_eq!(ctx.modpow_fixed(&table, &exp), base.modpow_generic(&exp, &m));
    }

    #[test]
    fn multi_exp_matches_product(
        m in odd_modulus(),
        pairs in proptest::collection::vec((value(), value()), 0..5),
    ) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let mut expected = BigUint::one().rem(&m);
        for (base, exp) in &pairs {
            let factor = base.modpow_generic(exp, &m);
            expected = ctx.mul_mod(&expected, &factor);
        }
        let terms: Vec<ExpTerm<'_>> = pairs
            .iter()
            .map(|(base, exp)| ExpTerm::Plain { base, exp })
            .collect();
        prop_assert_eq!(ctx.multi_exp(&terms), expected);
    }

    #[test]
    fn multi_exp_mixed_fixed_and_plain_matches_product(
        m in odd_modulus(),
        base0 in value(),
        exp0 in value(),
        base1 in value(),
        exp1 in value(),
    ) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let table = ctx.precompute(&base0, exp0.bits().max(1));
        let expected = ctx.mul_mod(
            &base0.modpow_generic(&exp0, &m),
            &base1.modpow_generic(&exp1, &m),
        );
        let terms = [
            ExpTerm::Fixed { table: &table, exp: &exp0 },
            ExpTerm::Plain { base: &base1, exp: &exp1 },
        ];
        prop_assert_eq!(ctx.multi_exp(&terms), expected);
    }

    #[test]
    fn multi_exp_merges_duplicate_bases(m in odd_modulus(), base in value(), e1 in value(), e2 in value()) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        // a^e1 · a^e2 = a^(e1+e2) — the equal-base merge must be invisible.
        let expected = base.modpow_generic(&e1.add(&e2), &m);
        let terms = [
            ExpTerm::Plain { base: &base, exp: &e1 },
            ExpTerm::Plain { base: &base, exp: &e2 },
        ];
        prop_assert_eq!(ctx.multi_exp(&terms), expected);
    }

    #[test]
    fn mul_mod_matches_generic(m in odd_modulus(), a in value(), b in value()) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }
}
