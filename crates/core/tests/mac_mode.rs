//! End-to-end tests of the session-MAC authentication mode (§1.3's
//! shared-key alternative): same guarantees as signature mode, two hashes
//! per message instead of three exponentiations.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{sign_input, uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, run_ul_with_inputs, SimConfig, SimResult};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn cfg(total_units: u64, seed: u64) -> SimConfig {
    let schedule = uls_schedule(NORMAL);
    let mut c = SimConfig::new(N, T, schedule);
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = schedule.unit_rounds * total_units;
    c.seed = seed;
    c
}

fn make_node(mode: AuthMode) -> impl Fn(NodeId) -> UlsNode<HeartbeatApp> {
    move |id| {
        let group = Group::new(GroupId::Toy64);
        let mut c = UlsConfig::new(group, N, T);
        c.auth_mode = mode;
        UlsNode::new(c, id, HeartbeatApp::default())
    }
}

fn accepted(result: &SimResult) -> usize {
    result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
        .count()
}

#[test]
fn mac_mode_matches_sign_mode_functionality() {
    let sign = run_ul(cfg(3, 9), make_node(AuthMode::Sign), &mut FaithfulUl);
    let mac = run_ul(cfg(3, 9), make_node(AuthMode::SessionMac), &mut FaithfulUl);
    // Identical heartbeat acceptance, zero alerts, all operational.
    assert_eq!(accepted(&sign), accepted(&mac));
    assert_eq!(mac.stats.alerts.iter().sum::<u64>(), 0);
    assert!(mac.final_operational.iter().all(|&b| b));
    // (Byte counts are similar — a 32-byte tag replaces a signature whose
    // size depends on the group; the saving is CPU, benched in e9_crypto.)
}

#[test]
fn mac_mode_actually_uses_the_fast_path() {
    // Count path usage via a single-node probe run: after the first unit,
    // the overwhelming majority of steady-state traffic should be MACs.
    let counters = std::sync::Arc::new(std::sync::Mutex::new((0u64, 0u64)));

    // Read the node's path counters through the break-in API at the very
    // last round.
    struct Reader {
        mac: std::sync::Arc<std::sync::Mutex<(u64, u64)>>,
        last_round: u64,
    }
    impl proauth_sim::adversary::UlAdversary for Reader {
        fn plan(
            &mut self,
            view: &proauth_sim::adversary::NetView<'_>,
        ) -> proauth_sim::adversary::BreakPlan {
            if view.time.round == self.last_round {
                proauth_sim::adversary::BreakPlan::break_into([NodeId(1)])
            } else {
                proauth_sim::adversary::BreakPlan::none()
            }
        }
        fn corrupt(
            &mut self,
            _n: NodeId,
            state: &mut dyn std::any::Any,
            _t: &proauth_sim::clock::TimeView,
        ) {
            if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
                let mut c = self.mac.lock().unwrap();
                c.0 = node.mac_sent;
                c.1 = node.sig_sent;
            }
        }
        fn deliver(
            &mut self,
            sent: &[proauth_sim::message::Envelope],
            _v: &proauth_sim::adversary::NetView<'_>,
        ) -> Vec<proauth_sim::message::Envelope> {
            sent.to_vec()
        }
    }
    let c = cfg(2, 13);
    let last_round = c.total_rounds - 1;
    let mut reader = Reader {
        mac: counters.clone(),
        last_round,
    };
    let _result = run_ul(c, make_node(AuthMode::SessionMac), &mut reader);
    let (mac, sig) = *counters.lock().unwrap();
    assert!(mac > 0, "MAC fast path used");
    assert!(
        mac > sig,
        "steady-state traffic is mostly MACs: mac={mac} sig={sig}"
    );
}

#[test]
fn mac_mode_signs_through_refresh_and_usign_works() {
    let sched = uls_schedule(NORMAL);
    let sign_round = sched.unit_rounds + sched.refresh_rounds() + 2;
    let result = run_ul_with_inputs(
        cfg(2, 10),
        make_node(AuthMode::SessionMac),
        &mut FaithfulUl,
        move |_, round| (round == sign_round).then(|| sign_input(b"mac-mode doc")),
    );
    let signed = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Signed { msg, .. } if msg == b"mac-mode doc"))
        .count();
    assert_eq!(signed, N, "threshold signing works over MAC transport");
}

#[test]
fn mac_mode_survives_break_in_and_recovery() {
    use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
    use proauth_sim::clock::TimeView;
    use proauth_sim::message::Envelope;

    struct Wiper;
    impl UlAdversary for Wiper {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                4 => BreakPlan::break_into([NodeId(2)]),
                8 => BreakPlan::leave([NodeId(2)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
            if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
                node.corrupt_wipe();
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }

    let result = run_ul(cfg(3, 11), make_node(AuthMode::SessionMac), &mut Wiper);
    assert!(result.final_operational[NodeId(2).idx()]);
    // Node 2 is heard from again after recovery.
    let sched = uls_schedule(NORMAL);
    let after = sched.unit_rounds + sched.refresh_rounds();
    let heard = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(2).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, e)| {
            *round > after && matches!(e, OutputEvent::Accepted { from, .. } if *from == NodeId(2))
        })
        .count();
    assert!(heard > 0);
}

#[test]
fn forged_mac_rejected() {
    use proauth_adversary_shim::*;
    // A bare injector that crafts MacMsgs with a random key: receivers must
    // reject every one (wrong session key ⇒ wrong tag).
    mod proauth_adversary_shim {
        pub use proauth_sim::adversary::{NetView, UlAdversary};
        pub use proauth_sim::message::Envelope;
    }
    struct MacForger;
    impl UlAdversary for MacForger {
        fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
            let mut out = sent.to_vec();
            if view.time.round.is_multiple_of(2) {
                let mmsg = proauth_core::wire::MacMsg {
                    m: proauth_core::wire::Inner::App(b"MAC-FORGERY".to_vec())
                        .to_bytes_shim(),
                    i: 1,
                    j: 2,
                    u: view.time.auth_unit,
                    w: view.time.round.saturating_sub(1),
                    tag: [7; 32],
                    vk: vec![1, 2, 3],
                    cert: proauth_crypto::schnorr::Signature {
                        e: proauth_primitives::bigint::BigUint::from_u64(1),
                        s: proauth_primitives::bigint::BigUint::from_u64(2),
                    },
                };
                let wire = proauth_core::wire::UlsWire::Disperse(
                    proauth_core::wire::DisperseMsg::Forwarding {
                        origin: 1,
                        blob: proauth_core::wire::Blob::MacCertified(mmsg).to_bytes_shim().into(),
                    },
                );
                out.push(Envelope::new(NodeId(1), NodeId(2), wire.to_bytes_shim()));
            }
            out
        }
    }
    trait ToBytesShim {
        fn to_bytes_shim(&self) -> Vec<u8>;
    }
    impl<T: proauth_primitives::wire::Encode> ToBytesShim for T {
        fn to_bytes_shim(&self) -> Vec<u8> {
            self.to_bytes()
        }
    }

    let result = run_ul(cfg(2, 12), make_node(AuthMode::SessionMac), &mut MacForger);
    let forged = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Accepted { msg, .. } if msg == b"MAC-FORGERY"))
        .count();
    assert_eq!(forged, 0, "forged MACs never accepted");
}
