//! Deterministic chaos engine: compiled fault schedules, crash–restart
//! orchestration, and chaotic delivery.
//!
//! The paper's protocols are built to survive transient faults — break-ins,
//! lost state, `s`-disconnection — so the harness must be able to *produce*
//! those faults on demand. This module compiles a seed into a
//! [`FaultSchedule`] (node crash-stops, including crashes aimed at the Fig-1
//! refreshment-phase boundaries where mid-refresh state loss hurts most) and
//! wraps any adversary in a [`ChaosNet`] that executes the schedule, restarts
//! crashed nodes after a configurable outage, and — in the UL model, whose
//! adversary owns delivery — delays, duplicates, and reorders traffic.
//!
//! Everything is a pure function of the configuration and the seed:
//! schedules are precompiled, per-round randomness is derived by hashing
//! `(seed, round)` rather than streamed, and all decisions run on the engine
//! thread. Same seed ⇒ bit-identical [`crate::runner::SimResult`] and trace
//! across serial and pooled execution, like every other adversary.
//!
//! Crash semantics (vs break-ins, Definitions 4–7): a crashed node does not
//! execute and its pending traffic is *discarded*, not diverted — the
//! adversary gains nothing from a crash except the outage. A restarted node
//! comes back as a freshly constructed instance: volatile state (key shares,
//! sessions, counters) is gone, the ROM survives. It then recovers via the
//! §4.2 path — share recovery inside the next refreshment phase and
//! re-certification at its end. Crashed rounds are charged against the
//! `(s,t)` budget exactly like broken rounds, so Definition 7 stays the
//! ground truth for "did the adversary stay within its allowance".

use crate::adversary::{AlAdversary, BreakPlan, NetView, UlAdversary};
use crate::clock::{Phase, Schedule, TimeView};
use crate::message::{Envelope, NodeId};
use crate::process::{Process, RoundCtx, SetupCtx};
use proauth_primitives::sha256;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Fault-intensity knobs for the chaos engine. The default is calm (no
/// faults); a sweep driver scales these across the `(s,t)` boundary.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Per-node per-round crash probability (background crashes).
    pub crash_p: f64,
    /// Probability of crashing one extra node at each refreshment-phase
    /// boundary (the first round of Part I and of Part II) — the rounds
    /// where losing volatile state interacts worst with the Fig-1 schedule.
    pub boundary_crash_p: f64,
    /// Rounds a crashed node stays down before [`ChaosNet`] restarts it
    /// (`None` = crashed nodes never come back).
    pub restart_after: Option<u64>,
    /// Cap on simultaneously crashed nodes when compiling the schedule.
    /// Keeping this ≤ the run's `t` keeps the schedule inside the
    /// Definition-7 budget; raising it past `t` drives the run over the
    /// boundary on purpose.
    pub max_down: usize,
    /// Rounds the schedule compiler presumes a crash victim stays *impaired*
    /// (counted against `max_down`); defaults to the restart outage. A
    /// restarted node is still non-operational until it re-certifies at the
    /// next refresh end, so a schedule that must provably respect a
    /// Definition-7 budget should cover that tail (outage + up to two
    /// units).
    pub presumed_down: Option<u64>,
    /// Restrict compiled crashes to these nodes (`None` = whole network).
    /// The §6 hierarchy uses this to aim chaos at a single cluster — e.g.
    /// its representative and members — while the rest of the system stays
    /// calm, so per-cluster Definition-7 budgets can be exercised in
    /// isolation.
    pub target: Option<Vec<NodeId>>,
    /// Per-message one-round delay probability (UL only).
    pub delay_p: f64,
    /// Per-message duplication probability (UL only).
    pub dup_p: f64,
    /// Shuffle each round's delivered set (UL only).
    pub reorder: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            crash_p: 0.0,
            boundary_crash_p: 0.0,
            restart_after: None,
            max_down: usize::MAX,
            presumed_down: None,
            target: None,
            delay_p: 0.0,
            dup_p: 0.0,
            reorder: false,
        }
    }
}

/// Derives the deterministic per-round chaos RNG. Keyed, not streamed: the
/// behaviour at round `w` is a pure function of `(seed, w)`.
fn chaos_rng(seed: u64, round: u64, tag: &str) -> StdRng {
    let digest = sha256::hash_parts(
        "proauth/sim/chaos-rng",
        &[tag.as_bytes(), &seed.to_be_bytes(), &round.to_be_bytes()],
    );
    StdRng::from_seed(digest)
}

/// A precompiled crash schedule: which nodes crash-stop at which round.
///
/// Restarts are *not* part of the schedule — [`ChaosNet`] issues them
/// reactively from the observed crashed set, so panic-induced crashes (a
/// node step that died on its own) get the same restart treatment as
/// scheduled ones.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    crashes: BTreeMap<u64, Vec<NodeId>>,
}

impl FaultSchedule {
    /// Compiles `cfg` + `seed` into a deterministic crash schedule for a run
    /// of `total_rounds` rounds over `n` nodes under `schedule`.
    ///
    /// The compiler tracks a presumed outage window per node
    /// (`restart_after` rounds, or forever) and never exceeds
    /// `cfg.max_down` simultaneous crashes, so the schedule's pressure on
    /// the `(s,t)` budget is controlled by configuration, not luck.
    pub fn compile(
        cfg: &ChaosConfig,
        n: usize,
        total_rounds: u64,
        schedule: &Schedule,
        seed: u64,
    ) -> Self {
        let mut crashes: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        // Presumed first round each node is back up (schedule-local view;
        // the +1 mirrors ChaosNet observing the crash one round later).
        let down_span = cfg.presumed_down.or(cfg.restart_after).map(|d| d + 1);
        let mut up_at = vec![0u64; n];
        for round in 0..total_rounds {
            let mut rng = chaos_rng(seed, round, "schedule");
            let mut down_now = up_at.iter().filter(|&&u| u > round).count();
            // In budget-proof mode (`presumed_down` set) every victim must
            // have time to restart *and* re-certify before the run ends, so
            // stop scheduling crashes whose presumed impairment would spill
            // past the final round.
            let in_horizon = cfg.presumed_down.is_none()
                || down_span.is_some_and(|s| round + s <= total_rounds);
            let mut crash = |id: NodeId,
                             up_at: &mut Vec<u64>,
                             down_now: &mut usize| {
                up_at[id.idx()] = down_span.map_or(u64::MAX, |s| round + s);
                *down_now += 1;
                crashes.entry(round).or_default().push(id);
            };
            // Phase-boundary crash: one victim at the start of refresh
            // Part I / Part II, chosen among currently-up nodes.
            let boundary = matches!(
                schedule.phase_of(round),
                Phase::RefreshPart1 { step: 0 } | Phase::RefreshPart2 { step: 0 }
            );
            let eligible =
                |id: NodeId| cfg.target.as_ref().is_none_or(|t| t.contains(&id));
            if boundary
                && in_horizon
                && down_now < cfg.max_down
                && cfg.boundary_crash_p > 0.0
                && rng.gen::<f64>() < cfg.boundary_crash_p
            {
                let up: Vec<NodeId> = NodeId::all(n)
                    .filter(|&id| up_at[id.idx()] <= round && eligible(id))
                    .collect();
                if let Some(&id) = up.choose(&mut rng) {
                    crash(id, &mut up_at, &mut down_now);
                }
            }
            // Background crashes: independent per node, budget-capped.
            if cfg.crash_p > 0.0 && in_horizon {
                for id in NodeId::all(n) {
                    if up_at[id.idx()] > round || down_now >= cfg.max_down || !eligible(id) {
                        continue;
                    }
                    if rng.gen::<f64>() < cfg.crash_p {
                        crash(id, &mut up_at, &mut down_now);
                    }
                }
            }
        }
        FaultSchedule { crashes }
    }

    /// Adds an explicit crash event — scenario scripting on top of (or
    /// instead of) the compiled schedule, e.g. "crash the representative of
    /// cluster 2 at the first round of refresh Part II".
    pub fn push(&mut self, round: u64, node: NodeId) {
        self.crashes.entry(round).or_default().push(node);
    }

    /// Nodes scheduled to crash at `round`.
    pub fn crashes_at(&self, round: u64) -> &[NodeId] {
        self.crashes.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Total scheduled crash events.
    pub fn total_crashes(&self) -> usize {
        self.crashes.values().map(Vec::len).sum()
    }
}

/// Wraps an adversary with the chaos engine: executes a [`FaultSchedule`],
/// restarts crashed nodes (scheduled *or* panic-induced) after
/// `restart_after` rounds, and — under the UL model — delays, duplicates,
/// and reorders the inner adversary's deliveries.
///
/// Under the AL model only the crash/restart plan applies: the AL adversary
/// has no power over honest delivery, so the delivery knobs are ignored.
pub struct ChaosNet<A> {
    /// The wrapped adversary (its plan and delivery run first).
    pub inner: A,
    cfg: ChaosConfig,
    schedule: FaultSchedule,
    seed: u64,
    /// Messages held back by the delay knob, delivered next round.
    held: Vec<Envelope>,
    /// Round each node was first *observed* crashed; drives restarts.
    crashed_since: Vec<Option<u64>>,
}

impl<A> ChaosNet<A> {
    /// Wraps `inner` with a precompiled schedule.
    pub fn new(inner: A, cfg: ChaosConfig, schedule: FaultSchedule, n: usize, seed: u64) -> Self {
        ChaosNet {
            inner,
            cfg,
            schedule,
            seed,
            held: Vec::new(),
            crashed_since: vec![None; n],
        }
    }

    /// Compiles the schedule from `cfg` and wraps `inner` in one step.
    pub fn compile(
        inner: A,
        cfg: ChaosConfig,
        n: usize,
        total_rounds: u64,
        schedule: &Schedule,
        seed: u64,
    ) -> Self {
        let compiled = FaultSchedule::compile(&cfg, n, total_rounds, schedule, seed);
        Self::new(inner, cfg, compiled, n, seed)
    }

    /// The chaos engine's own plan for this round: scheduled crashes plus
    /// reactive restarts for any node observed crashed long enough —
    /// including nodes the engine crashed because their step panicked.
    fn chaos_plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let round = view.time.round;
        let mut plan = BreakPlan::none();
        plan.crash.extend_from_slice(self.schedule.crashes_at(round));
        for id in NodeId::all(view.n) {
            let idx = id.idx();
            if view.crashed[idx] {
                let since = *self.crashed_since[idx].get_or_insert(round);
                if let Some(delay) = self.cfg.restart_after {
                    if round >= since + delay {
                        plan.restart.push(id);
                    }
                }
            } else {
                self.crashed_since[idx] = None;
            }
        }
        plan
    }

    /// Applies the UL delivery knobs (delay, duplicate, reorder) to the
    /// round's delivered set.
    fn chaos_deliver(&mut self, delivered: Vec<Envelope>, round: u64) -> Vec<Envelope> {
        let calm = self.cfg.delay_p == 0.0 && self.cfg.dup_p == 0.0 && !self.cfg.reorder;
        if calm && self.held.is_empty() {
            return delivered;
        }
        let mut rng = chaos_rng(self.seed, round, "deliver");
        let mut out = std::mem::take(&mut self.held);
        for e in delivered {
            if self.cfg.delay_p > 0.0 && rng.gen::<f64>() < self.cfg.delay_p {
                self.held.push(e);
                continue;
            }
            let dup = self.cfg.dup_p > 0.0 && rng.gen::<f64>() < self.cfg.dup_p;
            out.push(e.clone());
            if dup {
                out.push(e);
            }
        }
        if self.cfg.reorder {
            out.shuffle(&mut rng);
        }
        out
    }
}

impl<A: UlAdversary> UlAdversary for ChaosNet<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let mut p = self.inner.plan(view);
        p.merge(self.chaos_plan(view));
        p
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        self.inner.corrupt(node, state, time);
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mid = self.inner.deliver(sent, view);
        self.chaos_deliver(mid, view.time.round)
    }

    fn output(&mut self) -> Vec<String> {
        self.inner.output()
    }
}

impl<A: AlAdversary> AlAdversary for ChaosNet<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let mut p = self.inner.plan(view);
        p.merge(self.chaos_plan(view));
        p
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        self.inner.corrupt(node, state, time);
    }

    fn broken_sends(&mut self, honest_sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        self.inner.broken_sends(honest_sent, view)
    }

    fn output(&mut self) -> Vec<String> {
        self.inner.output()
    }
}

/// A process-level fault plan for daemon mode: real SIGKILLs delivered by
/// the supervisor at round boundaries, plus optional state-file truncation
/// before the respawn. Compiled deterministically from the run seed like
/// every other chaos schedule, and charged to the Definition-7 budget
/// exactly like engine crash-stops — a killed OS process and a crash-stopped
/// simulated node are the same fault at different layers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessFaultPlan {
    /// `(round, node)` kill events, sorted by round then node. The
    /// supervisor fires each once the collector's observed round reaches it.
    pub kills: Vec<(u64, u32)>,
    /// Nodes whose `state.bin` is truncated before their respawn — the
    /// digest check fails, the watermark is lost, and the node must rejoin
    /// from round 0 (full catch-up plus share recovery).
    pub truncate: Vec<u32>,
}

impl ProcessFaultPlan {
    /// One kill per node, spread deterministically from `seed` across the
    /// run's *recovery windows*. A killed process loses its volatile state —
    /// key shares included — and regains it only through share recovery in
    /// the next refreshment phase, which itself needs `t+1` intact shares.
    /// The plan therefore respects three placement rules:
    ///
    /// * **at most `n - (t+1)` victims per time unit** — more would drop the
    ///   surviving share count below the signing threshold and destroy the
    ///   joint key irrecoverably (the paper's corruption bound, Def. 7);
    /// * **normal-phase rounds only, with a margin before the next unit
    ///   boundary** — the victim must respawn, catch up, and announce fresh
    ///   keys at the next refresh's first round (URfr I.1); a kill too close
    ///   to the boundary slips its recovery a whole extra unit. The margin
    ///   also absorbs kill-delivery lag (the supervisor fires on
    ///   beacon-observed rounds, which trail the cluster by a few);
    /// * **a complete unit after every kill's unit** — so the refresh that
    ///   heals the victim actually runs; setup is likewise excluded (the
    ///   setup barrier is hard and the phase adversary-free by model §2.1).
    ///
    /// Errors when `total_rounds` holds too few units to spread `n` kills
    /// under the threshold cap — the fix is more units, not fewer kills.
    pub fn kill_all_once(
        n: usize,
        t: usize,
        schedule: &Schedule,
        total_rounds: u64,
        seed: u64,
    ) -> Result<Self, String> {
        let unit_rounds = schedule.unit_rounds;
        let normal = unit_rounds - schedule.refresh_rounds();
        let margin = (normal / 2).clamp(2, 8);
        let cap = n.saturating_sub(t + 1).max(1);
        // Units eligible to host kills: a full unit must follow.
        let units: Vec<u64> = (0..)
            .take_while(|u| (u + 2) * unit_rounds <= total_rounds)
            .collect();
        let needed = n.div_ceil(cap);
        if units.len() < needed {
            return Err(format!(
                "cannot kill all {n} nodes: at most {cap} per unit (t={t} needs t+1 \
                 surviving shares per refresh) requires {needed} kill-eligible units \
                 plus a final clean one, but {total_rounds} rounds hold only {} — \
                 raise --units to at least {}",
                units.len(),
                needed + 1
            ));
        }
        // Deterministic victim order, then round-robin across eligible units
        // so concurrent share loss stays maximally below the cap.
        let mut victims: Vec<u32> = (1..=n as u32).collect();
        victims.sort_by_key(|node| {
            sha256::hash_parts(
                "proauth/net/killplan",
                &[&seed.to_be_bytes(), &node.to_be_bytes()],
            )
        });
        let spread = units.len().min(needed.max(1));
        let mut kills: Vec<(u64, u32)> = Vec::with_capacity(n);
        for (i, &node) in victims.iter().enumerate() {
            let unit = units[i % spread];
            // Normal-phase window of this unit (unit 0 is all normal; later
            // units open with their refresh), minus the boundary margin.
            let win_lo = if unit == 0 {
                2
            } else {
                unit * unit_rounds + schedule.refresh_rounds()
            };
            let win_hi = ((unit + 1) * unit_rounds - margin).max(win_lo + 1);
            let h = sha256::hash_parts(
                "proauth/net/killround",
                &[&seed.to_be_bytes(), &node.to_be_bytes()],
            );
            let r = win_lo
                + u64::from_be_bytes(h[..8].try_into().expect("8 bytes")) % (win_hi - win_lo);
            kills.push((r, node));
        }
        kills.sort_unstable();
        Ok(ProcessFaultPlan {
            kills,
            truncate: Vec::new(),
        })
    }

    /// Parses an explicit `node:round,node:round,...` schedule.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut kills = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (node, round) = part
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("bad kill spec '{part}' (want node:round)"))?;
            let node: u32 = node
                .trim()
                .parse()
                .map_err(|_| format!("bad node in kill spec '{part}'"))?;
            let round: u64 = round
                .trim()
                .parse()
                .map_err(|_| format!("bad round in kill spec '{part}'"))?;
            kills.push((round, node));
        }
        kills.sort_unstable();
        Ok(ProcessFaultPlan {
            kills,
            truncate: Vec::new(),
        })
    }

    /// Total kill events.
    pub fn total_kills(&self) -> usize {
        self.kills.len()
    }
}

/// Test hook: a process wrapper that panics on one configured `(node,
/// round)` step, for exercising the engine's panic→crash conversion. The
/// inner process is fully transparent otherwise (including `state_mut`, so
/// adversary downcasts still reach the real node state).
pub struct PanicOn<P> {
    inner: P,
    node: NodeId,
    round: u64,
}

impl<P> PanicOn<P> {
    /// Wraps `inner`; the wrapper panics when `node` executes `round`.
    pub fn at(inner: P, node: NodeId, round: u64) -> Self {
        PanicOn { inner, node, round }
    }
}

impl<P: Process> Process for PanicOn<P> {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        self.inner.on_setup_round(ctx);
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        assert!(
            !(ctx.me == self.node && ctx.time.round == self.round),
            "chaos: injected panic ({} at round {})",
            self.node,
            self.round
        );
        self.inner.on_round(ctx);
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self.inner.state_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FaithfulUl;
    use crate::runner::{run_ul, SimConfig};
    use std::any::Any;

    /// Counts what it hears; crashes lose the count (volatile state).
    struct Counter {
        heard: u64,
    }

    impl Process for Counter {
        fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            self.heard += ctx.inbox.len() as u64;
            ctx.send_all(vec![0x01]);
        }
        fn state_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cfg(n: usize, rounds: u64) -> SimConfig {
        let mut c = SimConfig::new(n, 1, Schedule::new(10, 2, 2));
        c.total_rounds = rounds;
        c.setup_rounds = 1;
        c
    }

    #[test]
    fn schedule_is_deterministic_and_budget_capped() {
        let chaos = ChaosConfig {
            crash_p: 0.08,
            boundary_crash_p: 0.5,
            restart_after: Some(4),
            max_down: 2,
            ..ChaosConfig::default()
        };
        let sched = Schedule::new(10, 2, 2);
        let a = FaultSchedule::compile(&chaos, 6, 40, &sched, 77);
        let b = FaultSchedule::compile(&chaos, 6, 40, &sched, 77);
        assert_eq!(a.crashes, b.crashes);
        assert!(a.total_crashes() > 0, "intensity this high must crash");
        // The compiler's own outage presumption never exceeds max_down.
        let mut up_at = [0u64; 6];
        for round in 0..40 {
            for id in a.crashes_at(round) {
                up_at[id.idx()] = round + 5;
            }
            let down = up_at.iter().filter(|&&u| u > round).count();
            assert!(down <= 2, "round {round}: {down} down");
        }
        // A different seed produces a different schedule.
        let c = FaultSchedule::compile(&chaos, 6, 40, &sched, 78);
        assert_ne!(a.crashes, c.crashes);
    }

    #[test]
    fn crash_discards_state_and_restart_rejoins() {
        // One scheduled crash of node 2 at round 3, restart after 2 rounds.
        let mut schedule = FaultSchedule::default();
        schedule.crashes.insert(3, vec![NodeId(2)]);
        let chaos = ChaosConfig {
            restart_after: Some(2),
            ..ChaosConfig::default()
        };
        let mut adv = ChaosNet::new(FaithfulUl, chaos, schedule, 3, 0);
        let result = run_ul(cfg(3, 20), |_| Counter { heard: 0 }, &mut adv);
        // Crashed rounds are charged: node 2 down from round 3 until the
        // restart lands (observed crashed at 4, restarted at plan of 6).
        assert_eq!(result.stats.crashes, 1);
        assert_eq!(result.stats.restarts, 1);
        assert_eq!(result.stats.panics, 0);
        let down = result.stats.crashed_rounds[NodeId(2).idx()];
        assert_eq!(down, 3, "rounds 3,4,5 spent crashed");
        // While down it sent nothing: 2 peers × 3 rounds missing.
        assert_eq!(result.stats.messages_sent, 3 * 2 * 20 - 6);
        // The crash is charged to ground truth: node 2 lost s-operational
        // status (UL impairment lines fired) and rejoined at a refresh end.
        let evs: Vec<_> = result.outputs[NodeId(2).idx()]
            .iter()
            .map(|(_, e)| e.clone())
            .collect();
        assert!(evs.contains(&crate::message::OutputEvent::Compromised));
        assert!(evs.contains(&crate::message::OutputEvent::Recovered));
    }

    #[test]
    fn chaotic_delivery_preserves_multiset_per_link() {
        // Delay + dup + reorder never forge or modify: every delivered
        // envelope matches something sent on the same link.
        let chaos = ChaosConfig {
            delay_p: 0.3,
            dup_p: 0.3,
            reorder: true,
            ..ChaosConfig::default()
        };
        let mut adv = ChaosNet::new(FaithfulUl, chaos, FaultSchedule::default(), 4, 9);
        let mut c = cfg(4, 15);
        c.record_transcript = true;
        let result = run_ul(c, |_| Counter { heard: 0 }, &mut adv);
        assert_eq!(result.stats.messages_modified, 0);
        let t = result.transcript.expect("transcript");
        for rec in &t {
            for env in &rec.delivered {
                assert!(
                    t.iter().any(|r| r
                        .sent
                        .iter()
                        .any(|s| s.from == env.from && s.to == env.to && s.payload == env.payload)),
                    "delivered envelope was never sent"
                );
            }
        }
        // Duplication actually fired.
        assert!(result.stats.messages_injected > 0, "duplicates count as injected");
    }

    #[test]
    fn process_fault_plan_is_deterministic_and_post_setup() {
        // 13 nodes, t=6 → at most 6 victims per unit, so 3 kill units plus a
        // final clean one: uls-style units of 26 rounds (refresh 18).
        let sched = Schedule::new(26, 10, 8);
        let a = ProcessFaultPlan::kill_all_once(13, 6, &sched, 26 * 4, 42).expect("fits");
        let b = ProcessFaultPlan::kill_all_once(13, 6, &sched, 26 * 4, 42).expect("fits");
        assert_eq!(a, b);
        assert_eq!(a.total_kills(), 13);
        // Every node killed exactly once.
        let mut nodes: Vec<u32> = a.kills.iter().map(|&(_, id)| id).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (1..=13).collect::<Vec<u32>>());
        // Placement rules: normal-phase rounds only (unit 0 all-normal, later
        // units after their refresh), margin before each boundary, never the
        // final unit, and at most n-(t+1)=6 victims per unit.
        let margin = 4; // (normal=8)/2
        let mut per_unit = [0usize; 4];
        for &(round, _) in &a.kills {
            let unit = (round / 26) as usize;
            assert!(unit < 3, "kill at round {round} leaves no clean unit");
            per_unit[unit] += 1;
            let in_unit = round % 26;
            if unit > 0 {
                assert!(in_unit >= 18, "kill at round {round} lands mid-refresh");
            } else {
                assert!(round >= 2, "kill at round {round} lands in setup");
            }
            assert!(in_unit < 26 - margin, "kill at round {round} ignores margin");
        }
        assert!(per_unit.iter().all(|&k| k <= 6), "threshold cap: {per_unit:?}");
        // Sorted by round for the supervisor's cursor.
        assert!(a.kills.windows(2).all(|w| w[0] <= w[1]));
        let c = ProcessFaultPlan::kill_all_once(13, 6, &sched, 26 * 4, 43).expect("fits");
        assert_ne!(a, c, "different seed, different spread");
        // Too few units to spread the kills → explicit error, not a bad plan.
        let err = ProcessFaultPlan::kill_all_once(13, 6, &sched, 26 * 2, 42);
        assert!(err.is_err(), "2 units cannot host 13 kills under the cap");
    }

    #[test]
    fn process_fault_plan_parses_explicit_schedules() {
        let p = ProcessFaultPlan::parse("3:10, 1:4,2:10").expect("parses");
        assert_eq!(p.kills, vec![(4, 1), (10, 2), (10, 3)]);
        assert!(ProcessFaultPlan::parse("3-10").is_err());
        assert!(ProcessFaultPlan::parse("x:10").is_err());
        assert!(ProcessFaultPlan::parse("").expect("empty ok").kills.is_empty());
    }

    #[test]
    fn panicking_step_becomes_crash_and_run_continues() {
        let run = |parallel: bool| {
            let mut c = cfg(3, 12);
            c.parallel = parallel;
            run_ul(
                c,
                |_| PanicOn::at(Counter { heard: 0 }, NodeId(2), 4),
                &mut FaithfulUl,
            )
        };
        let serial = run(false);
        assert_eq!(serial.stats.panics, 1);
        assert_eq!(serial.stats.crashes, 1);
        assert_eq!(serial.stats.restarts, 0);
        // Crashed from its panicking round 4 to the end of the run.
        assert_eq!(serial.stats.crashed_rounds[NodeId(2).idx()], 8);
        // The run completed: the other nodes kept sending every round.
        assert_eq!(serial.stats.messages_sent, 3 * 2 * 12 - 2 * 8);
        // The pool engine converts the panic identically.
        let pooled = run(true);
        assert_eq!(serial, pooled);
    }
}
