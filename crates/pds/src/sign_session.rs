//! One distributed-signing session (`ASign`) as a pure state machine.
//!
//! Timeline in logical rounds (session created at tick `T` when the node is
//! asked to sign):
//!
//! | tick  | action |
//! |-------|--------|
//! | T     | broadcast `SignInit` with a fresh nonce commitment |
//! | T+1   | fix the signer set `S` from received inits; the lowest `t+1` become *active*; active signers broadcast attempt-0 partials |
//! | T+2   | verify partials; all good → combine, broadcast `SignDone`; else exclude cheaters/missing, active signers of attempt 1 broadcast fresh `SignRetryNonce`s |
//! | T+3   | attempt-1 partials |
//! | T+4   | combine or fail |
//!
//! Robustness: every partial is publicly verifiable against the signer's
//! share key and nonce commitment, so cheaters are identified exactly and a
//! retry (with *fresh* nonces — reusing a nonce across attempts would leak
//! the share) excludes them. One retry suffices against `t` cheaters when
//! `|S| ≥ t+1` honest signers participate, because verification failures
//! only ever exclude cheaters.
//!
//! Drivers must ask all intended signers at the same logical tick (the ideal
//! process of §3.1 likewise requires sign requests to fall in one time unit).

use crate::msg::{signing_payload, AlsMsg, Sid};
use proauth_crypto::dkg::KeyShare;
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::{Signature, VerifyKey};
use proauth_crypto::thresh::{self, Nonce, NoncePool, SignerPrecomp};
use proauth_primitives::bigint::BigUint;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum signing attempts (initial + one retry).
const MAX_ATTEMPTS: u32 = 2;

/// Session progress.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Waiting for the signer set to materialize (tick T → T+1).
    AwaitInits,
    /// Waiting for partials of `attempt`.
    AwaitPartials {
        attempt: u32,
        active: Vec<u32>,
        nonces: BTreeMap<u32, BigUint>,
    },
    /// Waiting for fresh nonces of `attempt`.
    AwaitRetryNonces { attempt: u32, active: Vec<u32> },
    /// Finished with a signature.
    Done,
    /// Gave up.
    Failed,
}

/// A signing session for one `(msg, unit)` pair.
#[derive(Debug, Clone)]
pub struct SignSession {
    /// Session id.
    pub sid: Sid,
    /// The message being signed.
    pub msg: Vec<u8>,
    /// The time unit of the request.
    pub unit: u64,
    me: u32,
    t: usize,
    state: State,
    /// Nonce commitments from `SignInit`s (the signer set `S`).
    inits: BTreeMap<u32, BigUint>,
    /// Partials of the current attempt.
    partials: BTreeMap<u32, BigUint>,
    /// Fresh nonces for the retry attempt.
    retry_nonces: BTreeMap<u32, BigUint>,
    /// Signers excluded for cheating or missing messages.
    excluded: BTreeSet<u32>,
    /// Every nonce commitment accepted per signer across all attempts
    /// (big-endian bytes). A retry nonce colliding with any of these is
    /// nonce reuse — cheating, since `k` reuse across challenges leaks the
    /// share — and gets the signer excluded.
    seen_commitments: BTreeMap<u32, BTreeSet<Vec<u8>>>,
    /// Whether partial verification runs batch-first (RLC) or per-signer.
    batch_partials: bool,
    /// My nonce for the current attempt.
    my_nonce: Option<Nonce>,
    /// The completed signature, if any.
    result: Option<Signature>,
    /// Logical ticks since creation (maintained by the driver via
    /// [`SignSession::bump_age`]).
    age: u32,
}

impl SignSession {
    /// Starts a session at the node that was asked to sign. Returns the
    /// session plus the `SignInit` broadcast (`None` if the node holds no
    /// share and thus only listens for the result).
    #[allow(clippy::too_many_arguments)]
    pub fn start<R: rand::RngCore>(
        group: &Group,
        me: u32,
        t: usize,
        sid: Sid,
        msg: Vec<u8>,
        unit: u64,
        has_share: bool,
        rng: &mut R,
    ) -> (Self, Option<AlsMsg>) {
        let nonce = has_share.then(|| thresh::generate_nonce(group, rng));
        Self::start_with_nonce(me, t, sid, msg, unit, nonce)
    }

    /// Like [`SignSession::start`], but with the attempt-0 nonce supplied by
    /// the caller — typically popped from a preprocessed
    /// [`NoncePool`] so session start does no exponentiation.
    /// `None` means the node holds no share and only listens.
    pub fn start_with_nonce(
        me: u32,
        t: usize,
        sid: Sid,
        msg: Vec<u8>,
        unit: u64,
        nonce: Option<Nonce>,
    ) -> (Self, Option<AlsMsg>) {
        let mut session = SignSession {
            sid,
            msg,
            unit,
            me,
            t,
            state: State::AwaitInits,
            inits: BTreeMap::new(),
            partials: BTreeMap::new(),
            retry_nonces: BTreeMap::new(),
            excluded: BTreeSet::new(),
            seen_commitments: BTreeMap::new(),
            batch_partials: true,
            my_nonce: None,
            result: None,
            age: 0,
        };
        let Some(nonce) = nonce else {
            return (session, None);
        };
        session.inits.insert(me, nonce.commitment.clone());
        session.note_commitment(me, &nonce.commitment);
        let init = AlsMsg::SignInit {
            sid,
            msg: session.msg.clone(),
            unit,
            nonce: nonce.commitment.clone(),
        };
        session.my_nonce = Some(nonce);
        (session, Some(init))
    }

    /// Switches between RLC batch-first partial verification (the default)
    /// and per-signer verification only.
    pub fn set_batch_partials(&mut self, on: bool) {
        self.batch_partials = on;
    }

    /// Signers excluded so far (cheating, silence, or nonce reuse).
    pub fn excluded(&self) -> &BTreeSet<u32> {
        &self.excluded
    }

    fn note_commitment(&mut self, signer: u32, commitment: &BigUint) {
        self.seen_commitments
            .entry(signer)
            .or_default()
            .insert(commitment.to_bytes_be());
    }

    /// Logical ticks since creation.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Advances the driver-maintained age counter.
    pub fn bump_age(&mut self) {
        self.age += 1;
    }

    /// Whether the session completed successfully.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Whether the session failed permanently.
    pub fn is_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// The produced signature, once done.
    pub fn result(&self) -> Option<&Signature> {
        self.result.as_ref()
    }

    /// Feeds an incoming session message (called on delivery).
    pub fn handle(&mut self, group: &Group, public_key: &BigUint, from: u32, msg: &AlsMsg) {
        match msg {
            AlsMsg::SignInit { nonce, .. }
                // No subgroup-membership modpow here (it used to cost every
                // receiver one full exponentiation per init): membership is
                // implied by the partial-check equation `g^{z_i} = R_i ·
                // X_i^{e·λ_i}` — its left side is a subgroup member and
                // `X_i` is Feldman-validated, so an off-subgroup `R_i` can
                // never satisfy it and its sender is identified and
                // excluded at evaluation like any other cheater.
                if matches!(self.state, State::AwaitInits) => {
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        self.inits.entry(from)
                    {
                        slot.insert(nonce.clone());
                        self.note_commitment(from, nonce);
                    }
                }
            AlsMsg::SignPartial { attempt, z, .. } => {
                if let State::AwaitPartials {
                    attempt: cur,
                    active,
                    ..
                } = &self.state
                {
                    if *attempt == *cur && active.contains(&from) {
                        self.partials.entry(from).or_insert_with(|| z.clone());
                    }
                }
            }
            AlsMsg::SignRetryNonce { attempt, nonce, .. } => {
                let expected = matches!(
                    &self.state,
                    State::AwaitRetryNonces { attempt: cur, active }
                        if *attempt == *cur && active.contains(&from)
                );
                if !expected || !group.contains(nonce) || self.excluded.contains(&from) {
                    return;
                }
                if self.retry_nonces.get(&from) == Some(nonce) {
                    return; // duplicate delivery of the accepted nonce
                }
                // Nonce hygiene: a "fresh" retry nonce matching any
                // commitment this signer already used in the session is
                // reuse — it would put one `k` under two challenges, which
                // solves for the share. Treat it as cheating, not as a
                // nonce to accept.
                let bytes = nonce.to_bytes_be();
                let reused = self
                    .seen_commitments
                    .get(&from)
                    .is_some_and(|seen| seen.contains(&bytes));
                if reused {
                    self.excluded.insert(from);
                    self.retry_nonces.remove(&from);
                    return;
                }
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    self.retry_nonces.entry(from)
                {
                    slot.insert(nonce.clone());
                    self.note_commitment(from, nonce);
                }
            }
            AlsMsg::SignDone { e, s, .. }
                if self.result.is_none() => {
                    let sig = Signature {
                        e: e.clone(),
                        s: s.clone(),
                    };
                    // The caller's public key is the adopted DKG output
                    // (subgroup member by construction), so skip the
                    // membership modpow on this per-delivery path.
                    let vk = VerifyKey::from_element_trusted(group, public_key.clone());
                    if vk.verify(&signing_payload(&self.msg, self.unit), &sig) {
                        self.result = Some(sig);
                        self.state = State::Done;
                    }
                }
            _ => {}
        }
    }

    /// Advances the session by one logical tick; returns broadcasts.
    pub fn tick<R: rand::RngCore>(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        public_key: &BigUint,
        rng: &mut R,
    ) -> Vec<AlsMsg> {
        self.tick_with(group, key, public_key, None, None, rng)
    }

    /// Like [`SignSession::tick`], but draws any retry nonce from `pool`
    /// first (falling back to fresh generation when the pool is `None` or
    /// empty) and reads Lagrange coefficients from `lagrange` (falling back
    /// to inline computation). Both are the preprocessing levers: with them
    /// warmed during the refresh window, the online tick is mostly
    /// multi-exponentiation.
    pub fn tick_with<R: rand::RngCore>(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        public_key: &BigUint,
        pool: Option<&mut NoncePool>,
        lagrange: Option<&mut SignerPrecomp>,
        rng: &mut R,
    ) -> Vec<AlsMsg> {
        match std::mem::replace(&mut self.state, State::Failed) {
            State::AwaitInits => self.fix_signer_set(group, key, lagrange),
            State::AwaitPartials {
                attempt,
                active,
                nonces,
            } => self.evaluate_partials(
                group, key, public_key, attempt, active, nonces, pool, lagrange, rng,
            ),
            State::AwaitRetryNonces { attempt, active } => {
                self.emit_retry_partials(group, key, public_key, attempt, active, lagrange)
            }
            done_or_failed => {
                self.state = done_or_failed;
                Vec::new()
            }
        }
    }

    /// Tick T+1: the signer set is whatever inits arrived.
    fn fix_signer_set(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        lagrange: Option<&mut SignerPrecomp>,
    ) -> Vec<AlsMsg> {
        let signers: Vec<u32> = self.inits.keys().copied().collect();
        if signers.len() < self.t + 1 {
            self.state = State::Failed;
            return Vec::new();
        }
        let active: Vec<u32> = signers.iter().take(self.t + 1).copied().collect();
        let nonces: BTreeMap<u32, BigUint> = active
            .iter()
            .map(|i| (*i, self.inits[i].clone()))
            .collect();
        self.partials.clear();
        let out = self.my_partial(group, key, 0, &active, &nonces, lagrange);
        self.state = State::AwaitPartials {
            attempt: 0,
            active,
            nonces,
        };
        out
    }

    /// Computes and stores my partial for `attempt` if I am active.
    fn my_partial(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        attempt: u32,
        active: &[u32],
        nonces: &BTreeMap<u32, BigUint>,
        lagrange: Option<&mut SignerPrecomp>,
    ) -> Vec<AlsMsg> {
        let (Some(key), Some(nonce)) = (key, self.my_nonce.as_ref()) else {
            return Vec::new();
        };
        if !active.contains(&self.me) || nonces.len() != active.len() {
            return Vec::new();
        }
        let commitments: Vec<BigUint> = active.iter().map(|i| nonces[i].clone()).collect();
        let r = thresh::combine_nonces(group, &commitments);
        let e = thresh::challenge(
            group,
            &r,
            &key.public_key,
            &signing_payload(&self.msg, self.unit),
        );
        let z = match lagrange
            .and_then(|p| p.coeffs(group, active).get(&self.me).cloned())
        {
            Some(lambda) => thresh::partial_sign_with_coeff(group, key, &lambda, nonce, &e),
            None => thresh::partial_sign(group, key, active, nonce, &e),
        };
        self.partials.insert(self.me, z.clone());
        vec![AlsMsg::SignPartial {
            sid: self.sid,
            attempt,
            z,
        }]
    }

    /// Tick T+2 / T+4: combine or retry.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_partials<R: rand::RngCore>(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        public_key: &BigUint,
        attempt: u32,
        active: Vec<u32>,
        nonces: BTreeMap<u32, BigUint>,
        pool: Option<&mut NoncePool>,
        mut lagrange: Option<&mut SignerPrecomp>,
        rng: &mut R,
    ) -> Vec<AlsMsg> {
        // Verify partials against public data; identify cheaters/missing.
        let mut good: Vec<BigUint> = Vec::new();
        let mut bad: Vec<u32> = Vec::new();
        let share_keys = key.map(|k| k.share_keys.clone());
        if nonces.len() == active.len() {
            let commitments: Vec<BigUint> = active.iter().map(|i| nonces[i].clone()).collect();
            let r = thresh::combine_nonces(group, &commitments);
            let e = thresh::challenge(group, &r, public_key, &signing_payload(&self.msg, self.unit));
            let mut optimistic = false;
            if let Some(keys) = share_keys.as_ref() {
                let mut checks: Vec<thresh::PartialCheck<'_>> = Vec::new();
                for &i in &active {
                    match self.partials.get(&i) {
                        Some(z) => checks.push(thresh::PartialCheck {
                            signer: i,
                            share_key: &keys[(i - 1) as usize],
                            nonce_commitment: &nonces[&i],
                            z_i: z,
                        }),
                        None => bad.push(i),
                    }
                }
                if self.batch_partials && bad.is_empty() {
                    // Optimistic combine: with every partial present, the
                    // full verification of the combined signature below is
                    // itself the batched partial check — one two-term
                    // multi-exp covers all t+1 partials, so the per-signer
                    // checks (and even a random-linear-combination batch
                    // over them, which still pays a fresh Straus chain per
                    // transient `R_i`) would be pure overhead on the honest
                    // path. On mismatch the exact per-signer fallback below
                    // pinpoints whom to exclude, so robustness is unchanged
                    // — a cheater merely costs this one extra pass.
                    good.extend(checks.iter().map(|c| c.z_i.clone()));
                    optimistic = true;
                } else {
                    // A partial is missing, or batching is off: per-signer
                    // checks pinpoint whom to exclude.
                    let coeffs = lagrange
                        .as_deref_mut()
                        .map(|p| p.coeffs(group, &active).clone());
                    for c in &checks {
                        let lambda = match coeffs.as_ref().and_then(|m| m.get(&c.signer)) {
                            Some(l) => l.clone(),
                            None => proauth_crypto::shamir::lagrange_coeff_at_zero(
                                group, &active, c.signer,
                            ),
                        };
                        if thresh::verify_partial_preverified(
                            group,
                            c.share_key,
                            c.nonce_commitment,
                            &lambda,
                            &e,
                            c.z_i,
                        ) {
                            good.push(c.z_i.clone());
                        } else {
                            bad.push(c.signer);
                        }
                    }
                }
            } else {
                bad = active.clone();
            }
            if bad.is_empty() && good.len() == active.len() {
                let sig = thresh::combine_partials(group, &e, &good);
                // Final check before declaring success. The public key is
                // the adopted DKG output, a subgroup member by construction,
                // so the trusted constructor skips the membership modpow
                // this path used to pay once per evaluation.
                let vk = VerifyKey::from_element_trusted(group, public_key.clone());
                if vk.verify(&signing_payload(&self.msg, self.unit), &sig) {
                    let done = AlsMsg::SignDone {
                        sid: self.sid,
                        e: sig.e.clone(),
                        s: sig.s.clone(),
                    };
                    self.result = Some(sig);
                    self.state = State::Done;
                    return vec![done];
                }
                // The optimistic path combined unverified partials and the
                // signature does not check out: someone cheated. Exact
                // per-signer checks pinpoint whom to exclude — their
                // equation implies subgroup membership of the commitment
                // (see the `SignInit` handler), so whoever passes is
                // genuinely good.
                if optimistic {
                    if let Some(keys) = share_keys.as_ref() {
                        good.clear();
                        let coeffs = lagrange
                            .as_mut()
                            .map(|p| p.coeffs(group, &active).clone());
                        for &i in &active {
                            let Some(z) = self.partials.get(&i) else {
                                bad.push(i);
                                continue;
                            };
                            let lambda = match coeffs.as_ref().and_then(|m| m.get(&i)) {
                                Some(l) => l.clone(),
                                None => proauth_crypto::shamir::lagrange_coeff_at_zero(
                                    group, &active, i,
                                ),
                            };
                            if thresh::verify_partial_preverified(
                                group,
                                &keys[(i - 1) as usize],
                                &nonces[&i],
                                &lambda,
                                &e,
                                z,
                            ) {
                                good.push(z.clone());
                            } else {
                                bad.push(i);
                            }
                        }
                    }
                }
                if bad.is_empty() {
                    bad = active.clone(); // truly inconsistent: restart fully
                }
            }
        } else {
            bad = active.clone();
        }

        // Retry with cheaters excluded and fresh nonces.
        self.excluded.extend(bad);
        let next_attempt = attempt + 1;
        if next_attempt >= MAX_ATTEMPTS {
            self.state = State::Failed;
            return Vec::new();
        }
        let candidates: Vec<u32> = self
            .inits
            .keys()
            .copied()
            .filter(|i| !self.excluded.contains(i))
            .collect();
        if candidates.len() < self.t + 1 {
            self.state = State::Failed;
            return Vec::new();
        }
        let active: Vec<u32> = candidates.into_iter().take(self.t + 1).collect();
        self.retry_nonces.clear();
        self.partials.clear();
        let mut out = Vec::new();
        if active.contains(&self.me) && key.is_some() {
            let nonce = pool
                .and_then(NoncePool::take)
                .unwrap_or_else(|| thresh::generate_nonce(group, rng));
            self.retry_nonces.insert(self.me, nonce.commitment.clone());
            self.note_commitment(self.me, &nonce.commitment);
            out.push(AlsMsg::SignRetryNonce {
                sid: self.sid,
                attempt: next_attempt,
                nonce: nonce.commitment.clone(),
            });
            self.my_nonce = Some(nonce);
        }
        self.state = State::AwaitRetryNonces {
            attempt: next_attempt,
            active,
        };
        out
    }

    /// Tick T+3: all retry nonces should be in; broadcast retry partials.
    fn emit_retry_partials(
        &mut self,
        group: &Group,
        key: Option<&KeyShare>,
        _public_key: &BigUint,
        attempt: u32,
        active: Vec<u32>,
        lagrange: Option<&mut SignerPrecomp>,
    ) -> Vec<AlsMsg> {
        let nonces = std::mem::take(&mut self.retry_nonces);
        if !active.iter().all(|i| nonces.contains_key(i)) {
            // A retry signer went silent; no further attempts would have
            // consistent nonce sets, so give up.
            self.state = State::Failed;
            return Vec::new();
        }
        self.partials.clear();
        let out = self.my_partial(group, key, attempt, &active, &nonces, lagrange);
        self.state = State::AwaitPartials {
            attempt,
            active,
            nonces,
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::sid_for;
    use proauth_crypto::dkg::{self, ReceivedDealing};
    use proauth_crypto::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, proauth_crypto::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, keys)
    }

    /// Drives `n` sessions in lockstep with faithful broadcast delivery.
    /// `drop_partial_from` simulates a signer whose partials never arrive.
    fn drive(
        group: &Group,
        keys: &[KeyShare],
        t: usize,
        participants: &[u32],
        drop_partial_from: Option<u32>,
        ticks: u32,
    ) -> Vec<SignSession> {
        let mut rng = StdRng::seed_from_u64(1000);
        let sid = sid_for(b"msg", 1);
        let pk = keys[0].public_key.clone();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        for &p in participants {
            let (s, init) = SignSession::start(
                group,
                p,
                t,
                sid,
                b"msg".to_vec(),
                1,
                true,
                &mut rng,
            );
            sessions.insert(p, s);
            if let Some(init) = init {
                in_flight.push((p, init));
            }
        }
        for _ in 0..ticks {
            // Deliver.
            let delivered = std::mem::take(&mut in_flight);
            for (from, msg) in &delivered {
                // A "silenced" signer's partials AND completed-signature
                // gossip are suppressed (it went dark mid-protocol).
                let drop = matches!(
                    msg,
                    AlsMsg::SignPartial { .. } | AlsMsg::SignDone { .. }
                ) && Some(*from) == drop_partial_from;
                if drop {
                    continue;
                }
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(group, &pk, *from, msg);
                    }
                }
            }
            // Tick.
            for (&p, s) in sessions.iter_mut() {
                let key = &keys[(p - 1) as usize];
                for m in s.tick(group, Some(key), &pk, &mut rng) {
                    in_flight.push((p, m));
                }
            }
        }
        sessions.into_values().collect()
    }

    #[test]
    fn happy_path_signs_in_three_ticks() {
        let (group, keys) = dkg_keys(5, 2, 101);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3, 4, 5], None, 3);
        for s in &sessions {
            assert!(s.is_done(), "session at {} done", s.me);
            let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
            assert!(vk.verify(&signing_payload(b"msg", 1), s.result().unwrap()));
        }
    }

    #[test]
    fn exactly_t_plus_one_signers_suffice() {
        let (group, keys) = dkg_keys(5, 2, 102);
        let sessions = drive(&group, &keys, 2, &[2, 4, 5], None, 3);
        assert!(sessions.iter().all(SignSession::is_done));
    }

    #[test]
    fn too_few_signers_fail() {
        let (group, keys) = dkg_keys(5, 2, 103);
        let sessions = drive(&group, &keys, 2, &[1, 2], None, 5);
        assert!(sessions.iter().all(SignSession::is_failed));
    }

    #[test]
    fn retry_recovers_from_silent_signer() {
        // 4 participants, t=2: active = {1,2,3}; node 1's partials are
        // dropped; retry with {2,3,4} succeeds by tick 5.
        let (group, keys) = dkg_keys(5, 2, 104);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3, 4], Some(1), 5);
        for s in sessions.iter().filter(|s| s.me != 1) {
            assert!(s.is_done(), "session at {} done after retry", s.me);
        }
    }

    #[test]
    fn silent_signer_with_no_spare_fails() {
        // Exactly t+1 participants and one goes silent: no quorum remains.
        let (group, keys) = dkg_keys(5, 2, 105);
        let sessions = drive(&group, &keys, 2, &[1, 2, 3], Some(1), 6);
        for s in sessions.iter().filter(|s| s.me != 1) {
            assert!(s.is_failed(), "node {} should fail", s.me);
        }
    }

    #[test]
    fn share_less_node_learns_result_from_done() {
        let (group, keys) = dkg_keys(5, 2, 106);
        let mut rng = StdRng::seed_from_u64(2000);
        let sid = sid_for(b"m2", 3);
        let pk = keys[0].public_key.clone();
        // Node 5 has no share; it only listens.
        let (mut listener, init) =
            SignSession::start(&group, 5, 2, sid, b"m2".to_vec(), 3, false, &mut rng);
        assert!(init.is_none());
        // Make a real signature out-of-band and feed SignDone.
        let sessions = {
            let mut s = BTreeMap::new();
            for p in [1u32, 2, 3] {
                let (sess, i) = SignSession::start(
                    &group,
                    p,
                    2,
                    sid,
                    b"m2".to_vec(),
                    3,
                    true,
                    &mut rng,
                );
                s.insert(p, (sess, i.unwrap()));
            }
            s
        };
        let mut live: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut msgs: Vec<(u32, AlsMsg)> = Vec::new();
        for (p, (sess, init)) in sessions {
            live.insert(p, sess);
            msgs.push((p, init));
        }
        for _ in 0..3 {
            let delivered = std::mem::take(&mut msgs);
            for (from, m) in &delivered {
                for (&p, s) in live.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, m);
                    }
                }
                listener.handle(&group, &pk, *from, m);
            }
            for (&p, s) in live.iter_mut() {
                for m in s.tick(&group, Some(&keys[(p - 1) as usize]), &pk, &mut rng) {
                    msgs.push((p, m));
                }
            }
        }
        // Deliver the final SignDone round to the listener.
        for (from, m) in &msgs {
            listener.handle(&group, &pk, *from, m);
        }
        assert!(listener.is_done());
    }

    #[test]
    fn chaotic_delivery_garbles_partial_then_retry_excludes_and_signs_fresh() {
        // The network tampers with everything node 1 sends (its partials
        // arrive garbled, its SignDone never arrives) and delivers the rest
        // chaotically: every message duplicated, each tick's batch reversed.
        // Public verifiability must pin the blame on signer 1 exactly, and
        // the retry must run with FRESH nonces — reusing attempt-0 nonces
        // would leak shares.
        let (group, keys) = dkg_keys(5, 2, 108);
        let t = 2;
        let mut rng = StdRng::seed_from_u64(4000);
        let sid = sid_for(b"chaos", 1);
        let pk = keys[0].public_key.clone();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        for p in [1u32, 2, 3, 4] {
            let (s, init) =
                SignSession::start(&group, p, t, sid, b"chaos".to_vec(), 1, true, &mut rng);
            sessions.insert(p, s);
            in_flight.push((p, init.unwrap()));
        }
        let mut transcript: Vec<(u32, AlsMsg)> = Vec::new();
        for _ in 0..6 {
            let mut chaotic: Vec<(u32, AlsMsg)> = Vec::new();
            for (i, (from, msg)) in std::mem::take(&mut in_flight).into_iter().enumerate() {
                let msg = match (from, msg) {
                    (1, AlsMsg::SignPartial { sid, attempt, .. }) => AlsMsg::SignPartial {
                        sid,
                        attempt,
                        z: BigUint::from_u64(0xBAD),
                    },
                    (1, AlsMsg::SignDone { .. }) => continue,
                    (_, msg) => msg,
                };
                if i % 2 == 0 {
                    chaotic.push((from, msg.clone()));
                }
                chaotic.push((from, msg));
            }
            chaotic.reverse();
            for (from, msg) in &chaotic {
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, msg);
                    }
                }
            }
            transcript.extend(chaotic);
            for (&p, s) in sessions.iter_mut() {
                for m in s.tick(&group, Some(&keys[(p - 1) as usize]), &pk, &mut rng) {
                    in_flight.push((p, m));
                }
            }
        }

        // Everyone except the tampered node completes with a valid signature.
        let vk = VerifyKey::from_element(&group, pk.clone()).unwrap();
        for s in sessions.values().filter(|s| s.me != 1) {
            assert!(s.is_done(), "session at {} done after retry", s.me);
            assert!(vk.verify(&signing_payload(b"chaos", 1), s.result().unwrap()));
        }

        // The retry ran, and exactly the tampered signer was excluded from
        // the attempt-1 signer set.
        let attempt1_partials: BTreeSet<u32> = transcript
            .iter()
            .filter(|(_, m)| matches!(m, AlsMsg::SignPartial { attempt: 1, .. }))
            .map(|(from, _)| *from)
            .collect();
        assert_eq!(attempt1_partials, BTreeSet::from([2, 3, 4]));

        // Fresh nonces: each retry commitment differs from the same signer's
        // attempt-0 commitment.
        for signer in [2u32, 3, 4] {
            let init_nonce = transcript
                .iter()
                .find_map(|(from, m)| match m {
                    AlsMsg::SignInit { nonce, .. } if *from == signer => Some(nonce.clone()),
                    _ => None,
                })
                .unwrap();
            let retry_nonce = transcript
                .iter()
                .find_map(|(from, m)| match m {
                    AlsMsg::SignRetryNonce { nonce, .. } if *from == signer => Some(nonce.clone()),
                    _ => None,
                })
                .expect("retry nonce broadcast");
            assert_ne!(init_nonce, retry_nonce, "signer {signer} reused a nonce");
        }
    }

    /// Drives 4 sessions with node 2's partials garbled (forcing a retry
    /// with active = {1, 3, 4}) and `tamper` applied to every message in
    /// flight. Returns the final sessions.
    fn drive_retry_with(
        tamper: impl Fn(u32, AlsMsg, &[(u32, AlsMsg)]) -> AlsMsg,
    ) -> (Group, BTreeMap<u32, SignSession>) {
        let (group, keys) = dkg_keys(5, 2, 109);
        let mut rng = StdRng::seed_from_u64(5000);
        let sid = sid_for(b"reuse", 1);
        let pk = keys[0].public_key.clone();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        let mut transcript: Vec<(u32, AlsMsg)> = Vec::new();
        for p in [1u32, 2, 3, 4] {
            let (s, init) =
                SignSession::start(&group, p, 2, sid, b"reuse".to_vec(), 1, true, &mut rng);
            sessions.insert(p, s);
            in_flight.push((p, init.unwrap()));
        }
        for _ in 0..6 {
            let batch: Vec<(u32, AlsMsg)> = std::mem::take(&mut in_flight)
                .into_iter()
                .filter_map(|(from, msg)| {
                    let msg = match (from, msg) {
                        // Node 2 "cheats" on attempt 0 (its outbound partial
                        // is garbled) → excluded on retry. Its local session
                        // still completes honestly, so its SignDone gossip is
                        // suppressed too — the point is to observe the retry.
                        (2, AlsMsg::SignPartial { sid, attempt: 0, .. }) => AlsMsg::SignPartial {
                            sid,
                            attempt: 0,
                            z: BigUint::from_u64(0xBAD),
                        },
                        (2, AlsMsg::SignDone { .. }) => return None,
                        (from, msg) => tamper(from, msg, &transcript),
                    };
                    Some((from, msg))
                })
                .collect();
            // Deliver every message twice: duplication is the network's
            // prerogative and must never read as cheating.
            for (from, msg) in batch.iter().chain(batch.iter()) {
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, msg);
                    }
                }
            }
            transcript.extend(batch);
            for (&p, s) in sessions.iter_mut() {
                for m in s.tick(&group, Some(&keys[(p - 1) as usize]), &pk, &mut rng) {
                    in_flight.push((p, m));
                }
            }
        }
        (group, sessions)
    }

    #[test]
    fn reused_retry_nonce_is_cheating_not_accepted() {
        // Node 1's retry nonce is replaced with its own attempt-0 init
        // commitment: a reused nonce. Honest nodes must exclude node 1 (the
        // session fails for lack of a consistent retry set) rather than
        // silently accept the reuse and complete.
        let (_, sessions) = drive_retry_with(|from, msg, transcript| match (from, &msg) {
            (1, AlsMsg::SignRetryNonce { sid, attempt, .. }) => {
                let init_nonce = transcript
                    .iter()
                    .find_map(|(f, m)| match m {
                        AlsMsg::SignInit { nonce, .. } if *f == 1 => Some(nonce.clone()),
                        _ => None,
                    })
                    .expect("node 1's init in transcript");
                AlsMsg::SignRetryNonce {
                    sid: *sid,
                    attempt: *attempt,
                    nonce: init_nonce,
                }
            }
            _ => msg,
        });
        for s in sessions.values().filter(|s| s.me != 1 && s.me != 2) {
            assert!(s.is_failed(), "node {} must not complete on reuse", s.me);
            assert!(
                s.excluded().contains(&1),
                "node {} must flag the reuser",
                s.me
            );
        }
    }

    #[test]
    fn honest_retry_after_cheater_succeeds_and_dup_nonces_are_idempotent() {
        // Same scenario without the substitution — and every retry nonce
        // delivered twice. Duplicate delivery of the SAME commitment is the
        // network's doing, not reuse; the retry must complete.
        let (group, sessions) = drive_retry_with(|_, msg, _| msg);
        let (_, keys) = dkg_keys(5, 2, 109);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        for s in sessions.values().filter(|s| s.me != 2) {
            assert!(s.is_done(), "node {} done after honest retry", s.me);
            assert!(vk.verify(&signing_payload(b"reuse", 1), s.result().unwrap()));
            assert_eq!(s.excluded(), &BTreeSet::from([2]));
        }
    }

    #[test]
    fn pooled_nonces_drive_session_start_and_retry() {
        // Sessions started from a preprocessed pool, with the retry nonce
        // also pool-drawn, behave exactly like rng-backed sessions.
        let (group, keys) = dkg_keys(5, 2, 110);
        let mut rng = StdRng::seed_from_u64(6000);
        let sid = sid_for(b"pooled", 1);
        let pk = keys[0].public_key.clone();
        let mut pools: BTreeMap<u32, NoncePool> = (1..=4u32)
            .map(|p| {
                let mut pool = NoncePool::new(4);
                pool.refill(&group, &mut rng);
                (p, pool)
            })
            .collect();
        let mut sessions: BTreeMap<u32, SignSession> = BTreeMap::new();
        let mut in_flight: Vec<(u32, AlsMsg)> = Vec::new();
        for p in 1..=4u32 {
            let nonce = pools.get_mut(&p).unwrap().take();
            let (s, init) =
                SignSession::start_with_nonce(p, 2, sid, b"pooled".to_vec(), 1, nonce);
            sessions.insert(p, s);
            in_flight.push((p, init.unwrap()));
        }
        for _ in 0..6 {
            let batch: Vec<(u32, AlsMsg)> = std::mem::take(&mut in_flight)
                .into_iter()
                .map(|(from, msg)| match (from, msg) {
                    // Node 1 garbles attempt 0: forces a pool-drawn retry.
                    (1, AlsMsg::SignPartial { sid, attempt: 0, .. }) => (
                        1,
                        AlsMsg::SignPartial {
                            sid,
                            attempt: 0,
                            z: BigUint::from_u64(0xBAD),
                        },
                    ),
                    other => other,
                })
                .collect();
            for (from, msg) in &batch {
                for (&p, s) in sessions.iter_mut() {
                    if p != *from {
                        s.handle(&group, &pk, *from, msg);
                    }
                }
            }
            for (&p, s) in sessions.iter_mut() {
                let pool = pools.get_mut(&p);
                for m in
                    s.tick_with(&group, Some(&keys[(p - 1) as usize]), &pk, pool, None, &mut rng)
                {
                    in_flight.push((p, m));
                }
            }
        }
        let vk = VerifyKey::from_element(&group, pk).unwrap();
        for s in sessions.values().filter(|s| s.me != 1) {
            assert!(s.is_done(), "pooled session at {} done", s.me);
            assert!(vk.verify(&signing_payload(b"pooled", 1), s.result().unwrap()));
        }
        // Retry signers drew their fresh nonce from the pool: 2 spent each.
        for p in [2u32, 3, 4] {
            assert_eq!(pools[&p].spent_count(), 2, "node {p} pool accounting");
        }
    }

    #[test]
    fn forged_done_rejected() {
        let (group, keys) = dkg_keys(4, 1, 107);
        let mut rng = StdRng::seed_from_u64(3000);
        let sid = sid_for(b"m", 1);
        let (mut s, _) =
            SignSession::start(&group, 1, 1, sid, b"m".to_vec(), 1, true, &mut rng);
        s.handle(
            &group,
            &keys[0].public_key,
            2,
            &AlsMsg::SignDone {
                sid,
                e: BigUint::from_u64(1),
                s: BigUint::from_u64(2),
            },
        );
        assert!(!s.is_done());
    }
}
