//! E13 — signing-as-a-service sustained throughput (supplementary):
//! signatures per second of online (normal-phase) time for an ALS network
//! driven by the open-loop client workload generator, with sign latency
//! quantiles from the telemetry histograms.
//!
//! Not a paper claim: CHH97 prove *existence* of t-secure PDS schemes and
//! never cost the signing path. This experiment prices the service the
//! scheme actually provides — concurrent sign sessions per round — and
//! measures what the two amortization levers are worth:
//!
//! * **nonce preprocessing** (`AlsConfig::nonce_pool`): attempt-0 nonces
//!   come from a pool filled during setup and refilled in the refresh
//!   window, moving one exponentiation per session per node off the online
//!   path (the FROST preprocessing idea, single-nonce form);
//! * **batch windows** (`AlsConfig::verify_window`): partial-signature
//!   checks go through the RLC batch verifier, and responder-side client
//!   verification is queued and flushed through `schnorr::batch_verify`
//!   with per-item fallback. `window = 1` turns both off.
//!
//! Two parts:
//!
//! 1. a **smoke** run (toy group, n = 5, low arrival rate, preprocessing
//!    off/on) — fast enough for CI, run on whatever round engine
//!    `PROAUTH_THREADS` selects, so both ci.sh legs exercise the service
//!    path end to end;
//! 2. `PROAUTH_E13=full`: the **ablation grid** on the 256-bit group —
//!    preprocessing {off, on} × window {1, 8, 32} × n ∈ {5, 13} — plus a
//!    sustained row, with the headline ratio (n = 13, both levers on vs
//!    both off) printed and checked against the recorded baseline's ≥ 2×.
//!
//! Throughput is **online-phase**: distinct completed signatures divided by
//! `phase/normal_ns` engine time, so moving work into the refresh window
//! shows up as a win rather than a wash. Latency quantiles come from the
//! deterministic `pds/sign_latency_rounds` value histogram (rounds from
//! session start to combined signature).
//!
//! Run `CRITERION_JSON=BENCH_e13.json PROAUTH_E13=full cargo bench --bench
//! e13_signing_service` to regenerate the recorded baseline.

use proauth_bench::print_table;
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::als_node::AlsProcess;
use proauth_sim::adversary::PassiveAl;
use proauth_sim::clock::Schedule;
use proauth_sim::message::OutputEvent;
use proauth_sim::runner::{run_al_with_inputs, SimConfig};
use proauth_sim::workload::{Workload, WorkloadConfig};
use proauth_sim::Telemetry;
use std::collections::BTreeSet;
use std::io::Write as _;
use std::time::Instant;

/// One measured service run.
struct ServiceRun {
    /// Distinct `(msg, unit)` signatures completed network-wide.
    signed: u64,
    /// Sign operations the workload offered.
    offered: u64,
    /// Engine time spent in normal-phase rounds, ns.
    normal_ns: u64,
    /// Wall-clock for the whole run (setup + refresh included), ns.
    elapsed_ns: u64,
    /// p50/p95/p99 sign latency in rounds, from the value histogram.
    latency: [u64; 3],
    /// Nonce-pool hits and misses on the online path.
    pool_hit: u64,
    pool_miss: u64,
    /// Client verifications served through the batch path.
    verify_batched: u64,
    verify_ok: u64,
}

impl ServiceRun {
    /// Signatures per second of online (normal-phase) engine time.
    fn online_sigs_per_sec(&self) -> f64 {
        if self.normal_ns == 0 {
            return 0.0;
        }
        self.signed as f64 * 1e9 / self.normal_ns as f64
    }

    /// Signatures per second of total wall-clock (the sustained rate a
    /// client observes across refreshes).
    fn sustained_sigs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.signed as f64 * 1e9 / self.elapsed_ns as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn run_service(
    group_id: GroupId,
    n: usize,
    t: usize,
    units: u64,
    rate_millis: u64,
    preprocess: bool,
    window: usize,
    seed: u64,
) -> ServiceRun {
    let schedule = Schedule::new(20, 1, 8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = 2;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    let tele = Telemetry::enabled();
    cfg.telemetry = tele.clone();

    let workload = Workload::new(WorkloadConfig::with_rate(seed ^ 0xE13, rate_millis), n);
    let offered = workload.offered_signs(cfg.total_rounds) as u64;
    let group = Group::new(group_id);
    let start = Instant::now();
    let result = run_al_with_inputs(
        cfg,
        |id| {
            let mut c = AlsConfig::new(group.clone(), n, t);
            c.nonce_pool = if preprocess { 64 } else { 0 };
            c.verify_window = window;
            AlsProcess::new(AlsPds::new(c, id))
        },
        &mut PassiveAl,
        |id, round| workload.input(id, round),
    );
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let mut distinct: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
    for node_log in &result.outputs {
        for (_, ev) in node_log {
            if let OutputEvent::Signed { msg, unit } = ev {
                distinct.insert((msg.clone(), *unit));
            }
        }
    }
    let snap = tele.snapshot().expect("telemetry enabled");
    let normal_ns = snap.hists.get("phase/normal_ns").map_or(0, |h| h.sum_ns);
    let latency = snap
        .value_hists
        .get("pds/sign_latency_rounds")
        .map_or([0; 3], |h| {
            let q = h.quantiles_value(&[0.5, 0.95, 0.99]);
            [q[0], q[1], q[2]]
        });
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    ServiceRun {
        signed: distinct.len() as u64,
        offered,
        normal_ns,
        elapsed_ns,
        latency,
        pool_hit: counter("pds/nonce_pool_hit"),
        pool_miss: counter("pds/nonce_pool_miss"),
        verify_batched: counter("pds/verify_batched"),
        verify_ok: counter("pds/verify_ok"),
    }
}

fn row(n: usize, t: usize, label: &str, r: &ServiceRun) -> Vec<String> {
    vec![
        n.to_string(),
        t.to_string(),
        label.to_string(),
        format!("{}/{}", r.signed, r.offered),
        format!("{:.1}", r.online_sigs_per_sec()),
        format!("{:.1}", r.sustained_sigs_per_sec()),
        format!("{}/{}/{}", r.latency[0], r.latency[1], r.latency[2]),
        format!("{}/{}", r.pool_hit, r.pool_miss),
        format!("{}/{}", r.verify_batched, r.verify_ok),
    ]
}

fn json_line(id: &str, r: &ServiceRun) -> String {
    format!(
        "{{\"id\": \"{id}\", \"signed\": {}, \"offered\": {}, \
         \"online_sigs_per_sec\": {:.2}, \"sustained_sigs_per_sec\": {:.2}, \
         \"normal_ns\": {}, \"elapsed_ns\": {}, \
         \"latency_rounds_p50\": {}, \"latency_rounds_p95\": {}, \
         \"latency_rounds_p99\": {}, \"pool_hit\": {}, \"pool_miss\": {}, \
         \"verify_batched\": {}}}",
        r.signed,
        r.offered,
        r.online_sigs_per_sec(),
        r.sustained_sigs_per_sec(),
        r.normal_ns,
        r.elapsed_ns,
        r.latency[0],
        r.latency[1],
        r.latency[2],
        r.pool_hit,
        r.pool_miss,
        r.verify_batched,
    )
}

fn write_json(lines: &[String]) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for line in lines {
                let _ = writeln!(file, "{line}");
            }
        }
    }
}

const HEADERS: [&str; 9] = [
    "n",
    "t",
    "config",
    "signed/offered",
    "online sig/s",
    "sustained sig/s",
    "lat p50/p95/p99 (rounds)",
    "pool hit/miss",
    "batched/verify_ok",
];

/// Part 1: CI smoke — toy group, low arrival rate, preprocessing off/on.
/// Every offered signature must complete; the pool accounting must flip
/// from all-miss to all-hit.
fn smoke() {
    let (n, t) = (5usize, 2usize);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for preprocess in [false, true] {
        let r = run_service(GroupId::Toy64, n, t, 2, 1_500, preprocess, 8, 87);
        assert!(r.signed > 0, "smoke produced no signatures");
        // Sessions still in flight when a refresh window (or the end of the
        // run) arrives cannot complete — their partials verify against the
        // retiring sharing. Everything with runway must land.
        assert!(
            4 * r.signed >= 3 * r.offered,
            "smoke dropped too many signatures: {}/{}",
            r.signed,
            r.offered
        );
        if preprocess {
            assert_eq!(r.pool_miss, 0, "pool sized to cover the smoke rate");
        } else {
            assert_eq!(r.pool_hit, 0, "preprocessing off must not touch a pool");
        }
        let label = if preprocess { "preproc" } else { "no-preproc" };
        rows.push(row(n, t, label, &r));
        json.push(json_line(&format!("e13/smoke/{label}"), &r));
    }
    print_table(
        "E13 — signing-service smoke (toy group, 2 units, 1.5 ops/round)",
        &HEADERS,
        &rows,
    );
    write_json(&json);
}

/// Part 2 (`PROAUTH_E13=full`): the ablation grid on the 256-bit group,
/// where modular exponentiation dominates and the amortization levers are
/// actually priced.
fn ablation() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut headline: [f64; 2] = [0.0; 2]; // [both-off, both-on] at n = 13
    for (n, t) in [(5usize, 2usize), (13, 6)] {
        for preprocess in [false, true] {
            for window in [1usize, 8, 32] {
                let r = run_service(GroupId::S256, n, t, 2, 3_000, preprocess, window, 87);
                let label = format!(
                    "{}/w{window}",
                    if preprocess { "preproc" } else { "no-preproc" }
                );
                if n == 13 && !preprocess && window == 1 {
                    headline[0] = r.online_sigs_per_sec();
                }
                if n == 13 && preprocess && window == 32 {
                    headline[1] = r.online_sigs_per_sec();
                }
                json.push(json_line(&format!("e13/ablation/n{n}/{label}"), &r));
                rows.push(row(n, t, &label, &r));
            }
        }
    }
    print_table(
        "E13 — preprocessing × batch-window ablation (256-bit group, 2 units, 3 ops/round)",
        &HEADERS,
        &rows,
    );
    let ratio = if headline[0] > 0.0 { headline[1] / headline[0] } else { 0.0 };
    println!(
        "\nHeadline: n = 13 online throughput, preprocessing + window 32 vs both off: \
         {:.1} vs {:.1} sig/s — {ratio:.2}x",
        headline[1], headline[0],
    );
    json.push(format!(
        "{{\"id\": \"e13/headline/n13\", \"online_on\": {:.2}, \"online_off\": {:.2}, \
         \"speedup\": {ratio:.3}}}",
        headline[1], headline[0],
    ));
    write_json(&json);
}

/// Part 3 (`PROAUTH_E13=full`): the sustained row — a longer run with both
/// levers on, crossing several refresh windows, the configuration a
/// deployment would actually run.
fn sustained() {
    let (n, t) = (13usize, 6usize);
    let r = run_service(GroupId::S256, n, t, 4, 3_000, true, 32, 87);
    print_table(
        "E13 — sustained service (256-bit group, 4 units, preproc + window 32)",
        &HEADERS,
        &[row(n, t, "sustained", &r)],
    );
    write_json(&[json_line("e13/sustained/n13", &r)]);
}

fn main() {
    smoke();
    if std::env::var("PROAUTH_E13").as_deref() == Ok("full") {
        ablation();
        sustained();
    }
}
