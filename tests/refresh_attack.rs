//! Attacks on the share-refresh protocol itself (URfr Part II): a broken
//! node's identity is used to deal *equivocating* zero-sharings — different
//! commitment vectors to different receivers. The echo-broadcast consistency
//! layer must exclude the two-faced dealer at every honest node alike, and
//! the refresh must still succeed off the honest dealers' contributions.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::certify::{certify, LocalKeys};
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, PART1_ROUNDS, SETUP_ROUNDS};
use proauth_core::wire::{Blob, DisperseMsg, Inner, UlsWire};
use proauth_crypto::feldman::Dealing;
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::msg::AlsMsg;
use proauth_primitives::wire::Encode;
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

/// Breaks into node 5 for the whole unit-1 refresh, steals its *new* local
/// keys right after Part I would have adopted them is impossible (the node
/// does not run while broken) — instead the adversary itself announces a key
/// for node 5, harvests its certificate, and then deals equivocating
/// zero-sharings in node 5's name during Part II.
struct TwoFacedDealer {
    group: Group,
    unit_rounds: u64,
    fake_keys: Option<LocalKeys>,
    dealings_injected: u64,
    rng: StdRng,
}

impl TwoFacedDealer {
    fn new(group: Group, unit_rounds: u64) -> Self {
        TwoFacedDealer {
            group,
            unit_rounds,
            fake_keys: None,
            dealings_injected: 0,
            rng: StdRng::seed_from_u64(0x2FACE),
        }
    }
}

impl UlAdversary for TwoFacedDealer {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        // Keep node 5 broken for the whole of unit 1 (so its honest code
        // never runs and the adversary's dealing is the only one in its name).
        let unit1 = self.unit_rounds;
        if view.time.round == unit1 {
            BreakPlan::break_into([NodeId(5)])
        } else if view.time.round == 2 * unit1 {
            BreakPlan::leave([NodeId(5)])
        } else {
            BreakPlan::none()
        }
    }

    fn corrupt(&mut self, _node: NodeId, _state: &mut dyn std::any::Any, _time: &TimeView) {}

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let round = view.time.round;
        let unit1 = self.unit_rounds;
        let mut out: Vec<Envelope> = sent.to_vec();

        // Part I step 0 of unit 1: announce a fake key for node 5.
        if round == unit1 {
            let fake = LocalKeys::generate(&self.group, 1, &mut self.rng);
            let announce = UlsWire::KeyAnnounce {
                unit: 1,
                vk: fake.vk_bytes(),
            };
            for to in NodeId::all(view.n) {
                if to != NodeId(5) {
                    out.push(Envelope::new(NodeId(5), to, announce.to_bytes()));
                }
            }
            self.fake_keys = Some(fake);
        }

        // Harvest the certificate for the fake key from CertDeliver traffic.
        if let Some(fake) = &mut self.fake_keys {
            if fake.cert.is_none() {
                for env in sent {
                    let Ok(UlsWire::Disperse(d)) = proauth_primitives::wire::Decode::from_bytes(
                        &env.payload,
                    ) else {
                        continue;
                    };
                    let blob = match d {
                        DisperseMsg::Forward { blob, .. } => blob,
                        DisperseMsg::Forwarding { blob, .. } => blob,
                    };
                    if let Ok(Blob::CertDeliver {
                        subject, unit, vk, cert,
                    }) = proauth_primitives::wire::Decode::from_bytes(blob.as_bytes())
                    {
                        if subject == 5 && unit == 1 && vk == fake.vk_bytes() {
                            fake.cert = Some(cert);
                            break;
                        }
                    }
                }
            }
        }

        // Part II step 0 of unit 1: inject TWO DIFFERENT zero-dealings in
        // node 5's name — commitments A to nodes 1–2, commitments B to 3–4.
        let part2_start = unit1 + PART1_ROUNDS;
        if round == part2_start {
            if let Some(fake) = self.fake_keys.clone() {
                if fake.cert.is_some() {
                    let deal_a = Dealing::deal_zero(&self.group, T, N, &mut self.rng);
                    let deal_b = Dealing::deal_zero(&self.group, T, N, &mut self.rng);
                    for to in NodeId::all(N) {
                        if to == NodeId(5) {
                            continue;
                        }
                        let deal = if to.0 <= 2 { &deal_a } else { &deal_b };
                        let msg = AlsMsg::RfrDeal {
                            unit: 1,
                            commitments: deal.commitments.clone(),
                            share: deal.share_for(to.0).clone(),
                        };
                        let inner = Inner::Pds(msg.to_bytes());
                        // Certify for arrival at round + 1 → w = round - 1.
                        if let Some(cmsg) = certify(
                            &fake,
                            &inner.to_bytes(),
                            NodeId(5),
                            to,
                            round - 1,
                            &mut self.rng,
                        ) {
                            let wire = UlsWire::Disperse(DisperseMsg::Forwarding {
                                origin: 5,
                                blob: Blob::Certified(cmsg).intern(),
                            });
                            out.push(Envelope::new(NodeId(5), to, wire.to_bytes()));
                            self.dealings_injected += 1;
                        }
                    }
                }
            }
        }
        out
    }
}

#[test]
fn two_faced_refresh_dealer_is_excluded_consistently() {
    let schedule = uls_schedule(NORMAL);
    let mut cfg = SimConfig::new(N, T, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 3;
    cfg.seed = 51;
    let group = Group::new(GroupId::Toy64);
    let mut adv = TwoFacedDealer::new(group.clone(), schedule.unit_rounds);
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), N, T), id, HeartbeatApp::default()),
        &mut adv,
    );
    assert!(
        adv.dealings_injected > 0,
        "the attack actually injected equivocating dealings"
    );
    // The honest nodes completed the refresh without alerts: the echo layer
    // found no n−t majority for either commitment vector, so every honest
    // node dropped dealer 5 and applied the same qualified set.
    for id in [NodeId(1), NodeId(2), NodeId(3), NodeId(4)] {
        assert!(
            !result.alerted_in_unit(id, 1, &schedule),
            "{id} refreshed cleanly despite the equivocation"
        );
    }
    // Honest traffic flows in unit 2 — shares stayed consistent (an
    // inconsistent share set would break all subsequent certificates).
    let unit2_normal = 2 * schedule.unit_rounds + schedule.refresh_rounds();
    let late_accepts = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(5).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, e)| {
            *round > unit2_normal && matches!(e, OutputEvent::Accepted { .. })
        })
        .count();
    assert!(late_accepts > 0, "unit-2 certificates work ⇒ shares consistent");
    // Node 5 (broken through its own refresh) recovers at the unit-2 refresh.
    assert!(result.final_operational[NodeId(5).idx()]);
}
