//! The metrics registry: counters, max-gauges, and fixed-bucket histograms,
//! plus the per-node **shards** that keep recording deterministic under the
//! worker-pool engine.
//!
//! # Determinism rules
//!
//! Nothing here may make simulation results depend on scheduling:
//!
//! * counter and gauge merges are commutative (sums and maxes), so the
//!   registry totals at any round barrier are identical for every worker
//!   count;
//! * trace events are *not* written to the sink by the recording thread —
//!   they accumulate in a per-node [`Shard`] which the engine merges in
//!   `NodeId` order after the round barrier;
//! * wall-clock values only ever land in histograms (display) or `wall_*`
//!   event fields (stripped for golden comparison), never in counters.

use crate::event::EventBuf;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds in nanoseconds: powers of 4 from 250 ns to
/// ~1 s. One fixed layout for every histogram keeps merging trivial.
pub const HIST_BOUNDS_NS: [u64; 12] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
];

/// Bucket upper bounds for unitless **value** histograms (e.g. recovery
/// latency measured in rounds): powers of 2 from 1 to 2048. Same fixed-layout
/// principle as [`HIST_BOUNDS_NS`], different scale.
pub const HIST_BOUNDS_VALUE: [u64; 12] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// A fixed-bucket histogram. Latency histograms bucket by [`HIST_BOUNDS_NS`]
/// (nanoseconds); value histograms by [`HIST_BOUNDS_VALUE`] (unitless, e.g.
/// rounds). The last bucket counts overflow beyond the bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; index `i` counts observations `<= bounds[i]`,
    /// the final slot counts the rest.
    pub counts: [u64; HIST_BOUNDS_NS.len() + 1],
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values, in ns.
    pub sum_ns: u64,
}

impl Histogram {
    /// Records one observation bucketed by `bounds`.
    pub fn observe_bounded(&mut self, bounds: &[u64], v: u64) {
        let idx = bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(v);
    }

    /// Records one latency observation (ns buckets).
    pub fn observe(&mut self, ns: u64) {
        self.observe_bounded(&HIST_BOUNDS_NS, ns);
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Approximate quantile under the given bounds: the upper bound of the
    /// bucket containing the `q`-quantile observation (`u64::MAX`-capped for
    /// the overflow bucket).
    pub fn quantile_bounded(&self, bounds: &[u64], q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Approximate latency quantile (ns buckets).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.quantile_bounded(&HIST_BOUNDS_NS, q)
    }

    /// Several quantiles at once under the given bounds — the one-stop
    /// extraction reports use instead of hand-rolling p50/p95/p99 pulls.
    pub fn quantiles(&self, bounds: &[u64], qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.quantile_bounded(bounds, q)).collect()
    }

    /// Several latency quantiles (ns buckets).
    pub fn quantiles_ns(&self, qs: &[f64]) -> Vec<u64> {
        self.quantiles(&HIST_BOUNDS_NS, qs)
    }

    /// Several value quantiles ([`HIST_BOUNDS_VALUE`] buckets, e.g. rounds).
    pub fn quantiles_value(&self, qs: &[f64]) -> Vec<u64> {
        self.quantiles(&HIST_BOUNDS_VALUE, qs)
    }

    /// Mean observation in ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.total).unwrap_or(0)
    }
}

/// A per-node (or engine-side) telemetry shard: counter/gauge/histogram
/// deltas plus pre-encoded trace-event bytes, accumulated while one node
/// executes — possibly on a worker thread — and merged by the engine at the
/// round barrier in `NodeId` order.
#[derive(Debug, Default)]
pub struct Shard {
    /// `NodeId` value providing event context; `0` means "engine" (node ids
    /// are 1-based) and suppresses the `node` field.
    ctx_node: u32,
    /// Round providing event context.
    ctx_round: u64,
    counters: BTreeMap<&'static str, u64>,
    maxes: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    value_hists: BTreeMap<&'static str, Histogram>,
    events: String,
}

impl Shard {
    /// Sets the (node, round) context stamped onto subsequent trace events.
    pub fn set_ctx(&mut self, node: u32, round: u64) {
        self.ctx_node = node;
        self.ctx_round = round;
    }

    /// Adds `v` to the named counter.
    pub fn count(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Raises the named max-gauge to at least `v`.
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        let slot = self.maxes.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Records a latency observation (wall clock; display only).
    pub fn observe_ns(&mut self, name: &'static str, ns: u64) {
        self.hists.entry(name).or_default().observe(ns);
    }

    /// Records a unitless value observation (e.g. rounds). Unlike latency
    /// histograms these carry deterministic simulation quantities, so merges
    /// stay commutative and results identical across worker counts.
    pub fn observe_value(&mut self, name: &'static str, v: u64) {
        self.value_hists
            .entry(name)
            .or_default()
            .observe_bounded(&HIST_BOUNDS_VALUE, v);
    }

    /// Appends a trace event, stamped with the shard's (node, round) context.
    pub fn trace(&mut self, kind: &str, fill: impl FnOnce(&mut EventBuf)) {
        let mut ev = EventBuf::new(kind);
        if self.ctx_node != 0 {
            ev.u64("node", u64::from(self.ctx_node));
        }
        ev.u64("round", self.ctx_round);
        fill(&mut ev);
        self.events.push_str(&ev.finish());
    }

    /// Whether the shard holds nothing to merge.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.maxes.is_empty()
            && self.hists.is_empty()
            && self.value_hists.is_empty()
            && self.events.is_empty()
    }

    pub(crate) fn drain_into(&mut self, registry: &Registry) -> String {
        if !self.counters.is_empty() {
            let mut c = lock(&registry.counters);
            for (name, v) in &self.counters {
                *c.entry(name).or_insert(0) += v;
            }
            self.counters.clear();
        }
        if !self.maxes.is_empty() {
            let mut m = lock(&registry.maxes);
            for (name, v) in &self.maxes {
                let slot = m.entry(name).or_insert(0);
                *slot = (*slot).max(*v);
            }
            self.maxes.clear();
        }
        if !self.hists.is_empty() {
            let mut h = lock(&registry.hists);
            for (name, hist) in &self.hists {
                h.entry(name).or_default().merge(hist);
            }
            self.hists.clear();
        }
        if !self.value_hists.is_empty() {
            let mut h = lock(&registry.value_hists);
            for (name, hist) in &self.value_hists {
                h.entry(name).or_default().merge(hist);
            }
            self.value_hists.clear();
        }
        std::mem::take(&mut self.events)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The run-wide metrics store. Shards merge into it at round barriers; the
/// engine may also add to it directly (engine-thread accounting like the
/// delivery diff).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    maxes: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
    value_hists: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// Adds `v` to a counter directly (engine-thread use).
    pub fn add(&self, name: &'static str, v: u64) {
        *lock(&self.counters).entry(name).or_insert(0) += v;
    }

    /// Raises a max-gauge directly (engine-thread use).
    pub fn gauge_max(&self, name: &'static str, v: u64) {
        let mut m = lock(&self.maxes);
        let slot = m.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Records a latency observation directly (engine-thread use).
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        lock(&self.hists).entry(name).or_default().observe(ns);
    }

    /// Records a unitless value observation directly (engine-thread use).
    pub fn observe_value(&self, name: &'static str, v: u64) {
        lock(&self.value_hists)
            .entry(name)
            .or_default()
            .observe_bounded(&HIST_BOUNDS_VALUE, v);
    }

    /// Merges a latency-histogram delta into the named histogram (collector
    /// use: applying a cross-process [`crate::MetricsDelta`]).
    pub fn merge_hist(&self, name: &'static str, h: &Histogram) {
        lock(&self.hists).entry(name).or_default().merge(h);
    }

    /// Merges a value-histogram delta into the named histogram.
    pub fn merge_value_hist(&self, name: &'static str, h: &Histogram) {
        lock(&self.value_hists).entry(name).or_default().merge(h);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).clone(),
            maxes: lock(&self.maxes).clone(),
            hists: lock(&self.hists).clone(),
            value_hists: lock(&self.value_hists).clone(),
        }
    }
}

/// A point-in-time copy of the registry, cheap to diff and render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Max-gauge values by name.
    pub maxes: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Unitless value histograms by name (bucketed on [`HIST_BOUNDS_VALUE`]).
    pub value_hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Counter deltas since `prev` (names absent from `prev` count from 0;
    /// zero deltas are omitted).
    pub fn counter_deltas(&self, prev: &MetricsSnapshot) -> BTreeMap<&'static str, u64> {
        self.counters
            .iter()
            .filter_map(|(name, v)| {
                let d = v - prev.counters.get(name).copied().unwrap_or(0);
                (d > 0).then_some((*name, d))
            })
            .collect()
    }
}

/// Per-unit counter deltas, captured by the engine at each unit boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitMetrics {
    /// The time unit the deltas cover.
    pub unit: u64,
    /// Counter increments during the unit (zero rows omitted).
    pub counters: BTreeMap<&'static str, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for ns in [100, 200, 2_000, 2_000, 3_000_000_000] {
            h.observe(ns);
        }
        assert_eq!(h.total, 5);
        assert_eq!(h.counts[0], 2); // <= 250ns
        assert_eq!(h.counts[2], 2); // <= 4µs
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.quantile_ns(0.5), 4_000);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
        assert_eq!(
            h.quantiles_ns(&[0.5, 0.95, 1.0]),
            vec![4_000, u64::MAX, u64::MAX]
        );
        assert_eq!(Histogram::default().quantiles_value(&[0.5, 0.99]), vec![0, 0]);
        assert_eq!(h.mean_ns(), (100 + 200 + 2_000 + 2_000 + 3_000_000_000u64) / 5);
    }

    #[test]
    fn shard_merges_into_registry_and_clears() {
        let reg = Registry::default();
        let mut shard = Shard::default();
        shard.set_ctx(3, 17);
        shard.count("x", 2);
        shard.count("x", 1);
        shard.gauge_max("g", 5);
        shard.observe_ns("h", 500);
        shard.trace("tick", |ev| {
            ev.u64("k", 9);
        });
        let events = shard.drain_into(&reg);
        assert!(shard.is_empty());
        assert_eq!(reg.counter("x"), 3);
        assert_eq!(events, "{\"ev\":\"tick\",\"node\":3,\"round\":17,\"k\":9}\n");

        // Merging again accumulates; gauges take the max.
        let mut shard2 = Shard::default();
        shard2.count("x", 4);
        shard2.gauge_max("g", 2);
        let _ = shard2.drain_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 7);
        assert_eq!(snap.maxes["g"], 5);
        assert_eq!(snap.hists["h"].total, 1);
    }

    #[test]
    fn snapshot_deltas() {
        let reg = Registry::default();
        reg.add("a", 5);
        let first = reg.snapshot();
        reg.add("a", 2);
        reg.add("b", 1);
        let second = reg.snapshot();
        let d = second.counter_deltas(&first);
        assert_eq!(d["a"], 2);
        assert_eq!(d["b"], 1);
        assert_eq!(second.counter_deltas(&second).len(), 0);
    }

    #[test]
    fn engine_shard_omits_node_field() {
        let mut shard = Shard::default();
        shard.set_ctx(0, 4);
        shard.trace("adv", |_| {});
        let reg = Registry::default();
        assert_eq!(shard.drain_into(&reg), "{\"ev\":\"adv\",\"round\":4}\n");
    }
}
