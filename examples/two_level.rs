//! The §6 two-level deployment: an `n`-node network partitioned into `≈√n`
//! neighborhoods, each running its own ULS instance, with a top-level PDS
//! certifying the neighborhood verification keys at system start-up.
//!
//! ```text
//! cargo run -p proauth-examples --bin two_level
//! ```
//!
//! Demonstrates the paper's scalability trade-off concretely:
//!
//! * each cluster refreshes independently (traffic scales with cluster size,
//!   not `n`);
//! * a node in cluster B verifies a message from cluster A through the
//!   chain: top-level signature → A's neighborhood key → A's per-unit
//!   certificate → message;
//! * breaking a *majority of one cluster* hands the adversary that
//!   neighborhood's key — fewer total break-ins than the flat scheme
//!   tolerates — while the other clusters stay sound.
//!
//! This example runs each neighborhood as a *separate* simulation to keep
//! the chain of trust inspectable step by step. The construction as one
//! live network — nested cluster stacks, representative re-election,
//! authenticated cross-cluster transit — is `proauth_core::hier`
//! (`proauth --clusters`, DESIGN §3g, `tests/hierarchy.rs`).

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::partition::{flat_min_breakins, Partition};
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::dkg::{self, ReceivedDealing};
use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::shamir;
use proauth_crypto::thresh;
use proauth_pds::als::AlsPds;
use proauth_pds::statement::key_statement;
use proauth_primitives::bigint::BigUint;
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::NodeId;
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one neighborhood as an independent ULS network; returns the result
/// and the cluster's PDS verification key (from any node's ROM).
fn run_cluster(cluster_id: usize, size: usize, t: usize, seed: u64) -> (SimResult, BigUint) {
    let schedule = uls_schedule(8);
    let mut cfg = SimConfig::new(size, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 2;
    cfg.seed = seed + cluster_id as u64;
    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), size, t), id, HeartbeatApp::default()),
        &mut FaithfulUl,
    );
    let v_cert = BigUint::from_bytes_be(
        result.roms[0]
            .read("v_cert")
            .expect("cluster setup burned its key"),
    );
    (result, v_cert)
}

fn main() {
    let n = 9usize;
    let partition = Partition::sqrt(n);
    let cluster_size = partition.clusters[0].len();
    let t_cluster = (cluster_size - 1) / 2;
    let group = Group::new(GroupId::Toy64);
    println!(
        "two-level deployment: n = {n}, {} clusters of {cluster_size}, per-cluster t = {t_cluster}\n",
        partition.cluster_count()
    );

    // 1. Each neighborhood runs its own ULS (independent refreshes).
    let mut cluster_keys: Vec<BigUint> = Vec::new();
    let mut total_msgs = 0u64;
    for c in 0..partition.cluster_count() {
        let (result, v_cert) = run_cluster(c, cluster_size, t_cluster, 1000);
        total_msgs += result.stats.messages_sent;
        println!(
            "  cluster {c}: 2 units simulated, {} msgs, alerts {}, neighborhood key 0x{}…",
            result.stats.messages_sent,
            result.stats.alerts.iter().sum::<u64>(),
            &v_cert.to_hex()[..8.min(v_cert.to_hex().len())]
        );
        cluster_keys.push(v_cert);
    }

    // 2. The top-level PDS (one share per cluster representative) signs each
    //    neighborhood key at start-up — the global certification authority
    //    of §6.
    let k = partition.cluster_count();
    let t_top = (k - 1) / 2;
    let mut rng = StdRng::seed_from_u64(7);
    let dealings: Vec<(u32, proauth_crypto::feldman::Dealing)> = (1..=k as u32)
        .map(|i| (i, dkg::deal(&group, t_top, k, &mut rng)))
        .collect();
    let top_keys: Vec<dkg::KeyShare> = (1..=k as u32)
        .map(|me| {
            let inputs: Vec<ReceivedDealing> = dealings
                .iter()
                .map(|(dealer, d)| ReceivedDealing {
                    dealer: *dealer,
                    commitments: d.commitments.clone(),
                    share: d.share_for(me).clone(),
                })
                .collect();
            dkg::aggregate(&group, t_top, k, me, &inputs).unwrap()
        })
        .collect();
    let top_pk = top_keys[0].public_key.clone();
    println!("\n  top-level PDS: {k} representatives, threshold {}", t_top + 1);

    // Threshold-sign each neighborhood key.
    let mut neighborhood_certs = Vec::new();
    for (c, key) in cluster_keys.iter().enumerate() {
        let statement = key_statement(NodeId(c as u32 + 1), 0, &key.to_bytes_be());
        let signer_set: Vec<u32> = (1..=(t_top + 1) as u32).collect();
        let nonces: Vec<(u32, thresh::Nonce)> = signer_set
            .iter()
            .map(|&i| (i, thresh::generate_nonce(&group, &mut rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = thresh::combine_nonces(&group, &commitments);
        let e = thresh::challenge(
            &group,
            &r,
            &top_pk,
            &proauth_pds::msg::signing_payload(&statement, 0),
        );
        let partials: Vec<BigUint> = nonces
            .iter()
            .map(|(i, nonce)| {
                thresh::partial_sign(&group, &top_keys[(*i - 1) as usize], &signer_set, nonce, &e)
            })
            .collect();
        let sig = thresh::combine_partials(&group, &e, &partials);
        let ok = AlsPds::verify(&group, &top_pk, &statement, 0, &sig);
        println!("  neighborhood {c} key certified by top level: {ok}");
        assert!(ok);
        neighborhood_certs.push(sig);
    }

    // 3. Cross-cluster verification chain: a node in cluster 1 validates
    //    cluster 0's neighborhood key before trusting any certificate from it.
    let statement0 = key_statement(NodeId(1), 0, &cluster_keys[0].to_bytes_be());
    assert!(AlsPds::verify(&group, &top_pk, &statement0, 0, &neighborhood_certs[0]));
    println!(
        "\n  cross-cluster chain verified: top-level sig → cluster-0 key → (per-unit certs → messages)"
    );

    // 4. The security trade-off, measured on this deployment.
    let two_level_budget = partition.min_breakins_to_compromise();
    let flat_budget = flat_min_breakins(n);
    println!("\nsecurity/performance trade-off at n = {n}:");
    println!("  flat scheme: adversary needs {flat_budget} simultaneous break-ins");
    println!("  two-level  : adversary needs {two_level_budget} (majority of a majority of clusters)");
    println!(
        "  refresh traffic: {} msgs across all clusters vs Θ(n²) for one flat network",
        total_msgs
    );

    // Demonstrate the cheaper attack: break 2 of 3 nodes in cluster 0 →
    // reconstruct that neighborhood's signing key (shares via Shamir).
    let demo_secret = group.random_scalar(&mut rng);
    let poly = shamir::Polynomial::random_with_secret(&group, t_cluster, demo_secret.clone(), &mut rng);
    let stolen: Vec<(u32, BigUint)> = (1..=(t_cluster + 1) as u32)
        .map(|i| (i, poly.eval_at(i)))
        .collect();
    let reconstructed = shamir::interpolate_at_zero(&group, &stolen);
    assert_eq!(reconstructed, demo_secret);
    println!(
        "  breaking {} nodes of one cluster reconstructs that neighborhood's key — \
         {} total break-ins beat the two-level scheme vs {} for flat",
        t_cluster + 1,
        two_level_budget,
        flat_budget
    );
}
