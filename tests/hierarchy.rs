//! End-to-end tests of the §6 two-level hierarchy: cluster-local ULS stacks
//! under a top-level PDS over cluster representatives.
//!
//! Covered here:
//! * the full network completes setup, reaches steady state, and the
//!   representatives jointly sign the per-unit liveness heartbeat;
//! * cross-cluster transit traffic is authenticated end to end;
//! * crashing a representative mid-refresh triggers the deterministic
//!   re-election, the promoted node recovers a top-level share through the
//!   Herzberg path, and the joint public key never changes;
//! * runs are bit-identical across worker-pool sizes 1/2/8;
//! * (release-only, `--ignored`) the headline complexity claim: the
//!   hierarchy at n = 64 sends ≥ 3× fewer envelopes than the flat scheme
//!   over the same refresh-bearing horizon.

use proauth_core::authenticator::NullApp;
use proauth_core::hier::{heartbeat_msg, transit_input, HierConfig, HierNode, HIER_SETUP_ROUNDS};
use proauth_core::uls::uls_schedule;
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{BreakPlan, FaithfulUl, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, run_ul_with_inputs, SimConfig, SimResult};

const NORMAL: u64 = 12;

fn group() -> Group {
    Group::new(GroupId::Toy64)
}

fn hier_cfg(n: usize, units: u64, seed: u64) -> (HierConfig, SimConfig) {
    let hcfg = HierConfig::new(group(), n);
    let mut cfg = SimConfig::new(n, 1, uls_schedule(NORMAL));
    cfg.setup_rounds = HIER_SETUP_ROUNDS;
    cfg.total_rounds = cfg.schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.clusters = Some(hcfg.partition.clusters.clone());
    (hcfg, cfg)
}

fn make_node(hcfg: &HierConfig) -> impl Fn(NodeId) -> HierNode<NullApp> + '_ {
    move |id| HierNode::new(hcfg.clone(), id, NullApp)
}

fn signed_heartbeats(result: &SimResult, node: NodeId) -> Vec<u64> {
    result
        .events_of(node)
        .iter()
        .filter_map(|(_, ev)| match ev {
            OutputEvent::Signed { msg, unit } if *msg == heartbeat_msg(*unit) => Some(*unit),
            _ => None,
        })
        .collect()
}

#[test]
fn hier_network_reaches_steady_state_and_signs_heartbeats() {
    let (hcfg, cfg) = hier_cfg(16, 3, 7);
    let result = run_ul(cfg, make_node(&hcfg), &mut FaithfulUl);

    // Setup burned the same top-level key and cluster-cert table into every
    // node's ROM.
    let v_top = result.roms[0].read("hier/v_top").expect("v_top").to_vec();
    let table = result.roms[0]
        .read("hier/cluster_certs")
        .expect("cert table")
        .to_vec();
    assert!(!v_top.is_empty());
    for rom in &result.roms {
        assert_eq!(rom.read("hier/v_top"), Some(&v_top[..]));
        assert_eq!(rom.read("hier/cluster_certs"), Some(&table[..]));
    }

    // The initial representatives (lowest member id of each cluster) jointly
    // signed the liveness heartbeat, verified against the ROM key, in every
    // unit including post-refresh ones.
    for c in 0..hcfg.partition.cluster_count() {
        let rep = NodeId(hcfg.partition.representative(c, 0));
        let units = signed_heartbeats(&result, rep);
        assert!(
            units.contains(&0) && units.contains(&2),
            "representative {rep:?} signed units {units:?}, expected 0 and 2"
        );
    }

    // No alerts, nobody non-operational, under faithful delivery.
    assert!(result.final_operational.iter().all(|&b| b));
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
}

#[test]
fn cross_cluster_transit_is_authenticated_end_to_end() {
    let (hcfg, cfg) = hier_cfg(16, 1, 11);
    let src = NodeId(3); // cluster 0, not the representative
    let dst = NodeId(16); // cluster 3
    assert_ne!(
        hcfg.partition.cluster_of(src.0),
        hcfg.partition.cluster_of(dst.0)
    );
    let result = run_ul_with_inputs(
        cfg,
        make_node(&hcfg),
        &mut FaithfulUl,
        move |id, round| {
            (id == src && round == 4).then(|| transit_input(dst, b"cross-cluster hello"))
        },
    );
    assert!(result
        .events_of(src)
        .iter()
        .any(|(r, ev)| *r == 4
            && *ev
                == OutputEvent::Sent {
                    to: dst,
                    msg: b"cross-cluster hello".to_vec()
                }));
    assert!(result
        .events_of(dst)
        .iter()
        .any(|(r, ev)| *r == 5
            && *ev
                == OutputEvent::Accepted {
                    from: src,
                    msg: b"cross-cluster hello".to_vec()
                }));
}

#[test]
fn transit_replayed_into_other_lanes_is_rejected() {
    // A man-in-the-middle that re-addresses every transit envelope to a
    // different node and also replays it one round late to the real
    // destination: both must be rejected (destination binding, round
    // freshness), so nothing beyond the one honest delivery is accepted.
    struct Replayer {
        stash: Vec<Envelope>,
    }
    impl UlAdversary for Replayer {
        fn plan(&mut self, _v: &NetView<'_>) -> BreakPlan {
            BreakPlan::none()
        }
        fn corrupt(&mut self, _n: NodeId, _s: &mut dyn std::any::Any, _t: &TimeView) {}
        fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
            let mut out = sent.to_vec();
            // Replay last round's transit traffic verbatim (now one round
            // stale) and misdirected copies of this round's.
            out.append(&mut self.stash);
            for env in sent {
                // Transit frames are tag 4 (see HierWire): re-address to a
                // bystander and stash a late replay.
                if env.payload.first() == Some(&4) {
                    let bystander = NodeId(env.to.0 % 16 + 1);
                    if bystander != env.from {
                        out.push(Envelope::new(env.from, bystander, env.payload.clone()));
                    }
                    self.stash.push(env.clone());
                }
            }
            out
        }
    }
    let (hcfg, cfg) = hier_cfg(16, 1, 13);
    let src = NodeId(3);
    let dst = NodeId(16);
    let result = run_ul_with_inputs(
        cfg,
        make_node(&hcfg),
        &mut Replayer { stash: Vec::new() },
        move |id, round| {
            (id == src && round == 4).then(|| transit_input(dst, b"once only"))
        },
    );
    let accepts: usize = (1..=16)
        .map(|i| {
            result
                .events_of(NodeId(i))
                .iter()
                .filter(|(_, ev)| {
                    matches!(ev, OutputEvent::Accepted { msg, .. } if msg == b"once only")
                })
                .count()
        })
        .sum();
    assert_eq!(accepts, 1, "exactly the one honest delivery is accepted");
}

/// Crashes cluster 0's representative in the middle of the unit-1 refresh,
/// restarts it two units later.
struct RepCrash {
    crash_round: u64,
    restart_round: u64,
}

impl UlAdversary for RepCrash {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == self.crash_round {
            BreakPlan::crash([NodeId(1)])
        } else if view.time.round == self.restart_round {
            BreakPlan::restart([NodeId(1)])
        } else {
            BreakPlan::none()
        }
    }
    fn corrupt(&mut self, _n: NodeId, _s: &mut dyn std::any::Any, _t: &TimeView) {}
    fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

#[test]
fn representative_crash_mid_refresh_reelects_and_preserves_top_key() {
    let (hcfg, cfg) = hier_cfg(16, 4, 21);
    let unit_rounds = cfg.schedule.unit_rounds;
    // Node 1 is cluster 0's initial representative; crash it in the middle
    // of unit 1's refresh Part II and bring it back early in unit 2.
    assert_eq!(hcfg.partition.representative(0, 0), 1);
    let mut adv = RepCrash {
        crash_round: unit_rounds + 26,
        restart_round: 2 * unit_rounds + 4,
    };
    let result = run_ul(cfg, make_node(&hcfg), &mut adv);
    assert_eq!(result.stats.crashes, 1);
    assert_eq!(result.stats.restarts, 1);

    // The deterministic successor (next member in the cycle) took over and
    // co-signed a later unit's heartbeat. `Signed` is emitted only after the
    // aggregate verified against the ROM's `hier/v_top`, so this asserts in
    // one stroke: re-election happened, the promoted node obtained a share
    // through Herzberg recovery, and the joint public key is unchanged.
    assert_eq!(hcfg.partition.representative(0, 1), 2);
    let successor_units = signed_heartbeats(&result, NodeId(2));
    assert!(
        successor_units.iter().any(|&u| u >= 2),
        "successor must co-sign a post-recovery heartbeat, got {successor_units:?}"
    );

    // The other clusters' representatives kept signing throughout.
    for c in 1..hcfg.partition.cluster_count() {
        let rep = NodeId(hcfg.partition.representative(c, 0));
        assert!(
            signed_heartbeats(&result, rep).iter().any(|&u| u >= 2),
            "cluster {c} representative must keep signing"
        );
    }

    // The top-level key in ROM is the same on every node (it was burned at
    // setup and ROM is immutable post-setup — the assertion documents that
    // recovery never needed to change it).
    let v_top = result.roms[0].read("hier/v_top").unwrap().to_vec();
    for rom in &result.roms {
        assert_eq!(rom.read("hier/v_top"), Some(&v_top[..]));
    }
}

#[test]
fn hier_runs_bit_identical_across_pool_sizes() {
    // Faithful delivery AND the crash/restart path (a representative dies
    // mid-refresh, re-election fires): the engine must be invisible in
    // both. This is `prop_engine_determinism` for the hierarchical runner.
    let run = |threads: usize, adversarial: bool| {
        let (hcfg, mut cfg) = hier_cfg(16, if adversarial { 3 } else { 2 }, 33);
        cfg.parallel = threads > 0;
        cfg.threads = threads;
        if adversarial {
            let unit_rounds = cfg.schedule.unit_rounds;
            let mut adv = RepCrash {
                crash_round: unit_rounds + 26,
                restart_round: 2 * unit_rounds + 4,
            };
            run_ul(cfg, make_node(&hcfg), &mut adv)
        } else {
            run_ul(cfg, make_node(&hcfg), &mut FaithfulUl)
        }
    };
    for adversarial in [false, true] {
        let serial = run(0, adversarial);
        assert_eq!(serial, run(1, adversarial));
        assert_eq!(serial, run(2, adversarial));
        assert_eq!(serial, run(8, adversarial));
    }
}

/// The headline complexity claim, asserted end to end: over an identical
/// refresh-bearing horizon at n = 64, the hierarchy sends at least 3× fewer
/// envelopes than the flat scheme. The flat comparator deliberately runs
/// the *cheapest feasible* flat configuration (t = 3 with the §6 relaxed
/// 2t+1 fan-out — the E11 champion config; a max-threshold t = 31 flat
/// refresh is the very Θ(n²·t) blow-up the hierarchy exists to avoid, and
/// is not runnable here), so the ≥3× bound is conservative. Run in release
/// (ci.sh does): `cargo test --release -p proauth-tests --test hierarchy
/// -- --ignored`.
#[test]
#[ignore]
fn hier_beats_flat_by_3x_on_envelopes_at_n64() {
    use proauth_core::disperse::DisperseMode;
    use proauth_core::uls::{UlsConfig, UlsNode, SETUP_ROUNDS};
    const N: usize = 64;
    let units = 2; // unit 1 carries a full refresh
    let (hcfg, cfg) = hier_cfg(N, units, 55);
    let hier = run_ul(cfg, make_node(&hcfg), &mut FaithfulUl);

    let mut flat_cfg = SimConfig::new(N, 1, uls_schedule(NORMAL));
    flat_cfg.setup_rounds = SETUP_ROUNDS;
    flat_cfg.total_rounds = flat_cfg.schedule.unit_rounds * units;
    flat_cfg.seed = 55;
    let flat = run_ul(
        flat_cfg,
        |id| {
            let mut c = UlsConfig::new(group(), N, 3);
            c.disperse = DisperseMode::Relaxed { fanout: 7 };
            UlsNode::new(c, id, NullApp)
        },
        &mut FaithfulUl,
    );

    let (h, f) = (hier.stats.messages_sent, flat.stats.messages_sent);
    assert!(
        h * 3 <= f,
        "hierarchy must send ≥3× fewer envelopes: hier {h} vs flat {f}"
    );
}
