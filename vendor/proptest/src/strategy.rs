//! Value-generation strategies (mirror of `proptest::strategy`, no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::borrow::Cow;
use std::fmt::Debug;

/// Why a value was rejected (filter miss or failed assumption).
pub type Reason = Cow<'static, str>;

/// How many fresh draws a filter tries before rejecting the whole case.
const FILTER_RETRIES: usize = 256;

/// Generates values of an associated type from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value, or rejects the case (e.g. a filter ran dry).
    fn try_new_value(&self, rng: &mut StdRng) -> Result<Self::Value, Reason>;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `f`; rejects after repeated misses.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<Reason>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, whence: whence.into(), f }
    }

    /// Combined filter + map: keeps values where `f` returns `Some`.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: impl Into<Reason>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { source: self, whence: whence.into(), f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.try_new_value(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn try_new_value(&self, _rng: &mut StdRng) -> Result<T, Reason> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<O, Reason> {
        self.source.try_new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: Reason,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<S::Value, Reason> {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.try_new_value(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(self.whence.clone())
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    whence: Reason,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<O, Reason> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.try_new_value(rng)?) {
                return Ok(v);
            }
        }
        Err(self.whence.clone())
    }
}

/// Boxed generator backing [`BoxedStrategy`].
type BoxedGen<T> = Box<dyn Fn(&mut StdRng) -> Result<T, Reason>>;

/// A type-erased strategy (closure-backed; see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(BoxedGen<T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<T, Reason> {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<T, Reason> {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].try_new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn try_new_value(&self, rng: &mut StdRng) -> Result<$ty, Reason> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn try_new_value(&self, rng: &mut StdRng) -> Result<$ty, Reason> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn try_new_value(&self, rng: &mut StdRng) -> Result<Self::Value, Reason> {
                let ($($name,)+) = self;
                Ok(($($name.try_new_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
