//! Adversary interfaces for the AL and UL models (§2.1–2.2).
//!
//! Both adversaries are *mobile* and *adaptive*: each round they may break
//! into nodes and leave nodes, read the full traffic, and mutate the memory
//! of broken nodes. They differ in their power over the links:
//!
//! * the **AL adversary** cannot touch honest traffic — every honest message
//!   is delivered unmodified — but may send messages in the name of broken
//!   nodes;
//! * the **UL adversary** *owns* delivery: it receives everything that was
//!   sent and returns whatever it wants delivered (drop, modify, inject,
//!   duplicate, impersonate — anything).
//!
//! Strategy implementations live in `proauth-adversary`; this module only
//! defines the interface plus the two faithful baselines.

use crate::clock::TimeView;
use crate::message::{Envelope, NodeId};
use std::any::Any;

/// Break-in / leave / crash decisions for one round.
#[derive(Debug, Clone, Default)]
pub struct BreakPlan {
    /// Nodes to break into at the start of this round.
    pub break_into: Vec<NodeId>,
    /// Nodes to leave (release) at the start of this round.
    pub leave: Vec<NodeId>,
    /// Nodes to crash-stop at the start of this round. A crashed node does
    /// not execute, its pending inbox is discarded (a crash is *not* a
    /// break-in: nothing is diverted to the adversary), and its rounds are
    /// charged to the (s,t) budget like a broken node's.
    pub crash: Vec<NodeId>,
    /// Nodes to restart at the start of this round. A restarted node comes
    /// back as a *fresh* instance — all volatile state lost, ROM intact — and
    /// re-certifies via the §4.2 share-recovery / refresh path.
    pub restart: Vec<NodeId>,
}

impl BreakPlan {
    /// The empty plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Breaks into the given nodes.
    pub fn break_into(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        BreakPlan {
            break_into: nodes.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Leaves the given nodes.
    pub fn leave(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        BreakPlan {
            leave: nodes.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Crash-stops the given nodes.
    pub fn crash(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        BreakPlan {
            crash: nodes.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Restarts the given nodes (from wiped volatile state).
    pub fn restart(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        BreakPlan {
            restart: nodes.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Merges another plan into this one (used by strategy combinators).
    pub fn merge(&mut self, other: BreakPlan) {
        self.break_into.extend(other.break_into);
        self.leave.extend(other.leave);
        self.crash.extend(other.crash);
        self.restart.extend(other.restart);
    }
}

/// Everything the adversary can observe about the network at a given moment.
///
/// Adversaries in both models see all traffic (the paper's adversary "learns
/// all the communication among the parties").
#[derive(Debug)]
pub struct NetView<'a> {
    /// Current time.
    pub time: TimeView,
    /// Network size.
    pub n: usize,
    /// Which nodes are currently broken.
    pub broken: &'a [bool],
    /// Which nodes are currently crash-stopped (not executing; kept separate
    /// from `broken` — a crashed node's inbox is discarded, not diverted).
    pub crashed: &'a [bool],
    /// Which nodes are currently `s`-operational (runner's ground truth).
    pub operational: &'a [bool],
    /// Messages delivered at the end of the previous round (the traffic the
    /// adversary has read so far).
    pub last_delivered: &'a [Envelope],
    /// Deliveries addressed to broken nodes this round (the adversary
    /// receives these instead of the node).
    pub broken_inboxes: &'a [Envelope],
}

/// The AL-model mobile adversary (§2.1).
pub trait AlAdversary {
    /// Break-in/leave decisions at the start of the round.
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let _ = view;
        BreakPlan::none()
    }

    /// Reads/modifies the memory of a broken node (called once per round per
    /// broken node). The ROM is not reachable from here.
    fn corrupt(&mut self, node: NodeId, state: &mut dyn Any, time: &TimeView) {
        let _ = (node, state, time);
    }

    /// Messages the adversary sends in the name of broken nodes this round.
    /// Called *after* the honest messages of the round are known (rushing).
    /// Envelopes whose `from` is not currently broken are discarded by the
    /// runner.
    fn broken_sends(&mut self, honest_sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let _ = (honest_sent, view);
        Vec::new()
    }

    /// The adversary's own output, appended to the global output.
    fn output(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// The UL-model mobile adversary (§2.2).
pub trait UlAdversary {
    /// Break-in/leave decisions at the start of the round.
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let _ = view;
        BreakPlan::none()
    }

    /// Reads/modifies the memory of a broken node (called once per round per
    /// broken node). The ROM is not reachable from here.
    fn corrupt(&mut self, node: NodeId, state: &mut dyn Any, time: &TimeView) {
        let _ = (node, state, time);
    }

    /// Full control of delivery: receives everything sent this round and
    /// returns the set of envelopes actually delivered (with arbitrary
    /// claimed senders). Called after honest sends are known (rushing).
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope>;

    /// The adversary's own output, appended to the global output.
    fn output(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// AL baseline: never breaks in; broken set stays empty.
#[derive(Debug, Default, Clone)]
pub struct PassiveAl;

impl AlAdversary for PassiveAl {}

/// UL baseline: delivers everything faithfully, never breaks in.
#[derive(Debug, Default, Clone)]
pub struct FaithfulUl;

impl UlAdversary for FaithfulUl {
    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_plan_constructors() {
        let p = BreakPlan::break_into([NodeId(1), NodeId(2)]);
        assert_eq!(p.break_into.len(), 2);
        assert!(p.leave.is_empty());
        let p = BreakPlan::leave([NodeId(3)]);
        assert_eq!(p.leave, vec![NodeId(3)]);
        assert!(BreakPlan::none().break_into.is_empty());
    }

    #[test]
    fn faithful_ul_echoes_sent() {
        let mut adv = FaithfulUl;
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![5])];
        let view = NetView {
            time: crate::clock::TimeView::at(&crate::clock::Schedule::new(10, 2, 2), 0),
            n: 2,
            broken: &[false, false],
            crashed: &[false, false],
            operational: &[true, true],
            last_delivered: &[],
            broken_inboxes: &[],
        };
        assert_eq!(adv.deliver(&sent, &view), sent);
    }
}
