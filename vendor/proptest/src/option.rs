//! Option strategies (mirror of `proptest::option`).

use crate::strategy::{Reason, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<Option<S::Value>, Reason> {
        // Bias toward Some (3:1) so inner values get real coverage.
        if rng.gen_range(0u32..4) == 0 {
            Ok(None)
        } else {
            Ok(Some(self.0.try_new_value(rng)?))
        }
    }
}

/// `None` or a value from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
