//! ULS — the UL-model PDS and proactive authenticator node (§4.2 + §5).
//!
//! [`UlsNode`] assembles the whole construction:
//!
//! * an embedded AL-model PDS ([`AlsPds`]) whose every message rides
//!   AUTH-SEND (one logical PDS round = two physical rounds);
//! * per-unit local keys certified through the refresh Part I machinery
//!   (key announcement in the clear → n parallel PARTIAL-AGREEMENTs →
//!   threshold-signed certificates → delivery → adoption or **alert**);
//! * refresh Part II: the PDS share refresh (`ARfr`) over AUTH-SEND with the
//!   *new* keys, including share recovery for wiped nodes;
//! * an optional top-layer protocol `π` ([`AlProtocol`]) — making the node
//!   the compiled `Λ(π)` of §5.
//!
//! ## Physical schedule
//!
//! A time unit `u ≥ 1` opens with a refresh phase of
//! [`PART1_ROUNDS`]` + `[`PART2_ROUNDS`] physical rounds:
//!
//! ```text
//! Part I (old keys):                      Part II (new keys):
//!   0      KeyAnnounce (clear)              20+2k   ARfr step k (k = 0..=6)
//!   1      PA step 1 (AUTH-SEND)            34..35  slack
//!   3      PA step 2+3 (evidence DISPERSE)
//!   5      PA decide; request certificates
//!   5..15  PDS signing ticks (odd offsets)
//!   16     certificate delivery (DISPERSE)
//!   19     adopt new keys / ALERT
//! ```
//!
//! Unit 0's keys and certificates come from the adversary-free setup phase
//! (`UGen`, §4.2.1), which also burns the PDS verification key into ROM.

use crate::authenticator::{AlProtocol, AppCtx};
use crate::certify::{
    cert_payload, certify, mac_certify, session_key, ver_cert, ver_cert_precertified, ver_mac,
    ver_mac_certificate, DestCheck, LocalKeys,
};
use crate::disperse::{DisperseLayer, DisperseMode};
use crate::pa::PaInstance;
use crate::wire::{Blob, CertifiedMsg, Inner, UlsWire};
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::{self, Signature, VerifyKey};
use proauth_pds::api::{AlPds, PdsPhase, PdsTime};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::statement::{key_statement, parse_key_statement};
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, InternedBlob};
use proauth_sim::clock::Phase;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_telemetry as telemetry;
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use std::collections::{BTreeMap, HashSet};

/// Physical rounds of refresh Part I.
pub const PART1_ROUNDS: u64 = 20;
/// Physical rounds of refresh Part II.
pub const PART2_ROUNDS: u64 = 16;
/// Setup rounds a ULS network needs (DKG + unit-0 certificates).
pub const SETUP_ROUNDS: u64 = 8;

const OFF_ANNOUNCE: u64 = 0;
const OFF_PA_SEND: u64 = 1;
const OFF_PA_MAJ: u64 = 3;
const OFF_PA_DECIDE: u64 = 5;
const OFF_CERT_DELIVER: u64 = 16;
const OFF_ADOPT: u64 = PART1_ROUNDS - 1;

/// Builds the simulator schedule for a ULS network with `normal_rounds`
/// rounds of ordinary operation per unit (must be even).
///
/// # Panics
///
/// Panics if `normal_rounds` is odd.
pub fn uls_schedule(normal_rounds: u64) -> proauth_sim::clock::Schedule {
    assert!(normal_rounds.is_multiple_of(2), "normal rounds must be even");
    proauth_sim::clock::Schedule::new(
        PART1_ROUNDS + PART2_ROUNDS + normal_rounds,
        PART1_ROUNDS,
        PART2_ROUNDS,
    )
}

/// Tags a runner input as a USign request ("sign these bytes").
pub fn sign_input(msg: &[u8]) -> Vec<u8> {
    let mut v = vec![1u8];
    v.extend_from_slice(msg);
    v
}

/// Tags a runner input as top-layer (π) input.
pub fn app_input(bytes: &[u8]) -> Vec<u8> {
    let mut v = vec![2u8];
    v.extend_from_slice(bytes);
    v
}

/// How steady-state messages are authenticated (§1.3 offers both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuthMode {
    /// Sign every message with the per-unit local key (Fig. 3 as written).
    #[default]
    Sign,
    /// Derive pairwise session keys from the certified per-unit keys
    /// (static DH) and authenticate with HMAC — two hashes instead of three
    /// exponentiations per message. PARTIAL-AGREEMENT inputs always stay
    /// signed (their step-3 evidence must be *publicly* verifiable), and any
    /// message to a peer whose key is not yet pinned falls back to signing.
    SessionMac,
}

/// Static ULS parameters.
#[derive(Debug, Clone)]
pub struct UlsConfig {
    /// The Schnorr group.
    pub group: Group,
    /// Network size.
    pub n: usize,
    /// Threshold (`n ≥ 2t+1`).
    pub t: usize,
    /// DISPERSE fan-out policy.
    pub disperse: DisperseMode,
    /// Steady-state authentication mode.
    pub auth_mode: AuthMode,
    /// Bundle all of a node's PA step-3 evidence relays for one subject into
    /// a single [`Blob::EvidenceBundle`] per destination (default). Turning
    /// this off restores the per-member `Blob::Evidence` sends — Θ(n³)
    /// envelopes per refresh instead of Θ(n²) — and exists only as an
    /// ablation knob for the complexity experiments.
    pub bundle_evidence: bool,
    /// PDS session-id scope (see [`proauth_pds::msg::sid_for_scoped`]).
    /// Empty (the default) keeps the flat scheme's sids bit-for-bit; the
    /// hierarchical runner scopes each cluster so concurrent cluster-local
    /// PDS instances can never route each other's sessions.
    pub sid_scope: Vec<u8>,
}

impl UlsConfig {
    /// Standard configuration.
    pub fn new(group: Group, n: usize, t: usize) -> Self {
        assert!(n > 2 * t, "ULS requires n >= 2t+1");
        UlsConfig {
            group,
            n,
            t,
            disperse: DisperseMode::Full,
            auth_mode: AuthMode::default(),
            bundle_evidence: true,
            sid_scope: Vec::new(),
        }
    }

    /// Scopes this instance's PDS session ids (builder style).
    pub fn scoped(mut self, scope: impl Into<Vec<u8>>) -> Self {
        self.sid_scope = scope.into();
        self
    }
}

/// The ULS node: UL-model PDS + proactive authenticator.
pub struct UlsNode<A: AlProtocol> {
    cfg: UlsConfig,
    me: NodeId,
    /// The embedded AL-model PDS.
    pub pds: AlsPds,
    /// Current local keys (`None` ⇒ certless, cannot authenticate).
    local: Option<LocalKeys>,
    /// Keys generated this refresh, awaiting certification.
    pending_new: Option<LocalKeys>,
    disperse: DisperseLayer,
    /// Key announcements received this refresh (first value per sender).
    announces: BTreeMap<u32, Vec<u8>>,
    /// PARTIAL-AGREEMENT instances, per subject.
    pa: BTreeMap<u32, PaInstance>,
    /// Raw certified PA messages, for evidence relay.
    pa_raw: BTreeMap<(u32, u32), CertifiedMsg>,
    /// Certificates obtained from completed PDS sessions this refresh:
    /// subject → (vk bytes, certificate).
    certs_out: BTreeMap<u32, (Vec<u8>, Signature)>,
    /// Buffered PDS messages since the last PDS tick.
    pds_inbox: Vec<(NodeId, Vec<u8>)>,
    /// Buffered app messages since the last app tick.
    app_inbox: Vec<(NodeId, Vec<u8>)>,
    /// Queued app inputs (one consumed per app tick, so inputs arriving
    /// during refresh phases or bursts are never silently overwritten).
    app_inputs: std::collections::VecDeque<Vec<u8>>,
    /// The top layer (π).
    pub app: A,
    app_logical_round: u64,
    /// Setup-phase storage: announced unit-0 keys of all nodes.
    setup_vks: BTreeMap<u32, Vec<u8>>,
    /// Pinned certified peer keys: (peer, unit) → vk element.
    peer_vks: BTreeMap<(u32, u64), BigUint>,
    /// Derived pairwise session keys: (peer, unit) → key.
    session_keys: BTreeMap<(u32, u64), [u8; 32]>,
    /// Count of alerts raised (mirrors the output log; handy for tests).
    pub alerts_raised: u64,
    /// Messages sent on the session-MAC fast path (instrumentation).
    pub mac_sent: u64,
    /// Messages sent on the signature path (instrumentation).
    pub sig_sent: u64,
}

impl<A: AlProtocol> UlsNode<A> {
    /// Creates a node.
    pub fn new(cfg: UlsConfig, me: NodeId, app: A) -> Self {
        let pds = AlsPds::new(
            AlsConfig::new(cfg.group.clone(), cfg.n, cfg.t).scoped(cfg.sid_scope.clone()),
            me,
        );
        let disperse = DisperseLayer::new(me, cfg.n, cfg.disperse);
        UlsNode {
            me,
            pds,
            local: None,
            pending_new: None,
            disperse,
            announces: BTreeMap::new(),
            pa: BTreeMap::new(),
            pa_raw: BTreeMap::new(),
            certs_out: BTreeMap::new(),
            pds_inbox: Vec::new(),
            app_inbox: Vec::new(),
            app_inputs: std::collections::VecDeque::new(),
            app,
            app_logical_round: 0,
            setup_vks: BTreeMap::new(),
            peer_vks: BTreeMap::new(),
            session_keys: BTreeMap::new(),
            alerts_raised: 0,
            mac_sent: 0,
            sig_sent: 0,
            cfg,
        }
    }

    /// The node's current local keys (for tests and break-in semantics).
    pub fn local_keys(&self) -> Option<&LocalKeys> {
        self.local.as_ref()
    }

    /// Whether the node currently holds a certified key.
    pub fn is_certified(&self) -> bool {
        self.local.as_ref().is_some_and(LocalKeys::is_certified)
    }

    /// Break-in: wipe all volatile secrets (local keys, PDS state).
    pub fn corrupt_wipe(&mut self) {
        self.local = None;
        self.pending_new = None;
        self.pds.corrupt_wipe();
        self.announces.clear();
        self.pa.clear();
        self.pa_raw.clear();
        self.certs_out.clear();
        self.pds_inbox.clear();
        self.app_inbox.clear();
        self.app_inputs.clear();
        self.peer_vks.clear();
        self.session_keys.clear();
    }

    /// Break-in: silently garble the PDS share.
    pub fn corrupt_garble_share(&mut self, garbage: u64) {
        self.pds.corrupt_share(BigUint::from_u64(garbage));
    }

    /// Break-in: steal (clone) the node's current local keys.
    pub fn steal_local_keys(&self) -> Option<LocalKeys> {
        self.local.clone()
    }

    /// The ROM copy of the PDS verification key.
    fn v_cert(rom: &proauth_sim::process::Rom) -> Option<BigUint> {
        rom.read("v_cert").map(BigUint::from_bytes_be)
    }

    /// Pins a certified peer key.
    fn pin_peer_vk(&mut self, peer: u32, unit: u64, vk: BigUint) {
        self.peer_vks.entry((peer, unit)).or_insert(vk);
    }

    /// The pairwise session key with `peer` for `unit`, derived lazily from
    /// my local keys and the pinned peer key.
    fn session_key_for(&mut self, peer: u32, unit: u64) -> Option<[u8; 32]> {
        if let Some(k) = self.session_keys.get(&(peer, unit)) {
            return Some(*k);
        }
        let local = self.local.as_ref()?;
        if local.unit != unit || !local.is_certified() {
            return None;
        }
        let peer_vk = self.peer_vks.get(&(peer, unit))?;
        let key = session_key(&self.cfg.group, &local.signing, peer_vk, unit)?;
        self.session_keys.insert((peer, unit), key);
        Some(key)
    }

    /// AUTH-SEND: certify `inner` for `to` and hand it to DISPERSE.
    fn auth_send<R: rand::RngCore>(
        &mut self,
        to: NodeId,
        inner: &Inner,
        round: u64,
        rng: &mut R,
    ) {
        if self.local.is_none() {
            return; // certless: cannot authenticate (the alert already fired)
        }
        // PA inputs must stay publicly verifiable (their relays serve as
        // evidence); everything else may use the session-MAC fast path.
        let use_mac = self.cfg.auth_mode == AuthMode::SessionMac
            && !matches!(inner, Inner::PaValue { .. });
        if use_mac {
            let unit = self.local.as_ref().map(|k| k.unit).unwrap_or(0);
            if let Some(key) = self.session_key_for(to.0, unit) {
                let keys = self.local.as_ref().expect("checked above");
                if let Some(mmsg) = mac_certify(keys, &key, &inner.to_bytes(), self.me, to, round)
                {
                    let blob = Blob::MacCertified(mmsg).intern();
                    self.disperse.send(to, blob);
                    self.mac_sent += 1;
                    telemetry::count("uls/mac_sent", 1);
                    return;
                }
            }
            // No pinned peer key yet: fall back to signing below.
        }
        let keys = self.local.as_ref().expect("checked above");
        let Some(cmsg) = certify(keys, &inner.to_bytes(), self.me, to, round, rng) else {
            return;
        };
        let blob = Blob::Certified(cmsg).intern();
        self.disperse.send(to, blob);
        self.sig_sent += 1;
        telemetry::count("uls/sig_sent", 1);
    }

    /// Routes one verified certified message.
    fn dispatch_inner(&mut self, from: u32, inner: Inner, in_pa_window: bool) {
        match inner {
            Inner::Pds(bytes) => self.pds_inbox.push((NodeId(from), bytes)),
            Inner::App(bytes) => self.app_inbox.push((NodeId(from), bytes)),
            Inner::PaValue { subject, value } => {
                if in_pa_window {
                    self.pa
                        .entry(subject)
                        .or_insert_with(|| PaInstance::new(self.cfg.n))
                        .on_accepted_value(from, value);
                }
            }
        }
    }

    /// Processes the full physical inbox of a round.
    fn process_inbox(&mut self, ctx: &RoundCtx<'_>) {
        let Some(v_cert) = Self::v_cert(ctx.rom) else {
            return;
        };
        let round = ctx.time.round;
        let auth_unit = ctx.time.auth_unit;
        let unit_start = round - ctx.time.round_in_unit;
        let in_part1 = matches!(ctx.time.phase, Phase::RefreshPart1 { .. });
        // PA step-1 values land exactly two rounds after OFF_PA_SEND.
        let in_pa_window = in_part1 && ctx.time.round_in_unit == OFF_PA_SEND + 2;
        // Evidence lands two rounds after OFF_PA_MAJ.
        let in_evidence_window = in_part1 && ctx.time.round_in_unit == OFF_PA_MAJ + 2;
        let pa_send_round = unit_start + OFF_PA_SEND;

        // Release DISPERSE self-buffered blobs, then drain the inbox.
        let mut delivered: Vec<(u32, InternedBlob)> = self.disperse.begin_round();
        for env in ctx.inbox {
            match UlsWire::from_bytes(&env.payload) {
                Ok(UlsWire::KeyAnnounce { unit, vk }) => {
                    // Only meaningful in the announce window of this unit.
                    if in_part1
                        && ctx.time.round_in_unit == OFF_ANNOUNCE + 1
                        && unit == ctx.time.unit
                        && !vk.is_empty()
                    {
                        self.announces.entry(env.from.0).or_insert(vk);
                    }
                }
                Ok(UlsWire::Disperse(d)) => {
                    if let Some(item) = self.disperse.on_message(env.from, d) {
                        delivered.push(item);
                    }
                }
                Err(_) => {}
            }
        }

        // Parse blobs once and collect every PDS-certificate check they
        // carry: all certificates verify under the single ROM key `v_cert`,
        // so one batched Schnorr verification (which also promotes `v_cert`
        // into the group's hot-base table cache) covers the whole inbox —
        // the certificate-adoption and evidence windows routinely deliver
        // `n`-sized bursts. A rejecting batch falls back to the individual
        // per-message checks below, so acceptance is unchanged.
        // Evidence arrives with massive multiplicity: every node relays the
        // same majority members' certified messages, and in relaxed mode the
        // relay hub re-carries each bundle once per distinct carrier. PA
        // evidence is carrier-independent — `on_evidence` keys on the
        // *certifier* inside the message, never on who delivered it — so
        // byte-identical evidence blobs beyond the first contribute nothing
        // and can be dropped by content digest before any verification.
        let mut evidence_seen: HashSet<[u8; 32]> = HashSet::new();
        let parsed: Vec<Blob> = delivered
            .iter()
            .filter_map(|(_, blob)| {
                let b = Blob::from_bytes(blob.as_bytes()).ok()?;
                if matches!(b, Blob::Evidence { .. } | Blob::EvidenceBundle { .. })
                    && !evidence_seen.insert(*blob.digest())
                {
                    return None;
                }
                Some(b)
            })
            .collect();
        let mut cert_items: Vec<(Vec<u8>, &Signature)> = Vec::new();
        for blob in &parsed {
            match blob {
                Blob::Certified(cmsg) => {
                    cert_items.push((cert_payload(NodeId(cmsg.i), cmsg.u, &cmsg.vk), &cmsg.cert));
                }
                Blob::Evidence { msg, .. } => {
                    cert_items.push((cert_payload(NodeId(msg.i), msg.u, &msg.vk), &msg.cert));
                }
                Blob::EvidenceBundle { msgs, .. } => {
                    for msg in msgs {
                        cert_items.push((cert_payload(NodeId(msg.i), msg.u, &msg.vk), &msg.cert));
                    }
                }
                Blob::CertDeliver {
                    subject,
                    unit,
                    vk,
                    cert,
                } => {
                    cert_items.push((cert_payload(NodeId(*subject), *unit, vk), cert));
                }
                // MAC certificates are validated once per sender at pin time.
                Blob::MacCertified(_) => {}
            }
        }
        telemetry::count("uls/certs_checked", cert_items.len() as u64);
        let certs_batch_ok = cert_items.len() >= 2
            && VerifyKey::from_element(&self.cfg.group, v_cert.clone())
                .map(|vk| {
                    let items: Vec<(&[u8], &Signature)> = cert_items
                        .iter()
                        .map(|(payload, sig)| (payload.as_slice(), *sig))
                        .collect();
                    telemetry::timed("crypto/batch_verify_ns", || {
                        schnorr::batch_verify(&vk, &items)
                    })
                })
                .unwrap_or(false);

        for blob in &parsed {
            match blob {
                Blob::Certified(cmsg) => {
                    let from = NodeId(cmsg.i);
                    if from == self.me {
                        continue;
                    }
                    let ok = if certs_batch_ok {
                        ver_cert_precertified(
                            &self.cfg.group,
                            DestCheck::Me(self.me),
                            from,
                            auth_unit,
                            round.saturating_sub(2),
                            cmsg,
                        )
                    } else {
                        ver_cert(
                            &self.cfg.group,
                            DestCheck::Me(self.me),
                            from,
                            auth_unit,
                            round.saturating_sub(2),
                            cmsg,
                            &v_cert,
                        )
                    };
                    if !ok {
                        telemetry::count("uls/rejected", 1);
                        continue;
                    }
                    let Ok(inner) = Inner::from_bytes(&cmsg.m) else {
                        continue;
                    };
                    if let Inner::PaValue { subject, .. } = &inner {
                        self.pa_raw
                            .entry((*subject, cmsg.i))
                            .or_insert_with(|| cmsg.clone());
                    }
                    self.dispatch_inner(cmsg.i, inner, in_pa_window);
                }
                Blob::Evidence { subject, msg } => {
                    if !in_evidence_window {
                        continue;
                    }
                    let ok = if certs_batch_ok {
                        ver_cert_precertified(
                            &self.cfg.group,
                            DestCheck::AnyDestination,
                            NodeId(msg.i),
                            auth_unit,
                            pa_send_round,
                            msg,
                        )
                    } else {
                        ver_cert(
                            &self.cfg.group,
                            DestCheck::AnyDestination,
                            NodeId(msg.i),
                            auth_unit,
                            pa_send_round,
                            msg,
                            &v_cert,
                        )
                    };
                    if !ok {
                        telemetry::count("uls/rejected", 1);
                        continue;
                    }
                    if let Ok(Inner::PaValue {
                        subject: s2,
                        value,
                    }) = Inner::from_bytes(&msg.m)
                    {
                        if s2 == *subject {
                            self.pa
                                .entry(*subject)
                                .or_insert_with(|| PaInstance::new(self.cfg.n))
                                .on_evidence(msg.i, value);
                        }
                    }
                }
                Blob::EvidenceBundle { subject, msgs } => {
                    // Unpack and feed each certified message through exactly
                    // the checks an individual `Blob::Evidence` would face:
                    // PA semantics (Lemma 16 / cheater exposure) see the same
                    // (certifier, value) pairs either way.
                    if !in_evidence_window {
                        continue;
                    }
                    for msg in msgs {
                        let ok = if certs_batch_ok {
                            ver_cert_precertified(
                                &self.cfg.group,
                                DestCheck::AnyDestination,
                                NodeId(msg.i),
                                auth_unit,
                                pa_send_round,
                                msg,
                            )
                        } else {
                            ver_cert(
                                &self.cfg.group,
                                DestCheck::AnyDestination,
                                NodeId(msg.i),
                                auth_unit,
                                pa_send_round,
                                msg,
                                &v_cert,
                            )
                        };
                        if !ok {
                            telemetry::count("uls/rejected", 1);
                            continue;
                        }
                        if let Ok(Inner::PaValue {
                            subject: s2,
                            value,
                        }) = Inner::from_bytes(&msg.m)
                        {
                            if s2 == *subject {
                                self.pa
                                    .entry(*subject)
                                    .or_insert_with(|| PaInstance::new(self.cfg.n))
                                    .on_evidence(msg.i, value);
                            }
                        }
                    }
                }
                Blob::MacCertified(mmsg) => {
                    let from = mmsg.i;
                    if from == self.me.0 || from == 0 || from > self.cfg.n as u32 {
                        continue;
                    }
                    // Pin the sender's key: from cache, or by verifying the
                    // attached certificate once.
                    let pinned = self.peer_vks.get(&(from, auth_unit)).cloned();
                    let peer_vk = match pinned {
                        Some(vk) => {
                            // Pinned: the message must use exactly that key.
                            if vk.to_bytes_be() != mmsg.vk {
                                telemetry::count("uls/rejected", 1);
                                continue;
                            }
                            vk
                        }
                        None => {
                            let Some(vk) = ver_mac_certificate(
                                &self.cfg.group,
                                NodeId(from),
                                mmsg,
                                &v_cert,
                            ) else {
                                telemetry::count("uls/rejected", 1);
                                continue;
                            };
                            if mmsg.u != auth_unit {
                                telemetry::count("uls/rejected", 1);
                                continue;
                            }
                            self.pin_peer_vk(from, auth_unit, vk.clone());
                            vk
                        }
                    };
                    let _ = peer_vk;
                    let Some(key) = self.session_key_for(from, auth_unit) else {
                        continue;
                    };
                    if !ver_mac(
                        self.me,
                        NodeId(from),
                        auth_unit,
                        round.saturating_sub(2),
                        mmsg,
                        &key,
                    ) {
                        telemetry::count("uls/rejected", 1);
                        continue;
                    }
                    let Ok(inner) = Inner::from_bytes(&mmsg.m) else {
                        continue;
                    };
                    // PA values never arrive via MAC (not publicly
                    // verifiable); drop them defensively.
                    if matches!(inner, Inner::PaValue { .. }) {
                        continue;
                    }
                    self.dispatch_inner(from, inner, false);
                }
                Blob::CertDeliver {
                    subject,
                    unit,
                    vk,
                    cert,
                } => {
                    if *subject != self.me.0 || *unit != ctx.time.unit {
                        continue;
                    }
                    let Some(pending) = &mut self.pending_new else {
                        continue;
                    };
                    if pending.cert.is_some() || pending.vk_bytes() != *vk {
                        continue;
                    }
                    let statement = key_statement(self.me, *unit, vk);
                    if certs_batch_ok
                        || AlsPds::verify(&self.cfg.group, &v_cert, &statement, *unit, cert)
                    {
                        pending.cert = Some(cert.clone());
                    }
                }
            }
        }
    }

    /// Runs one PDS logical tick, wrapping its output in AUTH-SEND.
    fn pds_tick(&mut self, ctx: &mut RoundCtx<'_>, time: PdsTime) {
        if let Some(v_cert) = Self::v_cert(ctx.rom) {
            self.pds.set_public_key(v_cert);
        }
        let inbox = std::mem::take(&mut self.pds_inbox);
        let outs = self.pds.on_logical_round(time, &inbox, ctx.rng);
        for env in outs {
            self.auth_send(
                env.to,
                &Inner::Pds(env.payload.to_vec()),
                ctx.time.round,
                ctx.rng,
            );
        }
        // Harvest completed signatures: certificates and USign results.
        for rec in self.pds.take_completed() {
            if let Some((subject, cert_unit, vk)) = parse_key_statement(&rec.msg) {
                if cert_unit == rec.unit {
                    self.certs_out.insert(subject.0, (vk.clone(), rec.sig.clone()));
                    if subject != self.me {
                        let elem = BigUint::from_bytes_be(&vk);
                        if self.cfg.group.contains(&elem) {
                            self.pin_peer_vk(subject.0, cert_unit, elem);
                        }
                    }
                    if subject == self.me {
                        if let Some(pending) = &mut self.pending_new {
                            if pending.cert.is_none() && pending.vk_bytes() == vk {
                                pending.cert = Some(rec.sig.clone());
                            }
                        }
                    }
                    continue;
                }
            }
            telemetry::count("pds/signed", 1);
            ctx.emit(OutputEvent::Signed {
                msg: rec.msg,
                unit: rec.unit,
            });
        }
    }

    /// Runs one app (π) logical tick.
    fn app_tick(&mut self, ctx: &mut RoundCtx<'_>) {
        let accepted = std::mem::take(&mut self.app_inbox);
        let input = self.app_inputs.pop_front();
        let mut app_ctx = AppCtx {
            unit: ctx.time.unit,
            logical_round: self.app_logical_round,
            me: self.me,
            n: self.cfg.n,
            accepted: &accepted,
            input: input.as_deref(),
            sends: Vec::new(),
            outputs: Vec::new(),
        };
        self.app.on_logical_round(&mut app_ctx);
        self.app_logical_round += 1;
        let sends = std::mem::take(&mut app_ctx.sends);
        let outputs = std::mem::take(&mut app_ctx.outputs);
        for ev in outputs {
            ctx.emit(ev);
        }
        for (to, msg) in sends {
            ctx.emit(OutputEvent::Sent {
                to,
                msg: msg.clone(),
            });
            self.auth_send(to, &Inner::App(msg), ctx.time.round, ctx.rng);
        }
        // Surface accepted messages in the output log (external view).
        telemetry::count("uls/accepted", accepted.len() as u64);
        for (from, msg) in &accepted {
            ctx.emit(OutputEvent::Accepted {
                from: *from,
                msg: msg.clone(),
            });
        }
    }

    fn alert(&mut self, ctx: &mut RoundCtx<'_>) {
        self.alerts_raised += 1;
        telemetry::count("uls/alerts", 1);
        ctx.emit(OutputEvent::Alert);
    }

    /// Refresh Part I actions, per offset.
    fn part1_actions(&mut self, ctx: &mut RoundCtx<'_>, off: u64) {
        let unit = ctx.time.unit;
        match off {
            OFF_ANNOUNCE => {
                // Fresh keys, announced in the clear.
                self.announces.clear();
                self.pa.clear();
                self.pa_raw.clear();
                self.certs_out.clear();
                let keys = LocalKeys::generate(&self.cfg.group, unit, ctx.rng);
                let announce = UlsWire::KeyAnnounce {
                    unit,
                    vk: keys.vk_bytes(),
                };
                self.announces.insert(self.me.0, keys.vk_bytes());
                self.pending_new = Some(keys);
                telemetry::count("uls/announces", 1);
                // One encode, one outbox entry for the whole broadcast.
                ctx.send_all(announce.to_payload());
            }
            OFF_PA_SEND => {
                // PA step 1: AUTH-SEND each received value to everyone.
                let announces = self.announces.clone();
                for (subject, value) in announces {
                    let inner = Inner::PaValue {
                        subject,
                        value: value.clone(),
                    };
                    // Seed my own instance with my own certified view.
                    self.pa
                        .entry(subject)
                        .or_insert_with(|| PaInstance::new(self.cfg.n))
                        .on_accepted_value(self.me.0, value);
                    for to in NodeId::all(self.cfg.n) {
                        if to != self.me {
                            self.auth_send(to, &inner, ctx.time.round, ctx.rng);
                        }
                    }
                }
            }
            OFF_PA_MAJ => {
                // PA steps 2–3: fix majorities; relay majority members'
                // certified messages as evidence. Bundled (default): all of
                // my relays for one subject ride a single EvidenceBundle per
                // destination — Θ(n²) envelopes per refresh instead of the
                // per-member Θ(n³). The receiver unpacks and verifies each
                // message individually, so PA outcomes are unchanged.
                let subjects: Vec<u32> = self.pa.keys().copied().collect();
                for subject in subjects {
                    let members = {
                        let inst = self.pa.get_mut(&subject).expect("instance");
                        inst.fix_majority();
                        inst.majority_members()
                    };
                    if self.cfg.bundle_evidence {
                        let msgs: Vec<CertifiedMsg> = members
                            .iter()
                            .filter(|&&m| m != self.me.0) // others got my step-1 send directly
                            .filter_map(|&m| self.pa_raw.get(&(subject, m)).cloned())
                            .collect();
                        if msgs.is_empty() {
                            continue;
                        }
                        let blob = Blob::EvidenceBundle { subject, msgs }.intern();
                        for to in NodeId::all(self.cfg.n) {
                            if to != self.me {
                                self.disperse.send(to, blob.clone());
                            }
                        }
                    } else {
                        for member in members {
                            if member == self.me.0 {
                                continue; // others received my step-1 send directly
                            }
                            if let Some(raw) = self.pa_raw.get(&(subject, member)) {
                                let blob = Blob::Evidence {
                                    subject,
                                    msg: raw.clone(),
                                }
                                .intern();
                                for to in NodeId::all(self.cfg.n) {
                                    if to != self.me {
                                        self.disperse.send(to, blob.clone());
                                    }
                                }
                            }
                        }
                    }
                }
            }
            OFF_PA_DECIDE => {
                // PA step 5 + certificate requests.
                let subjects: Vec<u32> = self.pa.keys().copied().collect();
                for subject in subjects {
                    let decided = self.pa.get(&subject).and_then(PaInstance::decide);
                    if let Some(value) = decided {
                        telemetry::count("pa/decided", 1);
                        let statement = key_statement(NodeId(subject), unit, &value);
                        self.pds.request_sign(statement, unit);
                    }
                }
            }
            OFF_CERT_DELIVER => {
                // Deliver certificates to their subjects.
                let certs = self.certs_out.clone();
                for (subject, (vk, cert)) in certs {
                    if subject == self.me.0 {
                        continue;
                    }
                    let blob = Blob::CertDeliver {
                        subject,
                        unit,
                        vk,
                        cert,
                    }
                    .intern();
                    self.disperse.send(NodeId(subject), blob);
                }
            }
            OFF_ADOPT => {
                // Adopt the certified keys — or alert (URfr I.5).
                let adopted = match self.pending_new.take() {
                    Some(keys) if keys.is_certified() => {
                        self.local = Some(keys);
                        true
                    }
                    _ => {
                        self.local = None;
                        false
                    }
                };
                if !adopted {
                    // A certless node cannot take part in the share refresh;
                    // its share will be stale, so route it to recovery.
                    self.pds.mark_share_lost();
                    self.alert(ctx);
                }
            }
            _ => {}
        }
        // PDS signing ticks during Part I (odd offsets from OFF_PA_DECIDE).
        if (OFF_PA_DECIDE..OFF_CERT_DELIVER).contains(&off) && (off - OFF_PA_DECIDE).is_multiple_of(2) {
            self.pds_tick(
                ctx,
                PdsTime {
                    unit,
                    phase: PdsPhase::Normal,
                },
            );
        }
    }
}

impl<A: AlProtocol> Process for UlsNode<A> {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        // Rounds 0–1: DKG over faithful links.
        if ctx.setup_round <= 1 {
            let inbox: Vec<_> = ctx
                .inbox
                .iter()
                .map(|e| (e.from, e.payload.to_vec()))
                .collect();
            for env in self.pds.on_setup_round(ctx.setup_round, &inbox, ctx.rng) {
                ctx.send(env.to, env.payload);
            }
            if ctx.setup_round == 1 {
                // Burn the global verification key into ROM (§4.2.1) and
                // generate + announce unit-0 local keys.
                let pk = self.pds.public_key().expect("DKG done");
                ctx.rom.write("v_cert", pk);
                let keys = LocalKeys::generate(&self.cfg.group, 0, ctx.rng);
                self.setup_vks.insert(self.me.0, keys.vk_bytes());
                for to in NodeId::all(self.cfg.n) {
                    if to != self.me {
                        ctx.send(to, keys.vk_bytes());
                    }
                }
                self.pending_new = Some(keys);
            }
            return;
        }
        // Round 2: collect announced keys, request certificates for all.
        if ctx.setup_round == 2 {
            for env in ctx.inbox {
                self.setup_vks
                    .entry(env.from.0)
                    .or_insert_with(|| env.payload.to_vec());
            }
            let vks = self.setup_vks.clone();
            for (subject, vk) in vks {
                self.pds
                    .request_sign(key_statement(NodeId(subject), 0, &vk), 0);
            }
        }
        // Rounds 2..: drive the PDS over faithful links (messages travel
        // bare — the setup phase is adversary-free), one tick per round.
        let inbox: Vec<_> = ctx
            .inbox
            .iter()
            .map(|e| (e.from, e.payload.to_vec()))
            .collect();
        let outs = self.pds.on_logical_round(
            PdsTime {
                unit: 0,
                phase: PdsPhase::Normal,
            },
            &inbox,
            ctx.rng,
        );
        for env in outs {
            ctx.send(env.to, env.payload);
        }
        for rec in self.pds.take_completed() {
            if let Some((subject, 0, vk)) = parse_key_statement(&rec.msg) {
                if subject == self.me {
                    if let Some(pending) = &mut self.pending_new {
                        if pending.cert.is_none() && pending.vk_bytes() == vk {
                            pending.cert = Some(rec.sig.clone());
                        }
                    }
                } else {
                    let elem = BigUint::from_bytes_be(&vk);
                    if self.cfg.group.contains(&elem) {
                        self.pin_peer_vk(subject.0, 0, elem);
                    }
                }
            }
        }
        // Final setup round: adopt unit-0 keys.
        if ctx.setup_round + 1 == SETUP_ROUNDS {
            if let Some(keys) = self.pending_new.take() {
                if keys.is_certified() {
                    self.local = Some(keys);
                }
            }
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // External inputs.
        if let Some(input) = ctx.input {
            match input.split_first() {
                Some((&1, msg)) => {
                    let msg = msg.to_vec();
                    ctx.emit(OutputEvent::SignRequested {
                        msg: msg.clone(),
                        unit: ctx.time.unit,
                    });
                    self.pds.request_sign(msg, ctx.time.unit);
                }
                Some((&2, bytes)) => self.app_inputs.push_back(bytes.to_vec()),
                _ => {}
            }
        }

        self.process_inbox(ctx);

        match ctx.time.phase {
            Phase::RefreshPart1 { step } => self.part1_actions(ctx, step),
            Phase::RefreshPart2 { step } => {
                if step % 2 == 0 && step / 2 <= 6 {
                    let was_failed_before = self.pds.refresh_failed();
                    self.pds_tick(
                        ctx,
                        PdsTime {
                            unit: ctx.time.unit,
                            phase: PdsPhase::Refresh { step: step / 2 },
                        },
                    );
                    // Alert on refresh failure (URfr Part II, §4.2.3).
                    if step / 2 == 6 && self.pds.refresh_failed() && !was_failed_before {
                        self.alert(ctx);
                    }
                }
            }
            Phase::Normal => {
                let tick_parity = if ctx.time.unit == 0 {
                    ctx.time.round_in_unit.is_multiple_of(2)
                } else {
                    (ctx.time.round_in_unit - (PART1_ROUNDS + PART2_ROUNDS)).is_multiple_of(2)
                };
                if tick_parity {
                    self.pds_tick(
                        ctx,
                        PdsTime {
                            unit: ctx.time.unit,
                            phase: PdsPhase::Normal,
                        },
                    );
                    self.app_tick(ctx);
                }
            }
        }

        for entry in self.disperse.drain_outgoing() {
            ctx.send_many(entry.to, entry.payload);
        }
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
