//! Ground-truth link reliability (Definition 4) and the inductive
//! `s`-operational / `s`-disconnected classification (Definitions 5–6).
//!
//! The runner records exactly what was sent and what was delivered each round
//! and feeds both to this module. A link `{i,j}` is *reliable in a round* iff
//! neither endpoint is broken and the messages delivered on the link in each
//! direction are exactly the messages sent (no loss, no modification, no
//! injection, no replay).
//!
//! **A note on Definition 5.** The paper gives two phrasings of the
//! stay-operational condition 2(b): the main text asks for reliable links to
//! "at least n−s+1 nodes that were s-operational", the parenthetical asks for
//! "unreliable links to less than s other s-operational nodes". These are
//! equivalent only when every node is operational. The main-text reading
//! makes the network collapse when `t = s` nodes are broken (every honest
//! node then counts `s` unreliable links to previously-operational nodes),
//! contradicting the narrative that a `(t,t)`-limited adversary breaks up to
//! a minority of nodes per unit; the parenthetical reading does not, because
//! links to *broken* (hence non-operational) nodes stop counting. We
//! implement both as [`OperationalRule`] and default to the parenthetical
//! ([`OperationalRule::Parenthetical`]); experiment E1 quantifies the
//! difference. The rejoin rule 3(b) uses `n−s` helper nodes (self-exclusive),
//! matching the counts used in the proofs of Lemmas 15 and 20.

use crate::message::{Envelope, NodeId};
use crate::pool::WorkerPool;

/// A symmetric boolean matrix over node pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl PairMatrix {
    /// An `n×n` matrix with every entry set to `value`.
    pub fn filled(n: usize, value: bool) -> Self {
        PairMatrix {
            n,
            bits: vec![value; n * n],
        }
    }

    fn at(&self, a: NodeId, b: NodeId) -> usize {
        a.idx() * self.n + b.idx()
    }

    /// Gets entry `{a,b}`.
    pub fn get(&self, a: NodeId, b: NodeId) -> bool {
        self.bits[self.at(a, b)]
    }

    /// Sets entry `{a,b}` symmetrically.
    pub fn set(&mut self, a: NodeId, b: NodeId, value: bool) {
        let i = self.at(a, b);
        let j = self.at(b, a);
        self.bits[i] = value;
        self.bits[j] = value;
    }

    /// ANDs another matrix into this one (used to accumulate
    /// "reliable-throughout-the-phase").
    pub fn and_with(&mut self, other: &PairMatrix) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a = *a && *b;
        }
    }
}

/// Computes per-round link reliability from ground truth.
///
/// `sent` are the messages produced this round (by honest nodes and by the
/// adversary in the name of broken nodes); `delivered` is what the network
/// (i.e. the adversary, in the UL model) actually handed to receivers at the
/// end of the round.
pub fn link_reliability(
    n: usize,
    sent: &[Envelope],
    delivered: &[Envelope],
    broken: &[bool],
) -> PairMatrix {
    let ctx = PairContext::new(n, sent, delivered);
    let mut m = PairMatrix::filled(n, true);
    for (a, row) in m.bits.chunks_mut(n).enumerate() {
        ctx.fill_row(n, a, broken, row);
    }
    m
}

/// [`link_reliability`] with the rows computed on a worker pool. Rows are
/// independent and the per-entry formula is symmetric, so the result is
/// identical to the serial computation.
pub fn link_reliability_pooled(
    n: usize,
    sent: &[Envelope],
    delivered: &[Envelope],
    broken: &[bool],
    pool: &mut WorkerPool,
) -> PairMatrix {
    let ctx = PairContext::new(n, sent, delivered);
    let mut m = PairMatrix::filled(n, true);
    let mut rows: Vec<&mut [bool]> = m.bits.chunks_mut(n).collect();
    pool.for_each_mut(&mut rows, |a, row| ctx.fill_row(n, a, broken, row));
    drop(rows);
    m
}

/// Per-directed-pair payload multisets, shared by the serial and pooled
/// reliability computations. Payload order within a pair is irrelevant in a
/// synchronous round, so the lists are kept sorted for multiset comparison.
struct PairContext<'a> {
    sent_by_pair: Vec<Vec<&'a [u8]>>,
    dlv_by_pair: Vec<Vec<&'a [u8]>>,
}

impl<'a> PairContext<'a> {
    fn new(n: usize, sent: &'a [Envelope], delivered: &'a [Envelope]) -> Self {
        let mut sent_by_pair = collect_by_pair(n, sent);
        let mut dlv_by_pair = collect_by_pair(n, delivered);
        for v in sent_by_pair.iter_mut().chain(dlv_by_pair.iter_mut()) {
            v.sort_unstable();
        }
        PairContext {
            sent_by_pair,
            dlv_by_pair,
        }
    }

    /// Whether the delivered multiset matched the sent one on the directed
    /// pair with flat index `flat`.
    fn dir_ok(&self, flat: usize) -> bool {
        self.sent_by_pair[flat] == self.dlv_by_pair[flat]
    }

    /// Fills row `a` of the reliability matrix: entry `{a,b}` holds iff
    /// neither endpoint is broken and both directions matched exactly. The
    /// formula is symmetric in `(a, b)`, so rows can be filled independently
    /// (in any order, on any thread) and still produce a symmetric matrix.
    fn fill_row(&self, n: usize, a: usize, broken: &[bool], row: &mut [bool]) {
        for (b, cell) in row.iter_mut().enumerate() {
            *cell = a == b
                || (!broken[a] && !broken[b] && self.dir_ok(a * n + b) && self.dir_ok(b * n + a));
        }
    }
}

fn collect_by_pair(n: usize, msgs: &[Envelope]) -> Vec<Vec<&[u8]>> {
    let mut by_pair: Vec<Vec<&[u8]>> = vec![Vec::new(); n * n];
    for e in msgs {
        by_pair[e.from.idx() * n + e.to.idx()].push(&e.payload);
    }
    by_pair
}

/// Which reading of Definition 5, condition 2(b), to apply (see the module
/// docs for why the paper admits two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperationalRule {
    /// Parenthetical reading: a node stays operational while it has
    /// **fewer than `s` unreliable links to previously-operational nodes**.
    #[default]
    Parenthetical,
    /// Main-text reading: a node stays operational while it has
    /// **at least `n−s` reliable links to previously-operational nodes**.
    MainText,
}

/// Tracks the `s`-operational set across rounds per Definition 5.
#[derive(Debug, Clone)]
pub struct OperationalTracker {
    n: usize,
    s: usize,
    rule: OperationalRule,
    /// Operational status after the most recent round.
    operational: Vec<bool>,
    /// Whether the first round has been processed.
    started: bool,
    /// Refresh-phase accumulators (present while inside a refresh phase).
    phase: Option<PhaseAccum>,
}

#[derive(Debug, Clone)]
struct PhaseAccum {
    /// Nodes operational at *every* round so far in this phase.
    ops_throughout: Vec<bool>,
    /// Nodes unbroken at every round so far in this phase.
    unbroken_throughout: Vec<bool>,
    /// Links reliable at every round so far in this phase.
    reliable_throughout: PairMatrix,
}

impl OperationalTracker {
    /// Creates a tracker for an `n`-node network with threshold `s`, using
    /// the default ([`OperationalRule::Parenthetical`]) rule.
    pub fn new(n: usize, s: usize) -> Self {
        Self::with_rule(n, s, OperationalRule::default())
    }

    /// Creates a tracker with an explicit Definition-5 reading.
    pub fn with_rule(n: usize, s: usize, rule: OperationalRule) -> Self {
        OperationalTracker {
            n,
            s,
            rule,
            // Before the first communication round every node is operational
            // (the set-up phase is adversary-free); rule 1 takes over at the
            // first processed round.
            operational: vec![true; n],
            started: false,
            phase: None,
        }
    }

    /// The current operational set (after the last processed round).
    pub fn operational(&self) -> &[bool] {
        &self.operational
    }

    /// Whether node `i` is currently `s`-operational.
    pub fn is_operational(&self, i: NodeId) -> bool {
        self.operational[i.idx()]
    }

    /// Count of currently operational nodes.
    pub fn count(&self) -> usize {
        self.operational.iter().filter(|&&b| b).count()
    }

    /// Processes one round of ground truth.
    ///
    /// * `broken` — nodes broken during this round;
    /// * `reliable` — per-round link reliability from [`link_reliability`];
    /// * `in_refresh` — whether this round is inside a refreshment phase;
    /// * `refresh_end` — whether this is the final round of the phase (the
    ///   rejoin rule of Definition 5.3 fires here).
    pub fn on_round(
        &mut self,
        broken: &[bool],
        reliable: &PairMatrix,
        in_refresh: bool,
        refresh_end: bool,
    ) {
        self.on_round_pooled(broken, reliable, in_refresh, refresh_end, None);
    }

    /// [`OperationalTracker::on_round`] with the per-node induction step
    /// (rule 2) distributed over a worker pool. Each node's new status
    /// depends only on the *previous* round's set — snapshotted before the
    /// update — so the result is identical for any worker count.
    pub fn on_round_pooled(
        &mut self,
        broken: &[bool],
        reliable: &PairMatrix,
        in_refresh: bool,
        refresh_end: bool,
        pool: Option<&mut WorkerPool>,
    ) {
        let need = self.n.saturating_sub(self.s);
        if !self.started {
            // Rule 1: in the first round, operational = not broken.
            self.started = true;
            for (op, &b) in self.operational.iter_mut().zip(broken) {
                *op = !b;
            }
        } else {
            // Rule 2: stay operational if unbroken and sufficiently connected
            // to previously-operational nodes (reading per `self.rule`).
            let prev = self.operational.clone();
            let n = self.n;
            let s = self.s;
            let rule = self.rule;
            let step = |a_idx: usize| -> bool {
                if !prev[a_idx] || broken[a_idx] {
                    return false;
                }
                let a = NodeId::from_idx(a_idx);
                // Peers that count: operational at the previous round and not
                // currently broken (a broken peer is definitively not
                // s-operational this round, so the parenthetical's "other
                // s-operational nodes" cannot include it).
                let (reliable_ops, unreliable_ops) = NodeId::all(n)
                    .filter(|&b| b != a && prev[b.idx()] && !broken[b.idx()])
                    .fold((0usize, 0usize), |(r, u), b| {
                        if reliable.get(a, b) {
                            (r + 1, u)
                        } else {
                            (r, u + 1)
                        }
                    });
                match rule {
                    OperationalRule::Parenthetical => unreliable_ops < s,
                    OperationalRule::MainText => reliable_ops >= need,
                }
            };
            match pool {
                Some(pool) => {
                    pool.for_each_mut(&mut self.operational, |a_idx, op| *op = step(a_idx));
                }
                None => {
                    for (a_idx, op) in self.operational.iter_mut().enumerate() {
                        *op = step(a_idx);
                    }
                }
            }
        }

        // Maintain refresh-phase accumulators.
        if in_refresh {
            let accum = self.phase.get_or_insert_with(|| PhaseAccum {
                ops_throughout: vec![true; self.n],
                unbroken_throughout: vec![true; self.n],
                reliable_throughout: PairMatrix::filled(self.n, true),
            });
            for (i, &b) in broken.iter().enumerate().take(self.n) {
                accum.ops_throughout[i] &= self.operational[i];
                accum.unbroken_throughout[i] &= !b;
            }
            accum.reliable_throughout.and_with(reliable);

            if refresh_end {
                // Rule 3: rejoin — unbroken throughout the phase, with
                // reliable links throughout to ≥ n−s throughout-operational
                // nodes.
                let accum = self.phase.take().expect("accumulator present");
                for a in NodeId::all(self.n) {
                    if self.operational[a.idx()] || !accum.unbroken_throughout[a.idx()] {
                        continue;
                    }
                    let helpers = NodeId::all(self.n)
                        .filter(|&b| {
                            b != a
                                && accum.ops_throughout[b.idx()]
                                && accum.reliable_throughout.get(a, b)
                        })
                        .count();
                    if helpers >= need {
                        self.operational[a.idx()] = true;
                    }
                }
            }
        } else {
            self.phase = None;
        }
    }
}

/// Per-cluster Definition-4/5 ground truth for the §6 two-level topology:
/// one [`OperationalTracker`] per cluster, each judging its members against
/// the *cluster-local* links only.
///
/// In the hierarchical construction a node's protocol obligations run over
/// its √n-cluster (its PDS peers and its representative), so the honest
/// notion of "s-operational" is cluster-local: a node disconnected from the
/// rest of the system but well-connected inside its cluster keeps operating,
/// and conversely, links to other clusters cannot save a node its own
/// cluster can no longer reach. The per-cluster disconnection bound is
/// `max(1, min(s, ⌊(m_c−1)/2⌋))` for a cluster of `m_c` members — the
/// cluster-local analogue of the run's `s`, capped by what a PDS of that
/// size can tolerate.
#[derive(Debug, Clone)]
pub struct ClusterTrackers {
    /// Cluster membership (1-based global node ids).
    clusters: Vec<Vec<u32>>,
    trackers: Vec<OperationalTracker>,
    /// Global operational view, rebuilt from the per-cluster trackers.
    operational: Vec<bool>,
}

impl ClusterTrackers {
    /// Builds one tracker per cluster over an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if the clusters do not cover `1..=n` exactly once.
    pub fn new(clusters: Vec<Vec<u32>>, n: usize, s: usize, rule: OperationalRule) -> Self {
        let mut seen = vec![false; n];
        for &m in clusters.iter().flatten() {
            assert!(m >= 1 && m as usize <= n, "cluster member {m} out of range");
            assert!(!seen[(m - 1) as usize], "node {m} in two clusters");
            seen[(m - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "clusters must cover every node");
        let trackers = clusters
            .iter()
            .map(|members| {
                let m = members.len();
                let s_c = s.min(m.saturating_sub(1) / 2).max(1);
                OperationalTracker::with_rule(m, s_c, rule)
            })
            .collect();
        ClusterTrackers {
            clusters,
            trackers,
            operational: vec![true; n],
        }
    }

    /// The global operational set, stitched from the per-cluster trackers.
    pub fn operational(&self) -> &[bool] {
        &self.operational
    }

    /// Whether node `i` is operational within its cluster.
    pub fn is_operational(&self, i: NodeId) -> bool {
        self.operational[i.idx()]
    }

    /// Operational members of cluster `c` (for per-cluster reporting).
    pub fn cluster_operational_count(&self, c: usize) -> usize {
        self.trackers[c].count()
    }

    /// Members of cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.clusters[c].len()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Processes one round: restricts the global `broken` set and link
    /// [`PairMatrix`] to each cluster's members and advances that cluster's
    /// tracker. Clusters are small (≈√n), so this runs serially.
    pub fn on_round(
        &mut self,
        broken: &[bool],
        reliable: &PairMatrix,
        in_refresh: bool,
        refresh_end: bool,
    ) {
        for (c, members) in self.clusters.iter().enumerate() {
            let m = members.len();
            let mut local_broken = vec![false; m];
            let mut local_rel = PairMatrix::filled(m, true);
            for (i, &gi) in members.iter().enumerate() {
                local_broken[i] = broken[(gi - 1) as usize];
                for (j, &gj) in members.iter().enumerate().skip(i + 1) {
                    local_rel.set(
                        NodeId::from_idx(i),
                        NodeId::from_idx(j),
                        reliable.get(NodeId(gi), NodeId(gj)),
                    );
                }
            }
            self.trackers[c].on_round(&local_broken, &local_rel, in_refresh, refresh_end);
            let ops = self.trackers[c].operational();
            for (i, &gi) in members.iter().enumerate() {
                self.operational[(gi - 1) as usize] = ops[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_msgs_reliability(n: usize, broken: &[bool]) -> PairMatrix {
        link_reliability(n, &[], &[], broken)
    }

    #[test]
    fn faithful_delivery_is_reliable() {
        let n = 3;
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        let m = link_reliability(n, &sent, &sent, &[false; 3]);
        assert!(m.get(NodeId(1), NodeId(2)));
        assert!(m.get(NodeId(2), NodeId(3)));
    }

    #[test]
    fn dropped_message_breaks_link() {
        let n = 3;
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        let m = link_reliability(n, &sent, &[], &[false; 3]);
        assert!(!m.get(NodeId(1), NodeId(2)));
        assert!(m.get(NodeId(1), NodeId(3)));
    }

    #[test]
    fn injected_message_breaks_link() {
        let n = 3;
        let delivered = vec![Envelope::new(NodeId(1), NodeId(2), vec![9])];
        let m = link_reliability(n, &[], &delivered, &[false; 3]);
        assert!(!m.get(NodeId(1), NodeId(2)));
    }

    #[test]
    fn modified_message_breaks_link() {
        let n = 2;
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        let delivered = vec![Envelope::new(NodeId(1), NodeId(2), vec![2])];
        let m = link_reliability(n, &sent, &delivered, &[false; 2]);
        assert!(!m.get(NodeId(1), NodeId(2)));
    }

    #[test]
    fn replayed_message_breaks_link() {
        // Duplicate delivery of a single sent message = replay (Def. 4
        // excludes it: the replayed copy is "another message").
        let n = 2;
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        let delivered = vec![
            Envelope::new(NodeId(1), NodeId(2), vec![1]),
            Envelope::new(NodeId(1), NodeId(2), vec![1]),
        ];
        let m = link_reliability(n, &sent, &delivered, &[false; 2]);
        assert!(!m.get(NodeId(1), NodeId(2)));
    }

    #[test]
    fn broken_endpoint_breaks_all_links() {
        let n = 3;
        let m = link_reliability(n, &[], &[], &[false, true, false]);
        assert!(!m.get(NodeId(1), NodeId(2)));
        assert!(!m.get(NodeId(2), NodeId(3)));
        assert!(m.get(NodeId(1), NodeId(3)));
    }

    #[test]
    fn initially_unbroken_nodes_are_operational() {
        let n = 5;
        let mut t = OperationalTracker::new(n, 2);
        let broken = [false, true, false, false, false];
        t.on_round(&broken, &no_msgs_reliability(n, &broken), false, false);
        assert!(!t.is_operational(NodeId(2)));
        assert!(t.is_operational(NodeId(1)));
        assert_eq!(t.count(), 4);
    }

    #[test]
    fn disconnection_loses_operational_status() {
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        let none = [false; 5];
        t.on_round(&none, &no_msgs_reliability(n, &none), false, false);
        assert_eq!(t.count(), 5);
        // Cut s = 2 of node 1's links: operational requires n−s = 3 good
        // links; node 1 has exactly 2 → disconnected.
        let mut rel = no_msgs_reliability(n, &none);
        rel.set(NodeId(1), NodeId(2), false);
        rel.set(NodeId(1), NodeId(3), false);
        t.on_round(&none, &rel, false, false);
        assert!(!t.is_operational(NodeId(1)));
        assert_eq!(t.count(), 4);
    }

    #[test]
    fn fewer_cut_links_keep_operational() {
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        let none = [false; 5];
        t.on_round(&none, &no_msgs_reliability(n, &none), false, false);
        let mut rel = no_msgs_reliability(n, &none);
        rel.set(NodeId(1), NodeId(2), false); // only one bad link < s
        t.on_round(&none, &rel, false, false);
        assert!(t.is_operational(NodeId(1)));
    }

    #[test]
    fn rejoin_at_refresh_end() {
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        // Round 0: node 1 broken.
        let b1 = [true, false, false, false, false];
        t.on_round(&b1, &no_msgs_reliability(n, &b1), false, false);
        assert!(!t.is_operational(NodeId(1)));
        // Node 1 recovers (unbroken) but is not yet operational mid-unit.
        let none = [false; 5];
        t.on_round(&none, &no_msgs_reliability(n, &none), false, false);
        assert!(!t.is_operational(NodeId(1)));
        // A 3-round refresh phase with full reliability: rejoins at the end.
        t.on_round(&none, &no_msgs_reliability(n, &none), true, false);
        assert!(!t.is_operational(NodeId(1)));
        t.on_round(&none, &no_msgs_reliability(n, &none), true, false);
        t.on_round(&none, &no_msgs_reliability(n, &none), true, true);
        assert!(t.is_operational(NodeId(1)));
    }

    #[test]
    fn broken_during_refresh_cannot_rejoin() {
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        let b1 = [true, false, false, false, false];
        t.on_round(&b1, &no_msgs_reliability(n, &b1), false, false);
        // Refresh phase, but node 1 is broken in its middle round.
        let none = [false; 5];
        t.on_round(&none, &no_msgs_reliability(n, &none), true, false);
        t.on_round(&b1, &no_msgs_reliability(n, &b1), true, false);
        t.on_round(&none, &no_msgs_reliability(n, &none), true, true);
        assert!(!t.is_operational(NodeId(1)));
    }

    #[test]
    fn rejoin_requires_reliable_links_throughout() {
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        let b1 = [true, false, false, false, false];
        t.on_round(&b1, &no_msgs_reliability(n, &b1), false, false);
        let none = [false; 5];
        // During the refresh phase the adversary cuts 2 of node 1's links in
        // one round → only 2 helper links reliable-throughout < n−s = 3.
        let mut rel = no_msgs_reliability(n, &none);
        rel.set(NodeId(1), NodeId(2), false);
        rel.set(NodeId(1), NodeId(3), false);
        t.on_round(&none, &rel, true, false);
        t.on_round(&none, &no_msgs_reliability(n, &none), true, true);
        assert!(!t.is_operational(NodeId(1)));
    }

    #[test]
    fn rejoined_helpers_must_be_operational_throughout() {
        // Nodes that themselves were broken in the previous unit cannot help
        // each other rejoin (the paper's motivating subtlety for Def. 5).
        let n = 5;
        let s = 2;
        let mut t = OperationalTracker::new(n, s);
        // Break nodes 1,2 initially.
        let b12 = [true, true, false, false, false];
        t.on_round(&b12, &no_msgs_reliability(n, &b12), false, false);
        let none = [false; 5];
        // Refresh with reliable links ONLY between 1 and 2 (others cut off
        // from them): no throughout-operational helpers for 1 or 2.
        let mut rel = no_msgs_reliability(n, &none);
        for a in [NodeId(1), NodeId(2)] {
            for b in [NodeId(3), NodeId(4), NodeId(5)] {
                rel.set(a, b, false);
            }
        }
        t.on_round(&none, &rel.clone(), true, false);
        t.on_round(&none, &rel, true, true);
        // 1 and 2 cannot rejoin: their only reliable link is to each other,
        // and neither is operational-throughout.
        assert!(!t.is_operational(NodeId(1)));
        assert!(!t.is_operational(NodeId(2)));
        // 3,4,5 keep status: their unreliable links point only at
        // non-operational nodes, which the parenthetical rule ignores.
        assert!(t.is_operational(NodeId(3)));
        assert!(t.is_operational(NodeId(4)));
        assert!(t.is_operational(NodeId(5)));
    }

    #[test]
    fn breaking_t_nodes_keeps_others_operational_under_parenthetical() {
        // The property that motivates the default rule: a (t,t)-limited
        // adversary can break t nodes without impairing anyone else.
        let n = 5;
        let t_broken = [true, true, false, false, false]; // t = s = 2 broken
        let mut tr = OperationalTracker::new(n, 2);
        let none = [false; 5];
        tr.on_round(&none, &no_msgs_reliability(n, &none), false, false);
        tr.on_round(&t_broken, &no_msgs_reliability(n, &t_broken), false, false);
        assert_eq!(tr.count(), 3, "honest nodes stay operational");

        // Under the main-text rule the same round disconnects everyone.
        let mut strict = OperationalTracker::with_rule(n, 2, OperationalRule::MainText);
        strict.on_round(&none, &no_msgs_reliability(n, &none), false, false);
        strict.on_round(&t_broken, &no_msgs_reliability(n, &t_broken), false, false);
        assert_eq!(strict.count(), 0, "main-text reading collapses");
    }
}
