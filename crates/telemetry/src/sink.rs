//! Flight-recorder sinks: where the JSONL event stream goes.

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A destination for encoded JSONL trace bytes.
#[derive(Debug)]
pub enum Sink {
    /// Buffered file writer (the `PROAUTH_TRACE=path` / `--trace` target).
    File(Mutex<BufWriter<std::fs::File>>),
    /// Shared in-memory buffer, used by tests to capture and compare traces.
    Memory(Arc<Mutex<Vec<u8>>>),
}

impl Sink {
    /// Opens (creating/truncating) a file sink.
    pub fn file(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Sink::File(Mutex::new(BufWriter::new(f))))
    }

    /// Creates a memory sink plus the shared buffer it writes into.
    pub fn memory() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (Sink::Memory(Arc::clone(&buf)), buf)
    }

    /// Appends raw bytes (already newline-terminated JSONL).
    pub fn write(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        match self {
            Sink::File(w) => {
                let _ = lock(w).write_all(bytes);
            }
            Sink::Memory(buf) => lock(buf).extend_from_slice(bytes),
        }
    }

    /// Flushes buffered output (file sinks).
    pub fn flush(&self) {
        if let Sink::File(w) = self {
            let _ = lock(w).flush();
        }
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Reads a memory-sink buffer out as a UTF-8 string.
pub fn memory_contents(buf: &Arc<Mutex<Vec<u8>>>) -> String {
    String::from_utf8_lossy(&lock(buf)).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates() {
        let (sink, buf) = Sink::memory();
        sink.write(b"{\"ev\":\"a\"}\n");
        sink.write(b"");
        sink.write(b"{\"ev\":\"b\"}\n");
        assert_eq!(memory_contents(&buf), "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n");
    }

    #[test]
    fn file_sink_writes_and_flushes() {
        let path = std::env::temp_dir().join(format!(
            "proauth-telemetry-sink-test-{}.jsonl",
            std::process::id()
        ));
        {
            let sink = Sink::file(&path).expect("create");
            sink.write(b"{\"ev\":\"x\"}\n");
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"ev\":\"x\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
