//! # proauth-primitives
//!
//! Foundation layer for the `proauth` reproduction of Canetti–Halevi–Herzberg,
//! *"Maintaining Authenticated Communication in the Presence of Break-Ins"*
//! (PODC 1997 / J. Cryptology 2000).
//!
//! The offline dependency policy for this repository forbids external crypto
//! and bignum crates, so everything the upper layers need is built here from
//! scratch:
//!
//! * [`bigint`] — arbitrary-precision unsigned arithmetic (Knuth division,
//!   modular exponentiation, Miller–Rabin).
//! * [`sha256`] — FIPS 180-4 SHA-256, the protocol's random oracle.
//! * [`wire`] — canonical deterministic encoding for everything signed.
//! * [`hex`] — small hex helpers for display and fixtures.
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::{bigint::BigUint, sha256::Sha256};
//!
//! let p = BigUint::from_u64(101);
//! let g = BigUint::from_u64(2);
//! assert_eq!(g.modpow(&BigUint::from_u64(100), &p), BigUint::one());
//! let _digest = Sha256::digest(b"hello");
//! ```

pub mod bigint;
pub mod hex;
pub mod hmac;
pub mod montgomery;
pub mod sha256;
pub mod wire;
