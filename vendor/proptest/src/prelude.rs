//! One-stop imports (mirror of `proptest::prelude`).

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Crate alias so `prop::sample::Index`, `prop::collection::vec`, etc. work.
pub use crate as prop;
