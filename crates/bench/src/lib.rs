//! # proauth-bench
//!
//! Shared infrastructure for the experiment harnesses that reproduce the
//! paper's claims (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results). Each experiment is a bench target
//! (`harness = false` for table-producing experiments, Criterion for timing
//! ones), so `cargo bench` regenerates everything.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::message::NodeId;
use proauth_sim::runner::SimConfig;

/// Prints a paper-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Standard ULS simulation config used across experiments.
pub fn uls_cfg(n: usize, t: usize, normal_rounds: u64, units: u64, seed: u64) -> SimConfig {
    let schedule = uls_schedule(normal_rounds);
    let mut c = SimConfig::new(n, t, schedule);
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = schedule.unit_rounds * units;
    c.seed = seed;
    c
}

/// Standard ULS node factory (heartbeat top layer, toy group).
pub fn uls_node(n: usize, t: usize) -> impl Fn(NodeId) -> UlsNode<HeartbeatApp> {
    move |id| {
        let group = Group::new(GroupId::Toy64);
        UlsNode::new(UlsConfig::new(group, n, t), id, HeartbeatApp::default())
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 2), "50.0%");
        assert_eq!(pct(0, 0), "-");
    }

    #[test]
    fn cfg_shape() {
        let c = uls_cfg(5, 2, 12, 3, 1);
        assert_eq!(c.n, 5);
        assert_eq!(c.total_rounds, c.schedule.unit_rounds * 3);
    }
}
