//! Length-prefixed framing over a byte stream.
//!
//! A frame is a `u32` big-endian length followed by that many payload bytes
//! (a [`crate::net::msg::NetMsg`] in the canonical `primitives::wire`
//! encoding). The length covers the payload only, and is capped at
//! [`MAX_FRAME`]: a peer announcing more is malformed (or adversarial) and
//! the connection must be dropped — the decoder reports it as an error and
//! never allocates for it. Truncated input is simply "not yet a frame";
//! garbage bytes surface either here (oversized length) or at the `NetMsg`
//! decode layer (invalid tag / bad length), never as a panic.

use std::fmt;

/// Maximum frame payload size. Generous for protocol traffic (the largest
/// legitimate frames are DISPERSE bundles well under a mebibyte) while
/// keeping a garbage length prefix from looking like a 4 GiB allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Framing violation: the stream cannot be resynchronized and must be closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        announced: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { announced } => {
                write!(f, "frame length {announced} exceeds cap {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame (length prefix + payload) onto the end of `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME`] — sending an unreceivable frame
/// is a programming error, not a runtime condition.
pub fn encode_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds MAX_FRAME");
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame decoder: feed arbitrary byte chunks in, take complete
/// frames out. Tolerates any chunking (one byte at a time, many frames per
/// chunk, frames split across chunks).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away lazily so a
    /// burst of small frames does not memmove per frame.
    pos: usize,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact when the consumed prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes" (truncated input is never an
    /// error); `Err` means the stream is malformed and must be closed.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Oversized`] when a length prefix exceeds
    /// [`MAX_FRAME`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let header = &self.buf[self.pos..self.pos + 4];
        let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized { announced: len });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 1000], vec![3, 4, 5]];
        let mut stream = Vec::new();
        for p in &payloads {
            encode_frame(&mut stream, p);
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(&[*b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn truncated_is_not_an_error() {
        let mut stream = Vec::new();
        encode_frame(&mut stream, &[9u8; 50]);
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..30]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.push(&stream[30..]);
        assert_eq!(dec.next_frame().unwrap(), Some(vec![9u8; 50]));
    }

    #[test]
    fn oversized_rejected_without_allocation() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }
}
