//! Property-based tests for `BigUint`: ring axioms, division invariants,
//! modular arithmetic laws, and serialization roundtrips.

use proauth_primitives::bigint::BigUint;
use proptest::prelude::*;

/// Strategy producing a BigUint of up to 6 limbs (384 bits).
fn big() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(BigUint::from_limbs)
}

/// Strategy producing a nonzero BigUint.
fn big_nonzero() -> impl Strategy<Value = BigUint> {
    big().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_commutative(a in big(), b in big()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associative(a in big(), b in big(), c in big()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_sub_inverse(a in big(), b in big()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutative(a in big(), b in big()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_associative(a in big(), b in big(), c in big()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn mul_distributes_over_add(a in big(), b in big(), c in big()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn divrem_reconstructs(a in big(), d in big_nonzero()) {
        let (q, r) = a.divrem(&d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
        prop_assert!(r < d);
    }

    #[test]
    fn shl_shr_roundtrip(a in big(), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in big(), n in 0usize..100) {
        let pow = BigUint::one().shl(n);
        prop_assert_eq!(a.shl(n), a.mul(&pow));
    }

    #[test]
    fn bytes_roundtrip(a in big()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in big()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_matches_naive(base in any::<u64>(), exp in 0u64..40, m in 2u64..1_000_000) {
        let big_m = BigUint::from_u64(m);
        let got = BigUint::from_u64(base).modpow(&BigUint::from_u64(exp), &big_m);
        // Naive u128 computation.
        let mut acc: u128 = 1;
        for _ in 0..exp {
            acc = acc * (base as u128 % m as u128) % m as u128;
        }
        prop_assert_eq!(got, BigUint::from_u64(acc as u64));
    }

    #[test]
    fn inv_mod_prime_is_inverse(a in 1u64..1_000_000_006) {
        let p = BigUint::from_u64(1_000_000_007);
        let ab = BigUint::from_u64(a);
        let inv = ab.inv_mod_prime(&p).unwrap();
        prop_assert_eq!(ab.mul_mod(&inv, &p), BigUint::one());
    }

    #[test]
    fn cmp_consistent_with_sub(a in big(), b in big()) {
        if a >= b {
            let d = a.sub(&b);
            prop_assert_eq!(b.add(&d), a);
        } else {
            let d = b.sub(&a);
            prop_assert_eq!(a.add(&d), b);
        }
    }

    #[test]
    fn add_mod_stays_reduced(a in big(), b in big(), m in big_nonzero()) {
        let ar = a.rem(&m);
        let br = b.rem(&m);
        let s = ar.add_mod(&br, &m);
        prop_assert!(s < m);
        prop_assert_eq!(s, ar.add(&br).rem(&m));
    }

    #[test]
    fn sub_mod_stays_reduced(a in big(), b in big(), m in big_nonzero()) {
        let ar = a.rem(&m);
        let br = b.rem(&m);
        let d = ar.sub_mod(&br, &m);
        prop_assert!(d < m);
        prop_assert_eq!(d.add(&br).rem(&m), ar);
    }
}
