#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# The round engine must be invisible in results: the full suite runs once
# with a single-worker pool and once with four workers (PROAUTH_THREADS
# defaults SimConfig::parallel to true), and must pass identically.
PROAUTH_THREADS=1 cargo test -q
PROAUTH_THREADS=4 cargo test -q

cargo clippy --workspace --all-targets -- -D warnings
