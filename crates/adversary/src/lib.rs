//! # proauth-adversary
//!
//! Adversary strategies against the `proauth` protocol stack — the attack
//! catalogue of §1.1/§1.3/§5.1 of Canetti–Halevi–Herzberg plus the
//! instrumentation that checks an attack stayed `(s,t)`-limited
//! (Definition 7):
//!
//! * [`strategies`] — link-level attacks: cutting, dropping, injecting,
//!   replaying, composition;
//! * [`breakins`] — mobile break-in schedules with memory-corruption modes;
//! * [`impersonation`] — the key-theft and certification-hijack attacks the
//!   awareness property exists to expose;
//! * [`limits`] — per-unit impairment accounting.

pub mod breakins;
pub mod impersonation;
pub mod limits;
pub mod strategies;

pub use breakins::{CorruptMode, MobileBreakins, Visit};
pub use impersonation::{forge_app_message, Hijacker, KeyThief};
pub use limits::LimitObserver;
pub use strategies::{Composed, Injector, LinkCutter, RandomDropper, Replayer};
