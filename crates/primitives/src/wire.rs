//! Canonical, deterministic binary encoding.
//!
//! Every message that is signed or hashed in the protocol stack must have a
//! single canonical byte representation. The offline dependency set has no
//! serde *serializer*, so this module provides a small, explicit
//! length-prefixed encoding with [`Encode`]/[`Decode`] traits.
//!
//! The format is: fixed-width big-endian integers, `u32` length prefixes for
//! byte strings and sequences, one tag byte for `Option`/enums. Decoding is
//! strict — [`Decode::from_bytes`] rejects trailing bytes, so encodings are
//! injective on the value domain.
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::wire::{Encode, Decode};
//!
//! let v: Vec<u64> = vec![1, 2, 3];
//! let bytes = v.to_bytes();
//! assert_eq!(Vec::<u64>::from_bytes(&bytes)?, v);
//! # Ok::<(), proauth_primitives::wire::WireError>(())
//! ```

use crate::bigint::BigUint;
use crate::sha256::Sha256;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Bytes remained after a full value was decoded.
    TrailingBytes,
    /// An enum/option tag byte had an unknown value.
    InvalidTag(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A declared length exceeds the remaining input.
    BadLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::BadLength => write!(f, "declared length exceeds input"),
        }
    }
}

impl std::error::Error for WireError {}

/// Accumulates an encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no prefix (caller guarantees fixed width).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over an encoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Writes `self` into `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types decodable from the canonical encoding.
pub trait Decode: Sized {
    /// Reads a value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed or over-long input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(v)
    }
}

macro_rules! impl_wire_uint {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    };
}

impl_wire_uint!(u8, put_u8, get_u8);
impl_wire_uint!(u16, put_u16, get_u16);
impl_wire_uint!(u32, put_u32, get_u32);
impl_wire_uint!(u64, put_u64, get_u64);

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_bytes()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        String::from_utf8(r.get_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

// Vec<u8> has a dedicated impl above; generic sequences of multi-byte items.
macro_rules! impl_wire_vec {
    ($item:ty) => {
        impl Encode for Vec<$item> {
            fn encode(&self, w: &mut Writer) {
                w.put_u32(self.len() as u32);
                for item in self {
                    item.encode(w);
                }
            }
        }
        impl Decode for Vec<$item> {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let len = r.get_u32()? as usize;
                // Each item takes at least one byte; reject absurd lengths.
                if len > r.remaining() {
                    return Err(WireError::BadLength);
                }
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(<$item>::decode(r)?);
                }
                Ok(out)
            }
        }
    };
}

impl_wire_vec!(u16);
impl_wire_vec!(u32);
impl_wire_vec!(u64);
impl_wire_vec!(Vec<u8>);
impl_wire_vec!(String);
impl_wire_vec!(BigUint);

/// Encodes a sequence of arbitrary `Encode` items with a length prefix.
pub fn encode_seq<T: Encode>(items: &[T], w: &mut Writer) {
    w.put_u32(items.len() as u32);
    for item in items {
        item.encode(w);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::BadLength);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl Encode for BigUint {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.to_bytes_be());
    }
}

impl Decode for BigUint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BigUint::from_bytes_be(&r.get_bytes()?))
    }
}

/// An interned, content-addressed byte blob.
///
/// One allocation (`Arc<[u8]>`) shared by every holder — fan-out envelopes,
/// relay duty, dedup tables, adversary inspection — plus a lazily computed
/// SHA-256 digest cached next to the bytes, so content addressing costs one
/// hash per blob no matter how many parties handle it.
///
/// Encodes byte-identically to `Vec<u8>` (`u32` length prefix + raw bytes):
/// swapping a `Vec<u8>` wire field for an `InternedBlob` changes no encoding.
#[derive(Clone)]
pub struct InternedBlob {
    repr: Arc<BlobRepr>,
}

struct BlobRepr {
    bytes: Arc<[u8]>,
    digest: OnceLock<[u8; 32]>,
}

impl InternedBlob {
    /// Interns `bytes` (no copy when handed an existing `Arc<[u8]>`).
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        InternedBlob {
            repr: Arc::new(BlobRepr {
                bytes: bytes.into(),
                digest: OnceLock::new(),
            }),
        }
    }

    /// The blob contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.repr.bytes
    }

    /// The shared byte allocation (for zero-copy conversion into payload
    /// types like the simulator's `Arc<[u8]>`).
    pub fn share_bytes(&self) -> Arc<[u8]> {
        self.repr.bytes.clone()
    }

    /// Content length in bytes.
    pub fn len(&self) -> usize {
        self.repr.bytes.len()
    }

    /// Whether the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.repr.bytes.is_empty()
    }

    /// The SHA-256 digest of the contents, computed at most once across all
    /// clones of this blob.
    pub fn digest(&self) -> &[u8; 32] {
        self.repr.digest.get_or_init(|| Sha256::digest(&self.repr.bytes))
    }
}

impl std::ops::Deref for InternedBlob {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for InternedBlob {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<Vec<u8>> for InternedBlob {
    fn from(v: Vec<u8>) -> Self {
        InternedBlob::new(v)
    }
}

impl From<&[u8]> for InternedBlob {
    fn from(v: &[u8]) -> Self {
        InternedBlob::new(v)
    }
}

impl From<Arc<[u8]>> for InternedBlob {
    fn from(v: Arc<[u8]>) -> Self {
        InternedBlob::new(v)
    }
}

impl From<InternedBlob> for Arc<[u8]> {
    fn from(b: InternedBlob) -> Self {
        b.share_bytes()
    }
}

impl PartialEq for InternedBlob {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.repr.bytes, &other.repr.bytes)
            || self.repr.bytes == other.repr.bytes
    }
}

impl Eq for InternedBlob {}

impl std::hash::Hash for InternedBlob {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.repr.bytes.hash(state);
    }
}

impl fmt::Debug for InternedBlob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InternedBlob({} bytes)", self.len())
    }
}

impl Encode for InternedBlob {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for InternedBlob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InternedBlob::new(r.get_bytes()?))
    }
}

impl Encode for [u8; 32] {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
}

impl Decode for [u8; 32] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = r.get_raw(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(raw);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uints_roundtrip() {
        let mut w = Writer::new();
        1u8.encode(&mut w);
        2u16.encode(&mut w);
        3u32.encode(&mut w);
        4u64.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8);
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 1);
        assert_eq!(u16::decode(&mut r).unwrap(), 2);
        assert_eq!(u32::decode(&mut r).unwrap(), 3);
        assert_eq!(u64::decode(&mut r).unwrap(), 4);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn strict_trailing_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn eof_detected() {
        assert_eq!(u64::from_bytes(&[1, 2, 3]), Err(WireError::UnexpectedEof));
        assert_eq!(Vec::<u8>::from_bytes(&[0, 0, 0, 5, 1]), Err(WireError::BadLength));
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(99);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_bytes(&some.to_bytes()).unwrap(), some);
        assert_eq!(Option::<u32>::from_bytes(&none.to_bytes()).unwrap(), none);
        assert_eq!(Option::<u32>::from_bytes(&[2]), Err(WireError::InvalidTag(2)));
    }

    #[test]
    fn string_roundtrip() {
        let s = "the public key of N_3 in time unit 7".to_owned();
        assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(
            String::from_bytes(&[0, 0, 0, 2, 0xff, 0xfe]),
            Err(WireError::InvalidUtf8)
        );
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u64> = vec![10, 20, 30];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()).unwrap(), v);
        let nested: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2, 3]];
        assert_eq!(Vec::<Vec<u8>>::from_bytes(&nested.to_bytes()).unwrap(), nested);
    }

    #[test]
    fn biguint_roundtrip() {
        let v = BigUint::from_hex("123456789abcdef00ff").unwrap();
        assert_eq!(BigUint::from_bytes(&v.to_bytes()).unwrap(), v);
        assert_eq!(
            BigUint::from_bytes(&BigUint::zero().to_bytes()).unwrap(),
            BigUint::zero()
        );
    }

    #[test]
    fn array32_roundtrip() {
        let a = [7u8; 32];
        assert_eq!(<[u8; 32]>::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn interned_blob_encodes_like_vec_u8() {
        let v = vec![1u8, 2, 3, 4, 5];
        let blob = InternedBlob::from(v.clone());
        assert_eq!(blob.to_bytes(), v.to_bytes());
        let back = InternedBlob::from_bytes(&blob.to_bytes()).unwrap();
        assert_eq!(back, blob);
        assert_eq!(back.as_bytes(), &v[..]);
    }

    #[test]
    fn interned_blob_digest_cached_across_clones() {
        let blob = InternedBlob::from(vec![7u8; 100]);
        let clone = blob.clone();
        let d1 = *blob.digest();
        // The clone sees the already-computed digest (same cache cell).
        let d2 = *clone.digest();
        assert_eq!(d1, d2);
        assert_eq!(d1, Sha256::digest(&[7u8; 100]));
        // Clones share the underlying allocation.
        assert!(Arc::ptr_eq(&blob.share_bytes(), &clone.share_bytes()));
    }

    #[test]
    fn interned_blob_eq_by_content() {
        let a = InternedBlob::from(vec![1u8, 2]);
        let b = InternedBlob::from(vec![1u8, 2]);
        let c = InternedBlob::from(vec![3u8]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn encoding_is_injective() {
        // ("ab","c") vs ("a","bc") as length-prefixed pairs differ.
        let mut w1 = Writer::new();
        w1.put_bytes(b"ab");
        w1.put_bytes(b"c");
        let mut w2 = Writer::new();
        w2.put_bytes(b"a");
        w2.put_bytes(b"bc");
        assert_ne!(w1.into_bytes(), w2.into_bytes());
    }
}
