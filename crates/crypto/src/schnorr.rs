//! Centralized Schnorr signatures — the scheme `CS` of §4 of the paper.
//!
//! The paper requires `CS` to be existentially unforgeable under adaptive
//! chosen-message attack (\[22\]); Schnorr signatures have exactly this property
//! in the random-oracle model under the discrete-log assumption, and are the
//! natural companion of the threshold scheme in [`crate::thresh`], whose
//! output signatures verify with the *same* verification equation.
//!
//! Signatures are in `(e, s)` form: `e = H(R ‖ pk ‖ msg)`, `s = k + e·x`,
//! verified by recomputing `R' = g^s · y^{-e}` and checking `H(R' ‖ pk ‖ msg)
//! = e`.
//!
//! # Examples
//!
//! ```
//! use proauth_crypto::group::{Group, GroupId};
//! use proauth_crypto::schnorr::SigningKey;
//!
//! let group = Group::new(GroupId::Toy64);
//! let mut rng = rand::thread_rng();
//! let sk = SigningKey::generate(&group, &mut rng);
//! let sig = sk.sign(b"hello", &mut rng);
//! assert!(sk.verify_key().verify(b"hello", &sig));
//! ```

use crate::group::Group;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

const DOMAIN: &str = "proauth/schnorr/v1";

/// A Schnorr signature in `(e, s)` form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar.
    pub e: BigUint,
    /// Response scalar.
    pub s: BigUint,
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        self.e.encode(w);
        self.s.encode(w);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature {
            e: BigUint::decode(r)?,
            s: BigUint::decode(r)?,
        })
    }
}

/// A Schnorr verification (public) key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyKey {
    group: Group,
    y: BigUint,
}

impl VerifyKey {
    /// Constructs a verify key from a group element.
    ///
    /// Returns `None` if `y` is not a valid group element.
    pub fn from_element(group: &Group, y: BigUint) -> Option<Self> {
        if group.contains(&y) {
            Some(VerifyKey {
                group: group.clone(),
                y,
            })
        } else {
            None
        }
    }

    /// Constructs a verify key from an element **already known** to be a
    /// valid group member — e.g. a DKG joint public key (a product of
    /// Feldman-validated commitments) or a key that previously went through
    /// [`VerifyKey::from_element`]. Skips the subgroup-membership
    /// exponentiation, which costs a full modpow per call and dominates hot
    /// paths that reconstruct the key every round.
    ///
    /// Callers must not pass untrusted wire data here.
    pub fn from_element_trusted(group: &Group, y: BigUint) -> Self {
        debug_assert!(group.contains(&y));
        VerifyKey {
            group: group.clone(),
            y,
        }
    }

    /// The underlying group element `y = g^x`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Canonical byte encoding of the key (group id is contextual).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.y.to_bytes_be()
    }

    /// Verifies `sig` over `msg`.
    ///
    /// `R' = g^s · y^{q−e}` is computed as one interleaved
    /// multi-exponentiation: the `g` term comes squaring-free from the
    /// generator's comb table, and `y` rides its own comb table whenever the
    /// key was promoted — by [`batch_verify`], by [`Group::promote`] during a
    /// preprocessing window, or by earlier plain exponentiations.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.e >= *self.group.q() || sig.s >= *self.group.q() {
            return false;
        }
        let neg_e = self.group.scalar_neg(&sig.e);
        let r_prime = self.group.multi_exp(&[(self.group.g(), &sig.s), (&self.y, &neg_e)]);
        let e_prime = challenge(&self.group, &r_prime, &self.y, msg);
        e_prime == sig.e
    }

    /// Verifies `sig` over `msg` along the seed code path (two sequential
    /// binary exponentiations). Kept for the E9 ablation and the
    /// batch/property tests' reference semantics.
    pub fn verify_naive(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.e >= *self.group.q() || sig.s >= *self.group.q() {
            return false;
        }
        let y_to_neg_e = self.group.exp_binary(&self.y, &self.group.scalar_neg(&sig.e));
        let r_prime = self
            .group
            .mul(&self.group.exp_binary(self.group.g(), &sig.s), &y_to_neg_e);
        let e_prime = challenge(&self.group, &r_prime, &self.y, msg);
        e_prime == sig.e
    }
}

/// Verifies many `(msg, sig)` pairs under **one** key; `true` iff every
/// signature individually verifies.
///
/// `(e, s)`-form Schnorr cannot be collapsed into a random-linear-
/// combination batch: each check must *recompute* its own `R'` and hash it,
/// so the exponentiations cannot be merged across signatures (contrast
/// [`crate::thresh::batch_verify_partials`], where the commitment `R` is
/// transmitted). What *does* amortize is the per-base work: the batch
/// promotes `y` into the group's table cache up front, making every check
/// in the batch squaring-free on both terms. The certificate-heavy call
/// sites (ULS evidence windows, certificate adoption) verify dozens of
/// signatures under the same `v_cert`, which is exactly this shape.
pub fn batch_verify(vk: &VerifyKey, items: &[(&[u8], &Signature)]) -> bool {
    // Promote the key's table deliberately so even a small batch amortizes.
    if items.len() >= 2 {
        vk.group.promote(&vk.y);
    }
    items.iter().all(|(msg, sig)| vk.verify(msg, sig))
}

/// A Schnorr signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    group: Group,
    x: BigUint,
    vk: VerifyKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret scalar.
        write!(f, "SigningKey(vk = 0x{})", self.vk.element().to_hex())
    }
}

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn generate<R: rand::RngCore>(group: &Group, rng: &mut R) -> Self {
        let x = group.random_nonzero_scalar(rng);
        Self::from_scalar(group, x)
    }

    /// Builds a key pair from an explicit secret scalar.
    pub fn from_scalar(group: &Group, x: BigUint) -> Self {
        let y = group.exp_g(&x);
        SigningKey {
            group: group.clone(),
            x,
            vk: VerifyKey {
                group: group.clone(),
                y,
            },
        }
    }

    /// The corresponding verification key.
    pub fn verify_key(&self) -> &VerifyKey {
        &self.vk
    }

    /// The secret scalar (used by the simulator's break-in semantics).
    pub fn secret_scalar(&self) -> &BigUint {
        &self.x
    }

    /// Signs `msg` with fresh randomness.
    pub fn sign<R: rand::RngCore>(&self, msg: &[u8], rng: &mut R) -> Signature {
        let k = self.group.random_nonzero_scalar(rng);
        let r = self.group.exp_g(&k);
        let e = challenge(&self.group, &r, &self.vk.y, msg);
        let s = self.group.scalar_add(&k, &self.group.scalar_mul(&e, &self.x));
        Signature { e, s }
    }
}

/// The Fiat–Shamir challenge `H(R ‖ y ‖ msg) mod q`.
pub(crate) fn challenge(group: &Group, r: &BigUint, y: &BigUint, msg: &[u8]) -> BigUint {
    group.hash_to_scalar(DOMAIN, &[&r.to_bytes_be(), &y.to_bytes_be(), msg])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, SigningKey, StdRng) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(99);
        let sk = SigningKey::generate(&group, &mut rng);
        (group, sk, rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (_, sk, mut rng) = setup();
        let sig = sk.sign(b"message", &mut rng);
        assert!(sk.verify_key().verify(b"message", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (_, sk, mut rng) = setup();
        let sig = sk.sign(b"message", &mut rng);
        assert!(!sk.verify_key().verify(b"other", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (group, sk, mut rng) = setup();
        let sig = sk.sign(b"message", &mut rng);
        let other = SigningKey::generate(&group, &mut rng);
        assert!(!other.verify_key().verify(b"message", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (group, sk, mut rng) = setup();
        let sig = sk.sign(b"message", &mut rng);
        let bad = Signature {
            e: sig.e.clone(),
            s: group.scalar_add(&sig.s, &BigUint::one()),
        };
        assert!(!sk.verify_key().verify(b"message", &bad));
        let bad = Signature {
            e: group.scalar_add(&sig.e, &BigUint::one()),
            s: sig.s,
        };
        assert!(!sk.verify_key().verify(b"message", &bad));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let (group, sk, mut rng) = setup();
        let sig = sk.sign(b"m", &mut rng);
        let bad = Signature {
            e: sig.e.add(group.q()),
            s: sig.s,
        };
        assert!(!sk.verify_key().verify(b"m", &bad));
    }

    #[test]
    fn signature_wire_roundtrip() {
        let (_, sk, mut rng) = setup();
        let sig = sk.sign(b"m", &mut rng);
        let decoded = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(decoded, sig);
    }

    #[test]
    fn signatures_are_randomized() {
        let (_, sk, mut rng) = setup();
        let s1 = sk.sign(b"m", &mut rng);
        let s2 = sk.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "fresh nonce each signature");
        assert!(sk.verify_key().verify(b"m", &s1));
        assert!(sk.verify_key().verify(b"m", &s2));
    }

    #[test]
    fn from_element_validates_membership() {
        let (group, sk, _) = setup();
        assert!(VerifyKey::from_element(&group, sk.verify_key().element().clone()).is_some());
        assert!(VerifyKey::from_element(&group, BigUint::zero()).is_none());
    }

    #[test]
    fn larger_group_roundtrip() {
        let group = Group::new(GroupId::S256);
        let mut rng = StdRng::seed_from_u64(5);
        let sk = SigningKey::generate(&group, &mut rng);
        let sig = sk.sign(b"larger group", &mut rng);
        assert!(sk.verify_key().verify(b"larger group", &sig));
        assert!(!sk.verify_key().verify(b"other", &sig));
    }

    #[test]
    fn debug_hides_secret() {
        let (_, sk, _) = setup();
        let dbg = format!("{sk:?}");
        assert!(!dbg.contains(&sk.secret_scalar().to_hex()));
    }
}
