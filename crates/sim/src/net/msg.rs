//! The daemon wire vocabulary: every frame payload is one [`NetMsg`] in the
//! canonical `primitives::wire` encoding.
//!
//! Protocol traffic ([`NetMsg::Setup`], [`NetMsg::Round`]) carries the same
//! opaque payload bytes the in-process engine moves between nodes, tagged
//! with `(round, seq)` so a receiver can reproduce the engine's inbox order
//! exactly: deliveries sorted by (round, sender, seq) match the simulator's
//! "senders in `NodeId` order, each sender's outbox in send order" merge.
//! Marks are the soft round barrier; events and reports stream each node's
//! output log and final state to the collector.

use crate::message::{NodeId, OutputEvent};
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

/// One frame's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// First frame on every connection: who is dialing, and a digest of the
    /// scenario configuration so mismatched invocations fail fast instead of
    /// hanging on divergent schedules.
    Hello {
        /// The dialing node (0 = the chaos proxy, collector-bound dials use
        /// their node id).
        node: u32,
        /// Scenario digest; peers reject a Hello whose `run_id` differs.
        run_id: u64,
    },
    /// A setup-phase protocol message (faithful delivery by model).
    Setup {
        /// Setup round it was sent in.
        setup_round: u64,
        /// Index in the sender's expanded outbox this round (inbox ordering).
        seq: u32,
        /// Claimed sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// Setup barrier: the sender has transmitted all its `setup_round`
    /// messages (TCP/Unix streams are FIFO, so the mark arriving implies the
    /// messages arrived).
    SetupMark {
        /// Completed setup round.
        setup_round: u64,
        /// Sender.
        from: NodeId,
    },
    /// A post-setup protocol message.
    Round {
        /// Round it was sent in (delivered the following round, or later if
        /// the adversary delays it).
        round: u64,
        /// Index in the sender's expanded outbox this round.
        seq: u32,
        /// Claimed sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Opaque protocol payload.
        payload: Vec<u8>,
    },
    /// Soft round barrier: the sender has transmitted all its round-`round`
    /// messages. Receivers advance when every live peer's mark has arrived
    /// or the wall-clock deadline expires, whichever is first.
    RoundMark {
        /// Completed round.
        round: u64,
        /// Sender.
        from: NodeId,
    },
    /// One output-log event, streamed node → collector as it is emitted.
    Event {
        /// Emitting node.
        node: NodeId,
        /// Round the event was logged at.
        round: u64,
        /// The event.
        event: OutputEvent,
    },
    /// A node's end-of-run report to the collector.
    Report(NodeReport),
    /// Clean-shutdown marker; the sender closes after this.
    Bye {
        /// Departing node.
        node: u32,
    },
}

/// A node's final accounting, shipped to the collector in one frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: u32,
    /// Rounds executed.
    pub rounds: u64,
    /// Protocol envelopes sent.
    pub sent: u64,
    /// Protocol envelopes received.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Alerts emitted.
    pub alerts: u64,
    /// Frames that arrived after their nominal delivery round (adversary
    /// delay, or pacing pressure) and were delivered in a later round.
    pub late_frames: u64,
    /// Rounds advanced on deadline expiry instead of a complete mark set.
    pub mark_timeouts: u64,
    /// The node's ROM as frozen at the end of setup (key-ordered).
    pub rom_keys: Vec<String>,
    /// ROM values, parallel to `rom_keys`.
    pub rom_values: Vec<Vec<u8>>,
}

impl Encode for NodeReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.node);
        w.put_u64(self.rounds);
        w.put_u64(self.sent);
        w.put_u64(self.received);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.alerts);
        w.put_u64(self.late_frames);
        w.put_u64(self.mark_timeouts);
        self.rom_keys.encode(w);
        self.rom_values.encode(w);
    }
}

impl Decode for NodeReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let report = NodeReport {
            node: r.get_u32()?,
            rounds: r.get_u64()?,
            sent: r.get_u64()?,
            received: r.get_u64()?,
            bytes_sent: r.get_u64()?,
            alerts: r.get_u64()?,
            late_frames: r.get_u64()?,
            mark_timeouts: r.get_u64()?,
            rom_keys: Vec::<String>::decode(r)?,
            rom_values: Vec::<Vec<u8>>::decode(r)?,
        };
        if report.rom_keys.len() != report.rom_values.len() {
            return Err(WireError::BadLength);
        }
        Ok(report)
    }
}

impl Encode for NetMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NetMsg::Hello { node, run_id } => {
                w.put_u8(1);
                w.put_u32(*node);
                w.put_u64(*run_id);
            }
            NetMsg::Setup {
                setup_round,
                seq,
                from,
                to,
                payload,
            } => {
                w.put_u8(2);
                w.put_u64(*setup_round);
                w.put_u32(*seq);
                from.encode(w);
                to.encode(w);
                w.put_bytes(payload);
            }
            NetMsg::SetupMark { setup_round, from } => {
                w.put_u8(3);
                w.put_u64(*setup_round);
                from.encode(w);
            }
            NetMsg::Round {
                round,
                seq,
                from,
                to,
                payload,
            } => {
                w.put_u8(4);
                w.put_u64(*round);
                w.put_u32(*seq);
                from.encode(w);
                to.encode(w);
                w.put_bytes(payload);
            }
            NetMsg::RoundMark { round, from } => {
                w.put_u8(5);
                w.put_u64(*round);
                from.encode(w);
            }
            NetMsg::Event { node, round, event } => {
                w.put_u8(6);
                node.encode(w);
                w.put_u64(*round);
                event.encode(w);
            }
            NetMsg::Report(report) => {
                w.put_u8(7);
                report.encode(w);
            }
            NetMsg::Bye { node } => {
                w.put_u8(8);
                w.put_u32(*node);
            }
        }
    }
}

impl Decode for NetMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            1 => NetMsg::Hello {
                node: r.get_u32()?,
                run_id: r.get_u64()?,
            },
            2 => NetMsg::Setup {
                setup_round: r.get_u64()?,
                seq: r.get_u32()?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
                payload: r.get_bytes()?,
            },
            3 => NetMsg::SetupMark {
                setup_round: r.get_u64()?,
                from: NodeId::decode(r)?,
            },
            4 => NetMsg::Round {
                round: r.get_u64()?,
                seq: r.get_u32()?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
                payload: r.get_bytes()?,
            },
            5 => NetMsg::RoundMark {
                round: r.get_u64()?,
                from: NodeId::decode(r)?,
            },
            6 => NetMsg::Event {
                node: NodeId::decode(r)?,
                round: r.get_u64()?,
                event: OutputEvent::decode(r)?,
            },
            7 => NetMsg::Report(NodeReport::decode(r)?),
            8 => NetMsg::Bye { node: r.get_u32()? },
            t => return Err(WireError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmsg_roundtrip() {
        let msgs = vec![
            NetMsg::Hello { node: 3, run_id: 99 },
            NetMsg::Setup {
                setup_round: 2,
                seq: 7,
                from: NodeId(1),
                to: NodeId(4),
                payload: vec![1, 2, 3],
            },
            NetMsg::SetupMark {
                setup_round: 2,
                from: NodeId(1),
            },
            NetMsg::Round {
                round: 40,
                seq: 0,
                from: NodeId(5),
                to: NodeId(2),
                payload: vec![],
            },
            NetMsg::RoundMark {
                round: 40,
                from: NodeId(5),
            },
            NetMsg::Event {
                node: NodeId(2),
                round: 41,
                event: OutputEvent::Accepted {
                    from: NodeId(5),
                    msg: b"hb:5:40".to_vec(),
                },
            },
            NetMsg::Report(NodeReport {
                node: 2,
                rounds: 72,
                sent: 1000,
                received: 990,
                bytes_sent: 123456,
                alerts: 0,
                late_frames: 3,
                mark_timeouts: 1,
                rom_keys: vec!["v_cert".into()],
                rom_values: vec![vec![9; 32]],
            }),
            NetMsg::Bye { node: 2 },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(NetMsg::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(NetMsg::from_bytes(&[]).is_err());
        assert!(NetMsg::from_bytes(&[0]).is_err());
        assert!(NetMsg::from_bytes(&[99, 1, 2]).is_err());
        // Valid prefix + trailing garbage is rejected (strict decode).
        let mut bytes = NetMsg::Bye { node: 1 }.to_bytes();
        bytes.push(0);
        assert!(NetMsg::from_bytes(&bytes).is_err());
        // NodeId 0 is never valid on the wire.
        let bad = NetMsg::SetupMark {
            setup_round: 0,
            from: NodeId(1),
        }
        .to_bytes()
        .iter()
        .enumerate()
        .map(|(i, b)| if i >= 9 { 0 } else { *b }) // zero the from field
        .collect::<Vec<u8>>();
        assert!(NetMsg::from_bytes(&bad).is_err());
    }
}
