//! The collector: gathers each node process's streamed output events and
//! end-of-run report into one place, mirroring the surface the in-process
//! engine's `SimResult` provides — per-node output logs, per-node ROMs, and
//! aggregate statistics — plus the daemon-only *goodput* figure (accepted
//! application payload bytes per wall-clock second).

use super::msg::{Alarm, NetMsg, NodeReport, Severity};
use super::peer::{AddrPlan, Conn, NetListener};
use super::poll;
use super::status::{LiveState, StatusConn, TraceAssembler, TraceSpec};
use crate::message::{NodeId, OutputEvent, OutputLog};
use crate::process::Rom;
use proauth_telemetry::MetricsSnapshot;
use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Collector deployment parameters.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Number of node processes expected to report.
    pub n: usize,
    /// Address plan (the collector listens at `plan.collector()`).
    pub plan: AddrPlan,
    /// Scenario digest; Hellos with a different `run_id` are rejected.
    pub run_id: u64,
    /// Exit with an error if nothing arrives for this long.
    pub idle_timeout_ms: u64,
    /// Definition-7 impairment budget `t` for live accounting: more than `t`
    /// distinct impaired nodes in one time unit raises a `budget_exceeded`
    /// alarm.
    pub t: usize,
    /// Rounds per time unit (assigns beacons and alarms to units).
    pub unit_rounds: u64,
    /// Serve the status socket at `plan.status()` (`metrics` / `json` /
    /// `top` requests).
    pub status: bool,
    /// When set, assemble the cluster flight-recorder trace from the nodes'
    /// streamed `Trace`/`Metrics`/`Beacon` frames.
    pub trace_spec: Option<TraceSpec>,
}

/// Everything a finished daemon deployment produced, assembled from the
/// per-node streams. The shape deliberately parallels `SimResult`: output
/// logs and ROMs indexed by node, so outcome comparison against an
/// in-process run is direct equality.
#[derive(Debug, Clone)]
pub struct DaemonOutcome {
    /// Per-node output logs, rebuilt from the event stream (index = node idx).
    pub outputs: Vec<OutputLog>,
    /// Per-node ROMs as frozen at end of setup, from the final reports.
    pub roms: Vec<Rom>,
    /// Per-node final reports.
    pub reports: Vec<NodeReport>,
    /// Wall-clock duration from first Hello to last Bye.
    pub wall: Duration,
    /// Every alarm raised during the run (node-originated plus the
    /// collector's own budget accounting), in arrival order.
    pub alarms: Vec<Alarm>,
    /// Cluster-wide merged registry at end of run (sum of every streamed
    /// delta, including the `net/*` transport counters).
    pub merged: MetricsSnapshot,
    /// Per-node registries at end of run, rebuilt from the delta streams.
    pub node_metrics: Vec<MetricsSnapshot>,
    /// The assembled cluster trace (JSONL), when a `trace_spec` was given
    /// and every round completed.
    pub trace: Option<String>,
    /// Distinct impaired nodes per unit, as the collector's live
    /// Definition-7 accounting saw them.
    pub unit_impairments: BTreeMap<u64, Vec<u32>>,
}

impl DaemonOutcome {
    /// Total application payload bytes accepted as authentic across all
    /// nodes (the numerator of goodput).
    pub fn accepted_bytes(&self) -> u64 {
        self.outputs
            .iter()
            .flatten()
            .map(|(_, e)| match e {
                OutputEvent::Accepted { msg, .. } => msg.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Authenticated goodput: accepted payload bytes per wall-clock second.
    pub fn goodput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.accepted_bytes() as f64 / secs
    }

    /// Count of events matching `f` across all nodes.
    pub fn count_events(&self, f: impl Fn(&OutputEvent) -> bool) -> u64 {
        self.outputs
            .iter()
            .flatten()
            .filter(|(_, e)| f(e))
            .count() as u64
    }

    /// Rounds per wall-clock second, taken from the maximum reported round
    /// count (all nodes execute the same schedule).
    pub fn rounds_per_sec(&self) -> f64 {
        let rounds = self.reports.iter().map(|r| r.rounds).max().unwrap_or(0);
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        rounds as f64 / secs
    }
}

/// The collector process body.
pub struct Collector {
    cfg: CollectorConfig,
    listener: NetListener,
    conns: Vec<Option<Conn>>,
    limbo: Vec<Conn>,
    outputs: Vec<OutputLog>,
    reports: Vec<Option<NodeReport>>,
    done: Vec<bool>,
    live: LiveState,
    assembler: Option<TraceAssembler>,
    status_listener: Option<NetListener>,
    status_conns: Vec<StatusConn>,
    /// Out-of-band alarms injected by the supervisor thread (restart
    /// events); drained every pump and folded into the live plane.
    alarm_rx: Option<Receiver<Alarm>>,
    /// Live round watermark published for the supervisor (highest beacon
    /// round observed), for kill-at-round-r scheduling.
    round_watch: Option<Arc<AtomicU64>>,
    /// When a node's connection died before its report arrived — the start
    /// of its recovery-latency clock; cleared (and observed) on re-adoption.
    death_at: Vec<Option<Instant>>,
    /// Highest round any beacon has reported.
    observed_round: u64,
}

impl Collector {
    /// Binds the collector endpoint (and the status socket when enabled).
    /// Bind *before* launching nodes so their report dials never race it.
    pub fn bind(cfg: CollectorConfig) -> io::Result<Self> {
        let listener = NetListener::bind(&cfg.plan.collector())?;
        let status_listener = if cfg.status {
            Some(NetListener::bind(&cfg.plan.status())?)
        } else {
            None
        };
        let n = cfg.n;
        let live = LiveState::new(n, cfg.t, cfg.unit_rounds);
        let assembler = cfg.trace_spec.clone().map(TraceAssembler::new);
        Ok(Collector {
            cfg,
            listener,
            conns: (0..n).map(|_| None).collect(),
            limbo: Vec::new(),
            outputs: vec![Vec::new(); n],
            reports: vec![None; n],
            done: vec![false; n],
            live,
            assembler,
            status_listener,
            status_conns: Vec::new(),
            alarm_rx: None,
            round_watch: None,
            death_at: vec![None; n],
            observed_round: 0,
        })
    }

    /// Installs the supervisor's alarm channel; alarms received through it
    /// (restart events) count as traffic and enter the live plane like any
    /// node-originated alarm.
    pub fn set_alarm_channel(&mut self, rx: Receiver<Alarm>) {
        self.alarm_rx = Some(rx);
    }

    /// Publishes the highest observed beacon round into `watch` (the
    /// supervisor reads it to trigger kill-at-round-r schedules).
    pub fn set_round_watch(&mut self, watch: Arc<AtomicU64>) {
        self.round_watch = Some(watch);
    }

    /// Gathers until every node sent its report and Bye (or the idle timeout
    /// hits). Returns the assembled outcome.
    pub fn run(mut self) -> io::Result<DaemonOutcome> {
        let idle = Duration::from_millis(self.cfg.idle_timeout_ms);
        let start = Instant::now();
        let mut last_traffic = Instant::now();
        while !self.done.iter().all(|&d| d) {
            if last_traffic.elapsed() > idle {
                let missing: Vec<usize> = self
                    .done
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| !d)
                    .map(|(i, _)| i + 1)
                    .collect();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("collector idle {}ms; nodes missing: {missing:?}", self.cfg.idle_timeout_ms),
                ));
            }
            if self.pump()? {
                last_traffic = Instant::now();
            }
        }
        let wall = start.elapsed();
        let roms = self
            .reports
            .iter()
            .map(|r| match r {
                Some(rep) => Rom::from_entries(
                    rep.rom_keys
                        .iter()
                        .cloned()
                        .zip(rep.rom_values.iter().cloned()),
                ),
                None => Rom::new(),
            })
            .collect();
        let trace = self
            .assembler
            .as_ref()
            .filter(|a| a.complete())
            .map(TraceAssembler::contents);
        if let Some(asm) = &self.assembler {
            if !asm.complete() {
                eprintln!("collector: trace assembly incomplete (a node died mid-stream?)");
            }
        }
        let unit_impairments = self.live.unit_impairments();
        Ok(DaemonOutcome {
            outputs: self.outputs,
            roms,
            reports: self
                .reports
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
            wall,
            alarms: self.live.alarms,
            merged: self.live.merged.snapshot(),
            node_metrics: self.live.per_node.iter().map(|r| r.snapshot()).collect(),
            trace,
            unit_impairments,
        })
    }

    /// One poll iteration; returns whether any traffic moved.
    fn pump(&mut self) -> io::Result<bool> {
        let mut fds: Vec<(RawFd, bool)> = Vec::new();
        enum Slot {
            Node(usize),
            Limbo,
            Listener,
            Status(usize),
            StatusListener,
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (idx, conn) in self.conns.iter().enumerate() {
            if let Some(c) = conn {
                if !c.closed {
                    fds.push((c.raw_fd(), false));
                    slots.push(Slot::Node(idx));
                }
            }
        }
        for (k, c) in self.limbo.iter().enumerate() {
            if !c.closed {
                fds.push((c.raw_fd(), false));
                slots.push(Slot::Limbo);
                let _ = k;
            }
        }
        fds.push((self.listener.raw_fd(), false));
        slots.push(Slot::Listener);
        for (k, c) in self.status_conns.iter().enumerate() {
            fds.push((c.raw_fd(), c.wants_write()));
            slots.push(Slot::Status(k));
        }
        if let Some(sl) = &self.status_listener {
            fds.push((sl.raw_fd(), false));
            slots.push(Slot::StatusListener);
        }

        let ready = poll::poll(&fds, Some(50))?;
        let mut moved = false;
        let mut inbound: Vec<(usize, NetMsg)> = Vec::new();
        let mut status_ready: Vec<usize> = Vec::new();
        for (slot, r) in slots.iter().zip(&ready) {
            match slot {
                Slot::Node(idx) => {
                    let conn = self.conns[*idx].as_mut().expect("slot maps live conn");
                    if r.readable || r.hangup {
                        for m in conn.recv() {
                            inbound.push((*idx, m));
                        }
                        // EOF after the report is a normal departure; EOF
                        // before it means the process died — start its
                        // recovery-latency clock.
                        if conn.closed {
                            if self.reports[*idx].is_some() {
                                self.done[*idx] = true;
                            } else if self.death_at[*idx].is_none() {
                                self.death_at[*idx] = Some(Instant::now());
                            }
                        }
                    }
                }
                Slot::Limbo => {}
                Slot::Listener => {
                    if r.readable {
                        while let Some(stream) = self.listener.accept()? {
                            self.limbo.push(Conn::new(stream));
                            moved = true;
                        }
                    }
                }
                // Status traffic never counts as node traffic: an operator
                // polling `top` must not mask a stalled deployment from the
                // idle timeout.
                Slot::Status(k) => {
                    if r.readable || r.writable || r.hangup {
                        status_ready.push(*k);
                    }
                }
                Slot::StatusListener => {
                    if r.readable {
                        let sl = self.status_listener.as_ref().expect("slot maps listener");
                        while let Some(stream) = sl.accept()? {
                            self.status_conns.push(StatusConn::new(stream));
                        }
                    }
                }
            }
        }
        for k in status_ready {
            if let Some(c) = self.status_conns.get_mut(k) {
                c.drive(&self.live);
            }
        }
        // Sweep done AND expired connections: a stalled scraper never fires
        // poll, so the deadline must be enforced here, not in drive().
        self.status_conns.retain(|c| !c.done && !c.expired());
        // Supervisor-injected alarms (restart events) count as traffic: a
        // deployment mid-respawn is alive, not idle.
        if let Some(rx) = &self.alarm_rx {
            let drained: Vec<Alarm> = rx.try_iter().collect();
            for alarm in drained {
                moved = true;
                self.live.on_alarm(alarm);
            }
        }
        self.adopt_identified();
        for (idx, msg) in inbound {
            moved = true;
            self.ingest(idx, msg);
        }
        Ok(moved)
    }

    /// Claims limbo connections whose Hello arrived.
    fn adopt_identified(&mut self) {
        let mut k = 0;
        while k < self.limbo.len() {
            let msgs = self.limbo[k].recv();
            let mut hello_from: Option<u32> = None;
            let mut rest: Vec<NetMsg> = Vec::new();
            for m in msgs {
                match m {
                    NetMsg::Hello { node, run_id } => {
                        if run_id == self.cfg.run_id && node >= 1 && node as usize <= self.cfg.n {
                            hello_from = Some(node);
                        }
                    }
                    other => rest.push(other),
                }
            }
            if let Some(node) = hello_from {
                let conn = self.limbo.remove(k);
                let idx = NodeId(node).idx();
                self.conns[idx] = Some(conn);
                // Re-adoption after a death closes the recovery-latency
                // window: the node is back and streaming again.
                if let Some(t0) = self.death_at[idx].take() {
                    let ms = (t0.elapsed().as_millis() as u64).max(1);
                    self.live
                        .merged
                        .observe_value("net/recovery_latency_ms", ms);
                    self.live.on_alarm(Alarm {
                        node,
                        round: self.observed_round,
                        severity: Severity::Info,
                        kind: "node_rejoined".to_owned(),
                        detail: format!("reconnected after {ms}ms"),
                    });
                }
                for m in rest {
                    self.ingest(idx, m);
                }
            } else {
                if self.limbo[k].closed {
                    self.limbo.remove(k);
                    continue;
                }
                k += 1;
            }
        }
    }

    /// Consumes one message from the node at `idx`.
    fn ingest(&mut self, idx: usize, msg: NetMsg) {
        match msg {
            NetMsg::Event { node, round, event } => {
                // Trust the connection's identity over the frame's claim.
                let _ = node;
                self.outputs[idx].push((round, event));
            }
            NetMsg::Report(report) => {
                self.reports[idx] = Some(report);
            }
            NetMsg::Bye { .. } => {
                self.done[idx] = true;
            }
            NetMsg::Metrics { round, delta, .. } => {
                self.live.on_metrics(idx, &delta);
                if let Some(asm) = &mut self.assembler {
                    asm.on_metrics(idx, round, &delta);
                }
            }
            NetMsg::Beacon(beacon) => {
                // FIFO order means the round's Trace/Metrics/Alarm frames
                // preceded this beacon, so it doubles as the round-complete
                // signal for trace assembly.
                if beacon.round > self.observed_round {
                    self.observed_round = beacon.round;
                    if let Some(w) = &self.round_watch {
                        w.store(beacon.round, Ordering::Relaxed);
                    }
                }
                if let Some(asm) = &mut self.assembler {
                    asm.on_beacon(idx, &beacon);
                }
                self.live.on_beacon(idx, beacon);
            }
            NetMsg::Alarm(alarm) => {
                self.live.on_alarm(alarm);
            }
            NetMsg::Trace { round, events, .. } => {
                if let Some(asm) = &mut self.assembler {
                    asm.on_trace(idx, round, events);
                }
            }
            NetMsg::Rejoin {
                node, watermark, ..
            } => {
                // A restarted node announcing its return; informational only
                // (the crash itself was already charged via the supervisor's
                // restart alarm).
                self.live.on_alarm(Alarm {
                    node,
                    round: self.observed_round,
                    severity: Severity::Info,
                    kind: "rejoin".to_owned(),
                    detail: format!("rejoining from watermark {watermark}"),
                });
            }
            NetMsg::RejoinAck { .. } => {}
            // Protocol traffic never reaches the collector.
            _ => {}
        }
    }
}

/// Convenience: bind and run in one call.
pub fn collect(cfg: CollectorConfig) -> io::Result<DaemonOutcome> {
    Collector::bind(cfg)?.run()
}
