//! # proauth-crypto
//!
//! Cryptographic substrates for the `proauth` reproduction of
//! Canetti–Halevi–Herzberg (PODC '97): everything the paper's PDS
//! transformation assumes to exist, built from scratch on
//! [`proauth_primitives`]:
//!
//! * [`group`] — Schnorr groups (prime-order subgroups of `Z_p^*`).
//! * [`schnorr`] — the centralized EUF-CMA scheme `CS` of §4.
//! * [`shamir`] — secret sharing / Lagrange interpolation over `Z_q`.
//! * [`feldman`] — verifiable secret sharing (coefficient commitments).
//! * [`pedersen`] — Pedersen commitments/VSS (the information-theoretically
//!   hiding alternative the paper's cited instantiations use).
//! * [`dkg`] — joint-Feldman distributed key generation.
//! * [`thresh`] — robust threshold Schnorr signing (the `ASign` of an
//!   AL-model PDS per Theorem 13).
//! * [`refresh`] — proactive zero-sharing update + share recovery (the
//!   `ARfr` component).
//!
//! All modules are *pure*: they compute message payloads and state
//! transitions. Driving them over a network (AL or UL model) is the job of
//! `proauth-pds` and `proauth-core`.

pub mod dkg;
pub mod feldman;
pub mod pedersen;
pub mod group;
pub mod refresh;
pub mod schnorr;
pub mod shamir;
pub mod thresh;
