//! E7 — §6 scalability: the two-level (√n × √n) partition.
//!
//! The paper: partitioning into `O(√n)` neighborhoods each running its own
//! PDS trades tolerance for cost — "if the original scheme can tolerate
//! adversaries who break up to n/2 nodes, the resulting scheme can only
//! tolerate adversaries who break up to n/4 nodes". This experiment
//! measures both sides of the trade:
//!
//! * the *optimal-adversary* break-in budget needed to compromise flat vs
//!   partitioned deployments (analytic, from the partition structure);
//! * the *random-adversary* compromise probability as the corrupted
//!   fraction sweeps (Monte Carlo);
//! * the per-refresh message cost of a neighborhood vs the flat network
//!   (each cluster refreshes internally: O(n·√n) total vs O(n²));
//! * (E7d) the construction **end to end**: full refresh-bearing
//!   `proauth_core::hier` runs — cluster-local ULS stacks under the
//!   top-level PDS — timed and envelope-counted. The default run covers
//!   the hierarchy at n = 64; `PROAUTH_E7=full` adds the flat n = 64
//!   comparator (the feasible t = 3 / relaxed-fan-out config — the
//!   max-threshold flat refresh is the very Θ(n²·t) blow-up §6 avoids)
//!   and pushes the hierarchy to n = 128 and n = 256, sizes no flat
//!   configuration completes here. Each row is appended to the
//!   `CRITERION_JSON` file when set; regenerate the recorded baseline with
//!   `PROAUTH_E7=full CRITERION_JSON=BENCH_e7.json cargo bench --bench
//!   e7_partition`.

use proauth_bench::{pct, print_table};
use proauth_core::authenticator::NullApp;
use proauth_core::disperse::DisperseMode;
use proauth_core::hier::{heartbeat_msg, HierConfig, HierNode, HIER_SETUP_ROUNDS};
use proauth_core::partition::{flat_min_breakins, Partition};
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Normal-phase rounds per unit for the end-to-end runs — matches the
/// hierarchy integration tests (long enough for the top-level heartbeat
/// sign session to complete every unit).
const E2E_NORMAL: u64 = 12;
/// Two units, so unit 1 carries a full refresh (unit 0 never does).
const E2E_UNITS: u64 = 2;
const E2E_SEED: u64 = 87;

struct E2eRun {
    scheme: &'static str,
    n: usize,
    clusters: usize,
    t_local: usize,
    rounds: u64,
    messages: u64,
    heartbeats: u64,
    elapsed: Duration,
}

impl E2eRun {
    fn row(&self) -> Vec<String> {
        let rps = self.rounds as f64 / self.elapsed.as_secs_f64();
        vec![
            self.scheme.to_string(),
            self.n.to_string(),
            self.clusters.to_string(),
            self.t_local.to_string(),
            self.rounds.to_string(),
            self.messages.to_string(),
            self.heartbeats.to_string(),
            format!("{:.1}", self.elapsed.as_secs_f64()),
            format!("{rps:.1}"),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"id\": \"e7/e2e/{}-n{}\", \"elapsed_ns\": {}, \"messages\": {}, \
             \"rounds_per_sec\": {:.1}}}",
            self.scheme,
            self.n,
            self.elapsed.as_nanos(),
            self.messages,
            self.rounds as f64 / self.elapsed.as_secs_f64(),
        )
    }
}

/// One refresh-bearing two-level run: every cluster runs its local ULS
/// stack, representatives run the top-level PDS and jointly sign the
/// per-unit heartbeat. Panics if any unit's heartbeat went unsigned — a
/// timing row for a broken run would be worse than no row.
fn run_hier(n: usize) -> E2eRun {
    let hcfg = HierConfig::new(Group::new(GroupId::Toy64), n);
    let clusters = hcfg.partition.cluster_count();
    let t_local = hcfg.partition.cluster_threshold(0);
    let mut cfg = SimConfig::new(n, 1, uls_schedule(E2E_NORMAL));
    cfg.setup_rounds = HIER_SETUP_ROUNDS;
    cfg.total_rounds = cfg.schedule.unit_rounds * E2E_UNITS;
    cfg.seed = E2E_SEED;
    cfg.clusters = Some(hcfg.partition.clusters.clone());
    let rounds = cfg.total_rounds;
    let start = Instant::now();
    let result = run_ul(
        cfg,
        |id| HierNode::new(hcfg.clone(), id, NullApp),
        &mut FaithfulUl,
    );
    let elapsed = start.elapsed();
    let heartbeats: u64 = (1..=n as u32)
        .map(|i| {
            result
                .events_of(NodeId(i))
                .iter()
                .filter(|(_, ev)| {
                    matches!(ev, OutputEvent::Signed { msg, unit } if *msg == heartbeat_msg(*unit))
                })
                .count() as u64
        })
        .sum();
    assert!(
        heartbeats >= (clusters * E2E_UNITS as usize) as u64,
        "hier n={n}: every representative must co-sign every unit's heartbeat \
         (got {heartbeats} signatures for {clusters} clusters)"
    );
    E2eRun {
        scheme: "hier",
        n,
        clusters,
        t_local,
        rounds,
        messages: result.stats.messages_sent,
        heartbeats,
        elapsed,
    }
}

/// The flat comparator at its *feasible* configuration: t = 3 with the §6
/// relaxed 2t+1 fan-out (the E11 champion config). This deliberately
/// flatters the flat scheme — a tolerance-matched t = n/2−1 full-DISPERSE
/// refresh does not complete at n = 64 on this host.
fn run_flat(n: usize, t: usize) -> E2eRun {
    let group = Group::new(GroupId::Toy64);
    let mut cfg = SimConfig::new(n, 1, uls_schedule(E2E_NORMAL));
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = cfg.schedule.unit_rounds * E2E_UNITS;
    cfg.seed = E2E_SEED;
    let rounds = cfg.total_rounds;
    let start = Instant::now();
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            if n >= 32 {
                c.disperse = DisperseMode::Relaxed { fanout: 2 * t + 1 };
            }
            UlsNode::new(c, id, NullApp)
        },
        &mut FaithfulUl,
    );
    let elapsed = start.elapsed();
    E2eRun {
        scheme: "flat",
        n,
        clusters: 1,
        t_local: t,
        rounds,
        messages: result.stats.messages_sent,
        heartbeats: 0,
        elapsed,
    }
}

/// E7d: run the construction for real and tabulate envelope counts and
/// wall-clock. `PROAUTH_E7=full` unlocks the big sizes.
fn e2e() {
    let full = std::env::var("PROAUTH_E7").as_deref() == Ok("full");
    let mut runs = vec![run_hier(64)];
    if full {
        runs.push(run_flat(64, 3));
        runs.push(run_hier(128));
        runs.push(run_hier(256));
    }
    print_table(
        if full {
            "E7d — end-to-end refresh-bearing runs (2 units, toy group, seed 87): \
             flat n = 64 vs the hierarchy at n = 64 / 128 / 256"
        } else {
            "E7d — end-to-end hierarchy run (2 units, toy group, seed 87; \
             PROAUTH_E7=full adds flat n = 64 and hier n = 128 / 256)"
        },
        &[
            "scheme",
            "n",
            "clusters",
            "t local",
            "rounds",
            "messages",
            "heartbeats",
            "secs",
            "rounds/s",
        ],
        &runs.iter().map(E2eRun::row).collect::<Vec<_>>(),
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for run in &runs {
                let _ = writeln!(file, "{}", run.json());
            }
        }
    }
    if full {
        let hier64 = runs.iter().find(|r| r.scheme == "hier" && r.n == 64);
        let flat64 = runs.iter().find(|r| r.scheme == "flat" && r.n == 64);
        if let (Some(h), Some(f)) = (hier64, flat64) {
            println!(
                "\nflat/hier envelope ratio at n = 64: {:.1}x (flat {} vs hier {})",
                f.messages as f64 / h.messages as f64,
                f.messages,
                h.messages,
            );
        }
    }
}

fn main() {
    // Table 1: optimal adversary budgets.
    let mut rows = Vec::new();
    for n in [16usize, 36, 64, 100, 144] {
        let p = Partition::sqrt(n);
        let two_level = p.min_breakins_to_compromise();
        let flat = flat_min_breakins(n);
        rows.push(vec![
            n.to_string(),
            p.cluster_count().to_string(),
            flat.to_string(),
            two_level.to_string(),
            format!("{:.2}", flat as f64 / n as f64),
            format!("{:.2}", two_level as f64 / n as f64),
        ]);
    }
    print_table(
        "E7a / §6 — break-ins needed by an optimal adversary (flat vs √n partition)",
        &[
            "n",
            "clusters",
            "flat (≈n/2)",
            "two-level (≈n/4)",
            "flat frac",
            "two-level frac",
        ],
        &rows,
    );

    // Table 2: random adversary, Monte Carlo.
    let trials = 2000;
    let mut rows = Vec::new();
    let n = 64usize;
    let p = Partition::sqrt(n);
    for pct_broken in [10usize, 20, 25, 30, 35, 40, 45, 50, 55, 60] {
        let k = n * pct_broken / 100;
        let mut flat_lost = 0usize;
        let mut part_lost = 0usize;
        let mut rng = StdRng::seed_from_u64(pct_broken as u64);
        for _ in 0..trials {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(&mut rng);
            let mut broken = vec![false; n];
            for &i in nodes.iter().take(k) {
                broken[i] = true;
            }
            if k > n / 2 {
                flat_lost += 1;
            }
            if p.system_compromised(&broken) {
                part_lost += 1;
            }
        }
        rows.push(vec![
            format!("{pct_broken}%"),
            k.to_string(),
            pct(flat_lost, trials),
            pct(part_lost, trials),
        ]);
    }
    print_table(
        "E7b — random break-ins, n = 64, 8×8 partition (2000 trials per row)",
        &[
            "broken fraction",
            "k broken",
            "flat compromised",
            "two-level compromised",
        ],
        &rows,
    );

    // Table 3: per-refresh message cost model. A refresh is dominated by the
    // all-to-all dealing+echo traffic: Θ(c · m²) messages for a cluster of m,
    // i.e. Θ(n^1.5) total for the √n partition vs Θ(n²) flat.
    let mut rows = Vec::new();
    for n in [16usize, 64, 144, 400] {
        let m = (n as f64).sqrt() as usize;
        let flat_cost = n * n;
        let part_cost = (n / m) * m * m; // = n·m = n^1.5
        rows.push(vec![
            n.to_string(),
            flat_cost.to_string(),
            part_cost.to_string(),
            format!("{:.1}x", flat_cost as f64 / part_cost as f64),
        ]);
    }
    print_table(
        "E7c — refresh message cost model: flat Θ(n²) vs partitioned Θ(n^1.5)",
        &["n", "flat", "partitioned", "saving"],
        &rows,
    );

    println!(
        "\nExpected shape: the optimal adversary needs ≈ n/2 break-ins flat but only ≈ n/4\n\
         partitioned (E7a) — yet a *random* adversary is worse off against the partition\n\
         until ~40% corruption (E7b), and the partition cuts refresh traffic by ≈ √n (E7c).\n\
         This is the security/performance trade-off §6 describes."
    );

    e2e();
}
