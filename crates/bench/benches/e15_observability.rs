//! E15 — observability-plane overhead (supplementary): what the daemon
//! deployment pays, per node per round, for live health beacons, metrics
//! deltas, and the collector's merge + status rendering.
//!
//! Not a paper claim: CHH97 have no deployment story. The claim under test
//! is ours — the observability plane (PR 9) must cost **≤ 2% of a 250 ms
//! round budget** on both the node side and the collector side, so leaving
//! it on by default in daemon mode is free in any wall-clock-paced
//! deployment.
//!
//! Measured components, on a registry shaped like a real ULS node's
//! (~16 counters across `uls/`, `pa/`, `disperse/`, `pds/`, plus transport
//! counters and a round-pacing value histogram):
//!
//! * **node fold**: snapshot → `delta_since(prev)` → wire-encode the
//!   `Metrics` frame — the per-round work `stream_observability` does;
//! * **beacon**: encode + decode of one `HealthBeacon` frame;
//! * **collector merge**: decode + `apply_to` of one node's delta into the
//!   live registries (×n per round at the collector);
//! * **status render**: one full Prometheus / JSON / `top` rendering at
//!   n = 13 (on demand, per scrape, not per round);
//! * **alarm promotion**: scanning a delta against the watched-counter
//!   table and constructing the alarm frames.
//!
//! Rows report ns/op and the percentage of a 250 ms round the per-round
//! pieces consume; the bench fails if node-side or collector-side per-round
//! cost exceeds 2%. Run `CRITERION_JSON=BENCH_e15.json cargo bench --bench
//! e15_observability` to regenerate the recorded baseline.

use proauth_bench::print_table;
use proauth_primitives::wire::{Decode, Encode, Reader, Writer};
use proauth_sim::message::NodeId;
use proauth_sim::net::{HealthBeacon, LiveState, NetMsg};
use proauth_sim::telemetry::{intern_name, MetricsSnapshot, Registry};
use std::io::Write as _;
use std::time::Instant;

/// The shape of a real ULS node's registry after a busy round.
const COUNTERS: &[(&str, u64)] = &[
    ("uls/accepted", 4),
    ("uls/sig_sent", 12),
    ("uls/certs_checked", 16),
    ("uls/announces", 1),
    ("pa/accepted_values", 2),
    ("pa/decided", 1),
    ("pa/evidence", 4),
    ("disperse/sends", 14),
    ("disperse/relays", 26),
    ("disperse/delivered", 13),
    ("disperse/dedup_suppressed", 26),
    ("disperse/bytes", 1680),
    ("pds/sign_started", 1),
    ("pds/sign_completed", 1),
    ("pds/nonce_pool_hit", 1),
    ("net/late_frames", 2),
];

const ROUND_NS: f64 = 250_000_000.0;
const N: usize = 13;

/// Builds a registry and advances it one "round", returning snapshots
/// before and after.
fn one_round(reg: &Registry) -> (MetricsSnapshot, MetricsSnapshot) {
    let before = reg.snapshot();
    for (name, v) in COUNTERS {
        reg.add(intern_name(name), *v);
    }
    reg.observe_value(intern_name("net/round_ms"), 250);
    (before, reg.snapshot())
}

/// ns/op over `iters` runs of `f`.
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn beacon() -> HealthBeacon {
    HealthBeacon {
        node: 7,
        round: 42,
        round_ms: 250,
        lag_ms: 3,
        inbox_depth: 24,
        late_frames: 2,
        mark_timeouts: 0,
        peers_live: 12,
        sent_round: 36,
        alerts_round: 0,
    }
}

fn encode_msg(msg: &NetMsg) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode(&mut w);
    w.into_bytes()
}

fn main() {
    let iters: u64 = 20_000;

    // Node-side fold: snapshot + delta + Metrics-frame encode.
    let reg = Registry::default();
    let (prev, snap) = one_round(&reg);
    let delta = snap.delta_since(&prev);
    let frame = encode_msg(&NetMsg::Metrics {
        node: 7,
        round: 42,
        delta: delta.clone(),
    });
    let fold_ns = time_ns(iters, || {
        let (prev, snap) = one_round(&reg);
        let delta = snap.delta_since(&prev);
        std::hint::black_box(encode_msg(&NetMsg::Metrics {
            node: 7,
            round: 42,
            delta,
        }));
    });

    // Beacon encode + decode.
    let beacon_frame = encode_msg(&NetMsg::Beacon(beacon()));
    let beacon_ns = time_ns(iters, || {
        let bytes = encode_msg(&NetMsg::Beacon(beacon()));
        let mut r = Reader::new(&bytes);
        std::hint::black_box(NetMsg::decode(&mut r).expect("beacon roundtrip"));
    });

    // Collector-side merge: decode one Metrics frame + apply to live state.
    let mut live = LiveState::new(N, (N - 1) / 2, 44);
    let merge_ns = time_ns(iters, || {
        let mut r = Reader::new(&frame);
        let NetMsg::Metrics { delta, .. } = NetMsg::decode(&mut r).expect("delta roundtrip")
        else {
            unreachable!()
        };
        live.on_metrics(6, &delta);
    });

    // Alarm promotion: scan the delta against the watched counters.
    let watched = ["uls/rejected", "uls/alerts", "adversary/break_ins", "adversary/wipes"];
    let alarm_ns = time_ns(iters, || {
        let hits = watched
            .iter()
            .filter(|name| delta.counters.contains_key(**name))
            .count();
        std::hint::black_box(hits);
    });

    // Status rendering at n = 13 with beacons and a populated registry.
    for idx in 0..N {
        let mut b = beacon();
        b.node = idx as u32 + 1;
        live.on_beacon(idx, b);
        live.on_metrics(idx, &delta);
    }
    let render_iters = 2_000;
    let prom_ns = time_ns(render_iters, || {
        std::hint::black_box(live.render_prometheus());
    });
    let json_ns = time_ns(render_iters, || {
        std::hint::black_box(live.render_json());
    });
    let top_ns = time_ns(render_iters, || {
        std::hint::black_box(live.render_top());
    });

    // Per-round budgets: a node folds once and beacons once; the collector
    // merges n deltas and n beacons.
    let node_round_ns = fold_ns + beacon_ns;
    let collector_round_ns = (merge_ns + beacon_ns + alarm_ns) * N as f64;
    let node_pct = 100.0 * node_round_ns / ROUND_NS;
    let collector_pct = 100.0 * collector_round_ns / ROUND_NS;

    let pct = |ns: f64| format!("{:.4}%", 100.0 * ns / ROUND_NS);
    print_table(
        &format!("E15 — observability overhead (n = {N}, 250 ms round budget)"),
        &["component", "ns/op", "bytes", "% of round"],
        &[
            vec![
                "node fold (snapshot+delta+encode)".into(),
                format!("{fold_ns:.0}"),
                frame.len().to_string(),
                pct(fold_ns),
            ],
            vec![
                "beacon encode+decode".into(),
                format!("{beacon_ns:.0}"),
                beacon_frame.len().to_string(),
                pct(beacon_ns),
            ],
            vec![
                "collector merge (decode+apply)".into(),
                format!("{merge_ns:.0}"),
                "-".into(),
                pct(merge_ns),
            ],
            vec![
                "alarm promotion scan".into(),
                format!("{alarm_ns:.0}"),
                "-".into(),
                pct(alarm_ns),
            ],
            vec![
                "render prometheus (per scrape)".into(),
                format!("{prom_ns:.0}"),
                live.render_prometheus().len().to_string(),
                "-".into(),
            ],
            vec![
                "render json (per scrape)".into(),
                format!("{json_ns:.0}"),
                live.render_json().len().to_string(),
                "-".into(),
            ],
            vec![
                "render top (per scrape)".into(),
                format!("{top_ns:.0}"),
                live.render_top().len().to_string(),
                "-".into(),
            ],
            vec![
                "node per-round total".into(),
                format!("{node_round_ns:.0}"),
                "-".into(),
                format!("{node_pct:.4}%"),
            ],
            vec![
                format!("collector per-round total (×{N})"),
                format!("{collector_round_ns:.0}"),
                "-".into(),
                format!("{collector_pct:.4}%"),
            ],
        ],
    );

    let _ = NodeId(1); // keep the sim import honest if the table changes

    assert!(
        node_pct <= 2.0,
        "node-side observability must cost <= 2% of a 250ms round (got {node_pct:.4}%)"
    );
    assert!(
        collector_pct <= 2.0,
        "collector-side observability must cost <= 2% of a 250ms round (got {collector_pct:.4}%)"
    );
    println!(
        "\nE15 PASSED: node {node_pct:.4}% and collector {collector_pct:.4}% of the round budget \
         (<= 2% each)"
    );

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let lines = [
                format!(
                    "{{\"id\": \"e15/node_fold\", \"ns\": {fold_ns:.0}, \"bytes\": {}}}",
                    frame.len()
                ),
                format!(
                    "{{\"id\": \"e15/beacon\", \"ns\": {beacon_ns:.0}, \"bytes\": {}}}",
                    beacon_frame.len()
                ),
                format!("{{\"id\": \"e15/collector_merge\", \"ns\": {merge_ns:.0}}}"),
                format!("{{\"id\": \"e15/alarm_scan\", \"ns\": {alarm_ns:.0}}}"),
                format!("{{\"id\": \"e15/render_prometheus\", \"ns\": {prom_ns:.0}}}"),
                format!("{{\"id\": \"e15/render_json\", \"ns\": {json_ns:.0}}}"),
                format!("{{\"id\": \"e15/render_top\", \"ns\": {top_ns:.0}}}"),
                format!(
                    "{{\"id\": \"e15/round_budget\", \"n\": {N}, \"node_pct\": {node_pct:.4}, \
                     \"collector_pct\": {collector_pct:.4}}}"
                ),
            ];
            for line in lines {
                let _ = writeln!(file, "{line}");
            }
        }
    }
}
