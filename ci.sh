#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# The round engine must be invisible in results: the full suite runs once
# with a single-worker pool and once with four workers (PROAUTH_THREADS
# defaults SimConfig::parallel to true), and must pass identically. This
# matrix includes the telemetry determinism gates — `golden_trace` (JSONL
# flight-recorder trace byte-identical across engines, n = 13 under an
# active adversary) and the telemetry-enabled `prop_engine_determinism`
# variant — in both legs.
PROAUTH_THREADS=1 cargo test -q
PROAUTH_THREADS=4 cargo test -q

cargo clippy --workspace --all-targets -- -D warnings

# Fixed-seed chaos smoke: the degradation ramp must demonstrate the (s,t)
# boundary (sub-budget guarantees hold, over-budget degrades with alarms)
# on both engines — the sweep is bit-deterministic across pool sizes.
PROAUTH_THREADS=1 cargo run -q --release -p proauth-examples --bin proauth -- chaos --n 5 --units 3 --seed 42
PROAUTH_THREADS=4 cargo run -q --release -p proauth-examples --bin proauth -- chaos --n 5 --units 3 --seed 42

# Long chaos soak (release): the same boundary contract over a longer
# horizon and several seeds, with a hard bound on re-certification latency.
cargo test -q -p proauth-tests --release --test chaos_soak -- --ignored

# Envelope-budget regression at n = 32 (release: the legacy Θ(n³) ablation
# inside is minutes-long in debug builds): evidence bundling must keep
# refresh traffic O(n²·fanout) and beat the pre-bundle encoding ≥10×.
cargo test -q -p proauth-core --release --test envelope_budget -- --ignored

# One full refresh unit at n = 64 (was infeasible pre-bundling); records
# throughput and peak RSS.
PROAUTH_E11=n64 cargo bench -p proauth-bench --bench e11_system_throughput

# §6 hierarchy smoke on both engine legs: cluster-local ULS stacks under
# the top-level PDS — setup, steady-state heartbeat co-signing across a
# refresh, authenticated cross-cluster transit with replay rejection, and
# representative crash → deterministic re-election with the joint key
# unchanged. Bit-determinism across pool sizes is asserted inside.
PROAUTH_THREADS=1 cargo test -q -p proauth-tests --release --test hierarchy
PROAUTH_THREADS=4 cargo test -q -p proauth-tests --release --test hierarchy

# The §6 headline asserted end to end (release): the hierarchy at n = 64
# sends ≥3× fewer envelopes than the feasible flat configuration over an
# identical refresh-bearing horizon.
cargo test -q -p proauth-tests --release --test hierarchy -- --ignored

# E7 smoke: partition arithmetic tables plus one end-to-end hierarchy run
# at n = 64. The full grid — flat n = 64 comparator and hierarchy runs at
# n = 128 / 256, the numbers behind BENCH_e7.json — runs with
# PROAUTH_E7=full (optionally CRITERION_JSON=BENCH_e7.json to re-emit it).
cargo bench -p proauth-bench --bench e7_partition

# Daemon smoke: n = 5 real node processes plus the chaos proxy over Unix
# sockets, 2 units (so one full proactive refresh) with delay/dup/reorder
# within budget, verified against the in-process engine (--check: certified
# keys equal, zero forgeries, every node completes every round) and bounded
# by a hard timeout so a wedged socket loop fails the gate instead of
# hanging it. Clean shutdown is part of the check: the orchestrator reaps
# every child and exits nonzero if any hung or died.
timeout 300 cargo run -q --release -p proauth-examples --bin proauth -- \
    daemon --n 5 --units 2 --delay 20 --dup 5 --reorder 5 --round-ms 2000 --check

# E13 signing-service smoke on both engine legs: the open-loop workload,
# session table, nonce pool, and batch-verify window must hold their
# throughput floor (4·signed ≥ 3·offered) and flip pool hit/miss counters
# with preprocessing on/off. The full release ablation grid — preprocessing
# × batch window × n, the ≥2× headline behind BENCH_e13.json — runs with
# PROAUTH_E13=full (optionally CRITERION_JSON=BENCH_e13.json to re-emit it).
PROAUTH_THREADS=1 cargo bench -p proauth-bench --bench e13_signing_service
PROAUTH_THREADS=4 cargo bench -p proauth-bench --bench e13_signing_service

# Observability smoke, clean leg: an adaptive daemon run must serve the live
# status endpoint mid-run — beacons from every node (no "beacons":0 in the
# JSON snapshot), zero alarms — and finish with zero alarms.
OBS_DIR=$(mktemp -d /tmp/proauth-obs.XXXXXX)
timeout 300 cargo run -q --release -p proauth-examples --bin proauth -- \
    daemon --n 5 --units 2 --round-ms 500 --min-round-ms 60 --adaptive \
    --addr "unix:$OBS_DIR" > "$OBS_DIR/daemon.log" 2>&1 &
OBS_PID=$!
sleep 2
SNAP=$(cargo run -q --release -p proauth-examples --bin proauth -- \
    top --addr "unix:$OBS_DIR" --once --view json)
echo "$SNAP" | grep -q '"alarms":\[\]'
if echo "$SNAP" | grep -q '"beacons":0'; then
    echo "observability: a node never beaconed: $SNAP" >&2
    exit 1
fi
wait "$OBS_PID"
grep -q "alarms: none" "$OBS_DIR/daemon.log"
rm -rf "$OBS_DIR"

# Self-healing smoke: n = 13 over the chaos proxy with every node SIGKILLed
# once (--kill auto schedules the victims across refresh windows so share
# recovery never exceeds n-(t+1) concurrent losses) and respawned by the
# supervisor from --state-dir. The live status endpoint is scraped while the
# run is in flight: restarts must surface as node_restarted alarms in the
# JSON snapshot and the recovery-latency histogram in the Prometheus view
# must be non-empty once the first respawn heals. The run itself must still
# verify against the in-process engine (--check: certified keys equal, zero
# forgeries, every node completes every round).
HEAL_DIR=$(mktemp -d /tmp/proauth-heal.XXXXXX)
timeout 600 cargo run -q --release -p proauth-examples --bin proauth -- \
    daemon --n 13 --units 4 --normal 8 --round-ms 200 --delay 5 --dup 3 \
    --kill auto --state-dir "$HEAL_DIR/state" --addr "unix:$HEAL_DIR" \
    --check > "$HEAL_DIR/daemon.log" 2>&1 &
HEAL_PID=$!
RESTART_SEEN=0
HIST_SEEN=0
for _ in $(seq 1 300); do
    kill -0 "$HEAL_PID" 2>/dev/null || break
    if [ "$RESTART_SEEN" -eq 0 ]; then
        SNAP=$(cargo run -q --release -p proauth-examples --bin proauth -- \
            top --addr "unix:$HEAL_DIR" --once --view json 2>/dev/null || true)
        echo "$SNAP" | grep -q '"kind":"node_restarted"' && RESTART_SEEN=1
    fi
    if [ "$RESTART_SEEN" -eq 1 ]; then
        PROM=$(cargo run -q --release -p proauth-examples --bin proauth -- \
            top --addr "unix:$HEAL_DIR" --once --view metrics 2>/dev/null || true)
        if echo "$PROM" | grep -q '^proauth_net_recovery_latency_ms_count [1-9]'; then
            HIST_SEEN=1
            break
        fi
    fi
    sleep 1
done
if [ "$RESTART_SEEN" -ne 1 ] || [ "$HIST_SEEN" -ne 1 ]; then
    echo "daemon-heal: status endpoint never showed a healed restart" >&2
    cat "$HEAL_DIR/daemon.log" >&2
    exit 1
fi
wait "$HEAL_PID"
grep -q "recovery latency:" "$HEAL_DIR/daemon.log"
rm -rf "$HEAL_DIR"

# Observability smoke, over-budget leg: a partition isolating 2 nodes under
# t = 1 must trip the collector's Definition-7 accounting — the run ends
# with at least the critical budget_exceeded alarm.
OBS_DIR=$(mktemp -d /tmp/proauth-obs.XXXXXX)
timeout 300 cargo run -q --release -p proauth-examples --bin proauth -- \
    daemon --n 5 --t 1 --units 2 --round-ms 500 --partition 4:12:2 \
    > "$OBS_DIR/daemon.log" 2>&1
grep -q "budget_exceeded" "$OBS_DIR/daemon.log"
rm -rf "$OBS_DIR"
