//! Default strategies per type (mirror of `proptest::arbitrary`).

use crate::strategy::{Reason, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64() as usize)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<T, Reason> {
        Ok(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
