//! E1 — Lemma 15: DISPERSE delivers between `s`-operational nodes.
//!
//! Reproduces the lemma's content as a measured series: node 1 DISPERSEs a
//! probe to node 2 every round while an adversary cuts `k` links incident to
//! each endpoint (worst-case placement: the direct link plus disjoint relay
//! sets; and random placement for comparison). The paper predicts 100%
//! delivery while both endpoints remain `s`-operational with
//! `s ≤ ⌊(n−1)/2⌋` — i.e. a sharp cliff at `k ≈ n/2` under worst-case
//! cutting, and far more robustness under random cutting.

use proauth_adversary::LinkCutter;
use proauth_bench::{pct, print_table};
use proauth_core::disperse::{DisperseLayer, DisperseMode};
use proauth_core::wire::UlsWire;
use proauth_primitives::wire::Decode;
use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use proauth_sim::runner::{run_ul, SimConfig};
use rand::seq::SliceRandom;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Node 1 probes node 2 via DISPERSE each round; node 2 logs deliveries.
struct Probe {
    layer: DisperseLayer,
    me: NodeId,
}

impl Probe {
    fn new_with(me: NodeId, n: usize, mode: DisperseMode) -> Self {
        Probe {
            layer: DisperseLayer::new(me, n, mode),
            me,
        }
    }
}

impl Process for Probe {
    fn on_setup_round(&mut self, _ctx: &mut SetupCtx<'_>) {}

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let mut delivered = self.layer.begin_round();
        for env in ctx.inbox {
            if let Ok(UlsWire::Disperse(d)) = UlsWire::from_bytes(&env.payload) {
                if let Some(item) = self.layer.on_message(env.from, d) {
                    delivered.push(item);
                }
            }
        }
        if self.me == NodeId(2) {
            for (origin, blob) in delivered {
                if origin == 1 {
                    ctx.emit(OutputEvent::Custom(format!(
                        "probe:{}",
                        String::from_utf8_lossy(&blob)
                    )));
                }
            }
        }
        if self.me == NodeId(1) {
            self.layer
                .send(NodeId(2), format!("{}", ctx.time.round).into_bytes().into());
        }
        for entry in self.layer.drain_outgoing() {
            ctx.send_many(entry.to, entry.payload);
        }
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_with_cuts_mode(
    n: usize,
    cuts: Vec<(NodeId, NodeId)>,
    seed: u64,
    mode: DisperseMode,
) -> (usize, usize) {
    let rounds = 40u64;
    let mut cfg = SimConfig::new(n, (n - 1) / 2, Schedule::new(rounds, 1, 1));
    cfg.total_rounds = rounds;
    cfg.setup_rounds = 0;
    cfg.seed = seed;
    let mut adv = LinkCutter::new(cuts);
    let result = run_ul(cfg, |id| Probe::new_with(id, n, mode), &mut adv);
    let delivered = result.outputs[NodeId(2).idx()]
        .iter()
        .filter(|(_, e)| matches!(e, OutputEvent::Custom(_)))
        .count();
    // Probes sent every round; the last 2 are still in flight at the end.
    (delivered, (rounds - 2) as usize)
}

fn run_with_cuts(n: usize, cuts: Vec<(NodeId, NodeId)>, seed: u64) -> (usize, usize) {
    run_with_cuts_mode(n, cuts, seed, DisperseMode::Full)
}

/// Worst-case placement: cut the direct link, then disjoint relay sets.
fn worst_case_cuts(n: usize, k: usize) -> Vec<(NodeId, NodeId)> {
    let mut cuts = Vec::new();
    if k == 0 {
        return cuts;
    }
    cuts.push((NodeId(1), NodeId(2)));
    let relays: Vec<u32> = (3..=n as u32).collect();
    for i in 0..k.saturating_sub(1) {
        if i < relays.len() {
            cuts.push((NodeId(1), NodeId(relays[i])));
        }
    }
    for i in 0..k.saturating_sub(1) {
        let idx = relays.len().saturating_sub(1 + i);
        if idx < relays.len() && !cuts.contains(&(NodeId(2), NodeId(relays[idx]))) {
            cuts.push((NodeId(2), NodeId(relays[idx])));
        }
    }
    cuts
}

/// Random placement: `k` random links incident to each endpoint.
fn random_cuts(n: usize, k: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts = Vec::new();
    for endpoint in [1u32, 2] {
        let mut others: Vec<u32> = (1..=n as u32).filter(|&x| x != endpoint).collect();
        others.shuffle(&mut rng);
        for &o in others.iter().take(k) {
            cuts.push((NodeId(endpoint), NodeId(o)));
        }
    }
    cuts
}

fn main() {
    let mut rows = Vec::new();
    for n in [8usize, 16] {
        for k in 0..n {
            let (d_worst, total) = run_with_cuts(n, worst_case_cuts(n, k), 100 + k as u64);
            // Random placement averaged over 5 seeds.
            let mut d_rand_sum = 0usize;
            let trials = 5;
            for s in 0..trials {
                let (d, _) = run_with_cuts(n, random_cuts(n, k, 7 * s + k as u64), 200 + s);
                d_rand_sum += d;
            }
            // The §6 relaxation: same worst-case cuts, 2t+1 fan-out with
            // t = ⌊(n−1)/2⌋ (= full coverage of the Lemma 15 regime).
            let t = (n - 1) / 2;
            let (d_relaxed, _) = run_with_cuts_mode(
                n,
                worst_case_cuts(n, k),
                300 + k as u64,
                DisperseMode::Relaxed { fanout: 2 * t + 1 },
            );
            let guaranteed = k < n / 2; // Lemma 15's regime (worst case)
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                pct(d_worst, total),
                pct(d_relaxed, total),
                pct(d_rand_sum, total * trials as usize),
                if guaranteed { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    print_table(
        "E1 / Lemma 15 — DISPERSE delivery vs. links cut per endpoint",
        &["n", "k cut", "worst-case", "worst-case (2t+1 fanout)", "random", "Lemma 15 guarantee"],
        &rows,
    );
    println!(
        "\nExpected shape: worst-case delivery is 100% exactly while k < n/2 (both endpoints\n\
         remain s-operational for s = ⌊(n−1)/2⌋), then collapses; random cutting stays near\n\
         100% far beyond the guarantee — the adversary must *place* cuts, not just make them."
    );
}
