//! Cross-backend consistency: the multi-process daemon engine must reach the
//! same protocol outcomes as the in-process round engine.
//!
//! Nodes here run as threads (one `NodeLoop` each) over real Unix-domain
//! sockets — the same code path `proauth serve` uses, minus `fork`. The
//! faithful test demands bit-identical output logs and ROMs against
//! `run_ul`; the chaos test routes everything through the adversarial proxy
//! and checks model-level invariants instead (setup faithfulness, zero
//! forgeries, progress under delay/duplication/reordering).

use proauth_sim::adversary::FaithfulUl;
use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::net::{
    collect, run_node, AddrPlan, ChaosNetSpec, CollectorConfig, DaemonOutcome, NodeNetConfig,
    ProxyConfig, ProxyStats, TraceSpec,
};
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use proauth_sim::ProcessDriver;
use proauth_telemetry::{memory_contents, strip_wall_fields, Telemetry};
use rand::RngCore;
use std::any::Any;
use std::path::PathBuf;

/// A heartbeat-style node: random setup key exchange into the ROM, then an
/// authenticated-echo round loop that accepts peers' heartbeats.
struct HbNode {
    me: NodeId,
}

impl Process for HbNode {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        match ctx.setup_round {
            0 => {
                let mut key = vec![0u8; 8];
                ctx.rng.fill_bytes(&mut key);
                ctx.rom.write("self_key", key.clone());
                ctx.send_all(key);
            }
            1 => {
                // Freeze the peer table: concatenation in NodeId order, which
                // is exactly the engine's inbox order — equality of this ROM
                // entry across backends proves setup delivery order matched.
                let mut table = Vec::new();
                for env in ctx.inbox {
                    table.push(env.from.0 as u8);
                    table.extend_from_slice(&env.payload);
                }
                ctx.rom.write("peer_table", table);
            }
            _ => {}
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        for env in ctx.inbox {
            if env.payload.starts_with(b"hb:") {
                proauth_telemetry::count("hb/accepted", 1);
                ctx.emit(OutputEvent::Accepted {
                    from: env.from,
                    msg: env.payload.to_vec(),
                });
            }
        }
        let hb = format!("hb:{}:{}", self.me.0, ctx.time.round).into_bytes();
        ctx.send_all(hb);
        if ctx.time.round_in_unit == 0 && ctx.time.unit > 0 {
            ctx.emit(OutputEvent::Custom(format!("unit:{}", ctx.time.unit)));
        }
    }

    fn state_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const SEED: u64 = 1234;
const N: usize = 4;
const SETUP_ROUNDS: u64 = 3;
const TOTAL_ROUNDS: u64 = 16;

fn schedule() -> Schedule {
    Schedule::new(8, 2, 2)
}

fn engine_run(n: usize) -> SimResult {
    let mut cfg = SimConfig::new(n, 1, schedule());
    cfg.seed = SEED;
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = TOTAL_ROUNDS;
    cfg.parallel = false;
    run_ul(cfg, |id| HbNode { me: id }, &mut FaithfulUl)
}

/// Same scenario as [`engine_run`], but with the flight recorder on;
/// returns the engine's trace JSONL.
fn engine_trace(n: usize) -> String {
    let (tele, buf) = Telemetry::with_memory_sink();
    let mut cfg = SimConfig::new(n, 1, schedule());
    cfg.seed = SEED;
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = TOTAL_ROUNDS;
    cfg.parallel = false;
    cfg.telemetry = tele;
    run_ul(cfg, |id| HbNode { me: id }, &mut FaithfulUl);
    memory_contents(&buf)
}

fn temp_plan(tag: &str) -> (AddrPlan, PathBuf) {
    let dir = std::env::temp_dir().join(format!("proauth-daemon-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    (AddrPlan::Unix { dir: dir.clone() }, dir)
}

/// Runs `n` NodeLoops in threads (mesh or via a chaos proxy) plus a
/// collector; returns the assembled outcome and proxy stats (if any).
fn daemon_run(
    n: usize,
    plan: AddrPlan,
    chaos: Option<ChaosNetSpec>,
    obs: bool,
) -> (DaemonOutcome, Option<ProxyStats>) {
    let via_proxy = chaos.is_some();
    let collector_cfg = CollectorConfig {
        n,
        plan: plan.clone(),
        run_id: SEED,
        idle_timeout_ms: 30_000,
        t: 1,
        unit_rounds: schedule().unit_rounds,
        status: false,
        trace_spec: obs.then(|| TraceSpec {
            n,
            s: 1,
            seed: SEED,
            schedule: schedule(),
            setup_rounds: SETUP_ROUNDS,
            total_rounds: TOTAL_ROUNDS,
        }),
    };
    // Bind order matters: collector (and proxy) listen before any node dials.
    let collector = std::thread::spawn({
        let cfg = collector_cfg;
        move || collect(cfg)
    });
    let proxy = chaos.map(|spec| {
        let cfg = ProxyConfig {
            n,
            plan: plan.clone(),
            spec,
            run_id: SEED,
            idle_timeout_ms: 30_000,
        };
        std::thread::spawn(move || proauth_sim::net::run_proxy(cfg))
    });
    // Give the listeners a moment to bind (dial retries cover the rest).
    std::thread::sleep(std::time::Duration::from_millis(50));
    let nodes: Vec<_> = (1..=n as u32)
        .map(|id| {
            let plan = plan.clone();
            std::thread::spawn(move || {
                let me = NodeId(id);
                let mut cfg = NodeNetConfig::new(me, n, plan, schedule());
                cfg.seed = SEED;
                cfg.run_id = SEED;
                cfg.via_proxy = via_proxy;
                cfg.report = true;
                cfg.setup_rounds = SETUP_ROUNDS;
                cfg.total_rounds = TOTAL_ROUNDS;
                cfg.round_ms = 2_000;
                cfg.connect_timeout_ms = 30_000;
                cfg.telemetry = obs;
                cfg.stream_trace = obs;
                let mut driver = ProcessDriver::new(HbNode { me }, me, n, SEED);
                run_node(cfg, &mut driver, |_, _| None)
            })
        })
        .collect();
    for t in nodes {
        t.join().unwrap().expect("node loop failed");
    }
    let outcome = collector.join().unwrap().expect("collector failed");
    let proxy_stats = proxy.map(|t| t.join().unwrap().expect("proxy failed"));
    (outcome, proxy_stats)
}

#[test]
fn faithful_daemon_matches_engine_bit_for_bit() {
    let engine = engine_run(N);
    let (plan, dir) = temp_plan("mesh");
    let (outcome, _) = daemon_run(N, plan, None, false);
    let _ = std::fs::remove_dir_all(dir);

    // Identical ROMs: setup delivery (content and order) matched.
    assert_eq!(outcome.roms, engine.roms, "ROMs must match engine setup");
    // Identical output logs: every round's inbox matched, in order.
    for (i, (got, want)) in outcome.outputs.iter().zip(&engine.outputs).enumerate() {
        assert_eq!(got, want, "node {} output log diverged", i + 1);
    }
    // Reports are self-consistent.
    for rep in &outcome.reports {
        assert_eq!(rep.rounds, TOTAL_ROUNDS);
        assert_eq!(rep.mark_timeouts, 0, "faithful run must never hit deadlines");
        assert_eq!(rep.alerts, 0);
    }
    assert!(outcome.accepted_bytes() > 0);
    assert!(outcome.goodput() > 0.0);
}

#[test]
fn chaos_proxy_preserves_model_invariants() {
    let n = 5;
    let engine = engine_run(n);
    let (plan, dir) = temp_plan("chaos");
    let spec = ChaosNetSpec {
        seed: 77,
        delay_pct: 25,
        delay_max: 2,
        dup_pct: 10,
        reorder_pct: 10,
        reset_pct: 0,
        partition: None,
    };
    let (outcome, proxy_stats) = daemon_run(n, plan, Some(spec), false);
    let _ = std::fs::remove_dir_all(dir);
    let stats = proxy_stats.expect("proxy ran");

    // The proxy actually manipulated traffic.
    assert!(stats.delayed > 0, "chaos must delay some frames: {stats:?}");
    assert!(stats.duplicated > 0, "chaos must duplicate some frames: {stats:?}");
    assert!(stats.forwarded > 0);

    // Setup is adversary-free: ROMs still match the engine exactly.
    assert_eq!(outcome.roms, engine.roms, "chaos must not touch setup");

    // Zero forgeries: every accepted heartbeat is a message its claimed
    // sender really sends (delay/dup/reorder can move or repeat heartbeats,
    // never mint them).
    for (i, log) in outcome.outputs.iter().enumerate() {
        for (_, event) in log {
            if let OutputEvent::Accepted { from, msg } = event {
                let text = String::from_utf8(msg.clone()).expect("utf8 heartbeat");
                let mut parts = text.splitn(3, ':');
                assert_eq!(parts.next(), Some("hb"));
                assert_eq!(
                    parts.next(),
                    Some(from.0.to_string().as_str()),
                    "node {} accepted a forged heartbeat: {text}",
                    i + 1
                );
                let round: u64 = parts.next().unwrap().parse().unwrap();
                assert!(round < TOTAL_ROUNDS);
            }
        }
    }

    // Progress: despite the chaos, the run completed both units and accepted
    // a substantial share of heartbeats (duplicates may push this above the
    // faithful count; delays near the end may drop it below).
    let accepted = outcome.count_events(|e| matches!(e, OutputEvent::Accepted { .. }));
    let faithful_accepted = (n as u64) * (n as u64 - 1) * (TOTAL_ROUNDS - 1);
    assert!(
        accepted >= faithful_accepted / 2,
        "accepted {accepted} of ~{faithful_accepted}"
    );
    let units = outcome.count_events(|e| matches!(e, OutputEvent::Custom(s) if s == "unit:1"));
    assert_eq!(units, n as u64, "every node must reach unit 1");
    for rep in &outcome.reports {
        assert_eq!(rep.rounds, TOTAL_ROUNDS);
    }
    // Delayed frames were delivered late, and the receivers noticed.
    let late: u64 = outcome.reports.iter().map(|r| r.late_frames).sum();
    assert!(late > 0, "delays must surface as late frames");
}

#[test]
fn observability_plane_merges_metrics_and_reassembles_engine_trace() {
    let (plan, dir) = temp_plan("obs");
    let (outcome, _) = daemon_run(N, plan, None, true);
    let _ = std::fs::remove_dir_all(dir);

    // The cluster registry is exactly the sum of the per-node registries:
    // no delta was lost, duplicated, or misattributed on the way in.
    assert_eq!(outcome.node_metrics.len(), N);
    let mut summed: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for snap in &outcome.node_metrics {
        for (name, v) in &snap.counters {
            *summed.entry(name).or_insert(0) += v;
        }
    }
    let merged: std::collections::BTreeMap<&str, u64> = outcome
        .merged
        .counters
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect();
    assert_eq!(merged, summed, "merged registry must equal per-node sum");
    // The protocol counters actually flowed: every accepted heartbeat was
    // counted once (heartbeats sent in round r arrive in round r+1).
    let accepted = outcome.merged.counters.get("hb/accepted").copied().unwrap_or(0);
    assert_eq!(accepted, (N as u64) * (N as u64 - 1) * (TOTAL_ROUNDS - 1));
    // A faithful run raises no alarms.
    assert!(
        outcome.alarms.is_empty(),
        "faithful run must be alarm-free: {:?}",
        outcome.alarms
    );

    // Golden-trace guarantee, daemon edition: the collector-assembled trace,
    // stripped of wall-clock fields, is byte-identical to the in-process
    // engine's for the same scenario.
    let daemon_trace = outcome.trace.expect("trace assembly must complete");
    let engine = engine_trace(N);
    assert_eq!(
        strip_wall_fields(&daemon_trace),
        strip_wall_fields(&engine),
        "stripped daemon trace must match engine trace byte-for-byte"
    );
}
