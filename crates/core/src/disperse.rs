//! Protocol DISPERSE (Fig. 2): a two-phase echo guaranteeing delivery
//! between any two nodes connected by a length-≤2 path of reliable links
//! (Lemma 15).
//!
//! A blob sent at physical round `w` is delivered to its destination at
//! round `w+2`: the `Forward` fans out at `w` (arriving `w+1`), each
//! recipient emits a `Forwarding` to the destination at `w+1` (arriving
//! `w+2`). A `Forward` that reaches the destination directly is buffered one
//! round so both paths deliver at the same round — keeping the `w`-binding
//! of VER-CERT unambiguous. A self-send never touches the network but is
//! buffered two rounds for the same reason.
//!
//! The §6 relaxation ("Relaxations for small t") is [`DisperseMode::Relaxed`]:
//! fan out to only `2t+1` nodes instead of all `n`, cutting the per-node
//! message complexity from `O(n²)` to `O(nt)` while preserving the
//! common-neighbor argument.
//!
//! Blobs are [`InternedBlob`]s: one allocation shared across the whole
//! fan-out, relay duty, and dedup, with a content digest computed at most
//! once per blob. Outgoing traffic is queued as multi-destination
//! [`OutboxEntry`]s — a fan-out is one entry, not `n−1` envelopes.

use crate::wire::{DisperseMsg, UlsWire};
use proauth_primitives::wire::InternedBlob;
use proauth_sim::message::{NodeId, OutboxEntry};
use proauth_telemetry as telemetry;
use std::collections::{HashMap, HashSet};

/// Fan-out policy (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisperseMode {
    /// Fig. 2 as written: fan out to all `n−1` other nodes.
    Full,
    /// §6 relaxation: fan out to the lowest-indexed `fanout` nodes
    /// (`fanout = 2t+1` preserves Lemma 15's guarantee).
    Relaxed {
        /// Number of nodes to fan out to.
        fanout: usize,
    },
}

/// A blob awaiting local delivery: a direct `Forward` addressed to me
/// (released at the next `begin_round`) or a self-send (held one extra
/// round so it keeps the same +2 schedule as a network send).
#[derive(Debug)]
struct SelfBuffered {
    origin: u32,
    blob: InternedBlob,
    /// `begin_round` calls to skip before release.
    delay: u8,
}

/// Per-node DISPERSE machinery.
#[derive(Debug)]
pub struct DisperseLayer {
    me: NodeId,
    n: usize,
    mode: DisperseMode,
    /// (origin, blob digest) pairs delivered to me this round.
    seen_this_round: HashSet<(u32, [u8; 32])>,
    /// Blobs awaiting local delivery (see [`SelfBuffered`]).
    self_buffer: Vec<SelfBuffered>,
    /// Relay duty built this round: (origin, blob digest) → index into
    /// `outgoing`. Repeated `Forward`s of the same blob only append a
    /// destination to the existing entry instead of re-encoding the
    /// `Forwarding` payload.
    relay_built: HashMap<(u32, [u8; 32]), usize>,
    /// Entries queued for sending at the end of this round.
    outgoing: Vec<OutboxEntry>,
}

impl DisperseLayer {
    /// Creates the layer for node `me` in an `n`-node network.
    pub fn new(me: NodeId, n: usize, mode: DisperseMode) -> Self {
        DisperseLayer {
            me,
            n,
            mode,
            seen_this_round: HashSet::new(),
            self_buffer: Vec::new(),
            relay_built: HashMap::new(),
            outgoing: Vec::new(),
        }
    }

    /// The set of nodes this layer fans out through.
    fn relays(&self) -> Vec<NodeId> {
        match self.mode {
            DisperseMode::Full => NodeId::all(self.n).filter(|&x| x != self.me).collect(),
            DisperseMode::Relaxed { fanout } => NodeId::all(self.n)
                .filter(|&x| x != self.me)
                .take(fanout)
                .collect(),
        }
    }

    /// Queues a blob for DISPERSE to `dst` (delivered at `now + 2`).
    ///
    /// A send to myself produces no network traffic: the blob is buffered
    /// locally and delivered on the same `+2` schedule as everything else.
    pub fn send(&mut self, dst: NodeId, blob: InternedBlob) {
        telemetry::count("disperse/sends", 1);
        telemetry::count("disperse/bytes", blob.len() as u64);
        if dst == self.me {
            self.self_buffer.push(SelfBuffered {
                origin: self.me.0,
                blob,
                delay: 1,
            });
            return;
        }
        let mut targets = self.relays();
        if !targets.contains(&dst) {
            targets.push(dst);
        }
        // The Forward is identical for every relay (it names only origin,
        // dst, and blob) — one encoding, one outbox entry for the whole
        // fan-out.
        let wire = UlsWire::Disperse(DisperseMsg::Forward {
            origin: self.me.0,
            dst: dst.0,
            blob,
        });
        self.outgoing.push(OutboxEntry {
            from: self.me,
            to: targets,
            payload: wire.to_payload(),
        });
    }

    /// Processes one incoming DISPERSE message; returns a blob delivered to
    /// me, if any.
    ///
    /// `carrier` is the node the physical envelope claims to come from (used
    /// only for routing `Forwarding`s; authenticity is the upper layers'
    /// business).
    pub fn on_message(
        &mut self,
        carrier: NodeId,
        msg: DisperseMsg,
    ) -> Option<(u32, InternedBlob)> {
        let _ = carrier;
        match msg {
            DisperseMsg::Forward { origin, dst, blob } => {
                if dst == self.me.0 {
                    // Direct copy: buffer a round (self-forwarding).
                    self.self_buffer.push(SelfBuffered {
                        origin,
                        blob,
                        delay: 0,
                    });
                } else if dst >= 1 && dst <= self.n as u32 {
                    // Relay duty. The Forwarding payload depends only on
                    // (origin, blob): encode it once per round and extend
                    // the existing entry's destination list on repeats.
                    telemetry::count("disperse/relays", 1);
                    let key = (origin, *blob.digest());
                    match self.relay_built.get(&key) {
                        Some(&i) => self.outgoing[i].to.push(NodeId(dst)),
                        None => {
                            let wire =
                                UlsWire::Disperse(DisperseMsg::Forwarding { origin, blob });
                            let i = self.outgoing.len();
                            self.outgoing.push(OutboxEntry {
                                from: self.me,
                                to: vec![NodeId(dst)],
                                payload: wire.to_payload(),
                            });
                            self.relay_built.insert(key, i);
                        }
                    }
                }
                None
            }
            DisperseMsg::Forwarding { origin, blob } => self.deliver(origin, blob),
        }
    }

    fn deliver(&mut self, origin: u32, blob: InternedBlob) -> Option<(u32, InternedBlob)> {
        if self.seen_this_round.insert((origin, *blob.digest())) {
            telemetry::count("disperse/delivered", 1);
            Some((origin, blob))
        } else {
            telemetry::count("disperse/dedup_suppressed", 1);
            None
        }
    }

    /// Called once at the start of each round, *before* processing the
    /// round's inbox: clears the per-round dedup set and releases buffered
    /// self-forwards whose delay has elapsed. Returns the blobs delivered
    /// via the direct path.
    pub fn begin_round(&mut self) -> Vec<(u32, InternedBlob)> {
        self.seen_this_round.clear();
        let buffered = std::mem::take(&mut self.self_buffer);
        let mut released = Vec::new();
        for mut item in buffered {
            if item.delay == 0 {
                if let Some(d) = self.deliver(item.origin, item.blob) {
                    released.push(d);
                }
            } else {
                item.delay -= 1;
                self.self_buffer.push(item);
            }
        }
        released
    }

    /// Drains the entries queued this round (to go into the node's outbox).
    pub fn drain_outgoing(&mut self) -> Vec<OutboxEntry> {
        // The relay cache holds indices into `outgoing`; they die with it.
        self.relay_built.clear();
        std::mem::take(&mut self.outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_primitives::wire::Decode;

    fn decode(entry: &OutboxEntry) -> DisperseMsg {
        match UlsWire::from_bytes(&entry.payload).unwrap() {
            UlsWire::Disperse(d) => d,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn blob(bytes: &[u8]) -> InternedBlob {
        InternedBlob::from(bytes)
    }

    #[test]
    fn send_fans_out_to_everyone() {
        let mut layer = DisperseLayer::new(NodeId(1), 5, DisperseMode::Full);
        layer.send(NodeId(3), blob(&[42]));
        let out = layer.drain_outgoing();
        // One entry; everyone but me as destinations.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fanout(), 4);
        assert!(matches!(
            decode(&out[0]),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                ..
            }
        ));
    }

    #[test]
    fn relaxed_mode_limits_fanout() {
        let mut layer = DisperseLayer::new(NodeId(5), 10, DisperseMode::Relaxed { fanout: 3 });
        layer.send(NodeId(9), blob(&[1]));
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 1);
        // 3 relays + the destination itself.
        assert_eq!(out[0].fanout(), 4);
        assert!(out[0].to.contains(&NodeId(9)));
    }

    #[test]
    fn relay_produces_forwarding() {
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        let delivered = layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: blob(&[7]),
            },
        );
        assert!(delivered.is_none());
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, vec![NodeId(3)]);
        assert!(matches!(
            decode(&out[0]),
            DisperseMsg::Forwarding { origin: 1, .. }
        ));
    }

    #[test]
    fn relay_encodes_identical_forwarding_once() {
        // Two Forwards of the same (origin, blob) to different destinations:
        // one Forwarding payload, two destinations on one entry.
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        for dst in [3u32, 4] {
            layer.on_message(
                NodeId(1),
                DisperseMsg::Forward {
                    origin: 1,
                    dst,
                    blob: blob(&[7]),
                },
            );
        }
        // A different blob from the same origin is a separate entry.
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: blob(&[8]),
            },
        );
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].to, vec![NodeId(3), NodeId(4)]);
        assert_eq!(out[1].to, vec![NodeId(3)]);
        // The cache dies with the round: the same Forward next round builds
        // a fresh entry rather than indexing into the drained buffer.
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 4,
                blob: blob(&[7]),
            },
        );
        let out = layer.drain_outgoing();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, vec![NodeId(4)]);
    }

    #[test]
    fn forwarding_delivers_once_per_round() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        let d1 = layer.on_message(
            NodeId(2),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: blob(&[7]),
            },
        );
        let d2 = layer.on_message(
            NodeId(4),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: blob(&[7]),
            },
        );
        assert_eq!(d1, Some((1, blob(&[7]))));
        assert_eq!(d2, None, "duplicate suppressed");
        // A different origin claim is a distinct delivery.
        let d3 = layer.on_message(
            NodeId(4),
            DisperseMsg::Forwarding {
                origin: 2,
                blob: blob(&[7]),
            },
        );
        assert_eq!(d3, Some((2, blob(&[7]))));
    }

    #[test]
    fn direct_forward_buffered_one_round() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        let direct = layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: blob(&[9]),
            },
        );
        assert!(direct.is_none(), "not delivered in the arrival round");
        let released = layer.begin_round();
        assert_eq!(released, vec![(1, blob(&[9]))]);
    }

    #[test]
    fn self_send_delivered_after_two_rounds() {
        // `send(me, ...)` must not be silently dropped: it is buffered
        // locally and delivered exactly two begin_rounds later — the same
        // +2 schedule as a network send.
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        layer.send(NodeId(2), blob(&[5]));
        assert!(
            layer.drain_outgoing().is_empty(),
            "self-send produces no network traffic"
        );
        assert!(
            layer.begin_round().is_empty(),
            "not delivered after one round"
        );
        let released = layer.begin_round();
        assert_eq!(released, vec![(2, blob(&[5]))]);
        // Nothing left buffered.
        assert!(layer.begin_round().is_empty());
    }

    #[test]
    fn direct_and_relayed_copies_dedup() {
        let mut layer = DisperseLayer::new(NodeId(3), 5, DisperseMode::Full);
        layer.begin_round();
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 3,
                blob: blob(&[9]),
            },
        );
        // Next round: buffered direct copy delivers first...
        let released = layer.begin_round();
        assert_eq!(released.len(), 1);
        // ...and the relayed copy of the same blob is suppressed.
        let relayed = layer.on_message(
            NodeId(2),
            DisperseMsg::Forwarding {
                origin: 1,
                blob: blob(&[9]),
            },
        );
        assert!(relayed.is_none());
    }

    #[test]
    fn out_of_range_dst_ignored() {
        let mut layer = DisperseLayer::new(NodeId(2), 5, DisperseMode::Full);
        layer.on_message(
            NodeId(1),
            DisperseMsg::Forward {
                origin: 1,
                dst: 77,
                blob: blob(&[1]),
            },
        );
        assert!(layer.drain_outgoing().is_empty());
    }
}
