//! E2 — Lemma 16: PARTIAL-AGREEMENT properties under equivocation.
//!
//! Property 1: if all honest participants start with the same value, they
//! all output it. Property 2: whatever the cheaters do, there is a single
//! value `y` such that every honest output is in `{y, φ}`.
//!
//! The experiment sweeps network size and cheater count over many seeds and
//! counts property violations — the lemma predicts zero in all cells where
//! honest nodes hold a majority, and also reports the collateral: how often
//! cheaters manage to force `φ` (agreement *denied*, never *split*).

use proauth_bench::{pct, print_table};
use proauth_core::pa::PaInstance;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

struct Outcome {
    violations_p1: usize,
    violations_p2: usize,
    phi_outputs: usize,
    total_outputs: usize,
}

/// One randomized PA execution: `cheaters` equivocate between `v` and `w`
/// with random recipient splits; honest nodes all input `v`.
fn run_once(n: usize, cheaters: usize, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let honest_value = b"v".to_vec();
    let alt_value = b"w".to_vec();
    let cheater_set: BTreeSet<u32> = (1..=cheaters as u32).collect();

    let mut instances: Vec<PaInstance> = (0..n).map(|_| PaInstance::new(n)).collect();
    // Step 1: all nodes send their value; cheaters pick per-recipient.
    let mut sent_values: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); n]; n];
    for sender in 1..=n as u32 {
        for recv in 1..=n as u32 {
            let value = if cheater_set.contains(&sender) {
                if rng.gen_bool(0.5) {
                    honest_value.clone()
                } else {
                    alt_value.clone()
                }
            } else {
                honest_value.clone()
            };
            sent_values[(sender - 1) as usize][(recv - 1) as usize] = value.clone();
            instances[(recv - 1) as usize].on_accepted_value(sender, value);
        }
    }
    // Step 2: fix majorities.
    for inst in &mut instances {
        inst.fix_majority();
    }
    // Steps 3–4: honest nodes relay everything they accepted as evidence
    // (cheaters may withhold; withholding only hides equivocation, which is
    // safe for the lemma — we model honest relays).
    let mut evidence: Vec<(u32, Vec<u8>)> = Vec::new();
    for recv in 1..=n as u32 {
        if cheater_set.contains(&recv) {
            continue;
        }
        for sender in 1..=n as u32 {
            evidence.push((
                sender,
                sent_values[(sender - 1) as usize][(recv - 1) as usize].clone(),
            ));
        }
    }
    for inst in &mut instances {
        for (sender, value) in &evidence {
            inst.on_evidence(*sender, value.clone());
        }
    }
    // Step 5: decide (honest nodes only).
    let outputs: Vec<Option<Vec<u8>>> = (1..=n as u32)
        .filter(|i| !cheater_set.contains(i))
        .map(|i| instances[(i - 1) as usize].decide())
        .collect();

    let decided: BTreeSet<&Vec<u8>> = outputs.iter().flatten().collect();
    let violations_p2 = usize::from(decided.len() > 1);
    // Property 1 applies when no cheater interferes with the honest set's
    // shared input: with ≥ ⌈(n+1)/2⌉ honest nodes all holding `v`, an output
    // of φ at an honest node is a violation only when there are NO cheaters
    // (cheaters may legitimately force φ).
    let honest = n - cheaters;
    let violations_p1 = if cheaters == 0 && honest * 2 > n {
        outputs.iter().filter(|o| o.is_none()).count()
    } else {
        0
    };
    Outcome {
        violations_p1,
        violations_p2,
        phi_outputs: outputs.iter().filter(|o| o.is_none()).count(),
        total_outputs: outputs.len(),
    }
}

fn main() {
    let seeds = 100u64;
    let mut rows = Vec::new();
    for n in [5usize, 9, 13] {
        for cheaters in 0..=(n - 1) / 2 {
            let mut v1 = 0;
            let mut v2 = 0;
            let mut phi = 0;
            let mut total = 0;
            for s in 0..seeds {
                let o = run_once(n, cheaters, s * 1000 + n as u64 * 10 + cheaters as u64);
                v1 += o.violations_p1;
                v2 += o.violations_p2;
                phi += o.phi_outputs;
                total += o.total_outputs;
            }
            rows.push(vec![
                n.to_string(),
                cheaters.to_string(),
                v1.to_string(),
                v2.to_string(),
                pct(phi, total),
            ]);
        }
    }
    print_table(
        "E2 / Lemma 16 — PARTIAL-AGREEMENT over 100 seeds per cell",
        &[
            "n",
            "equivocators",
            "P1 violations",
            "P2 violations (split)",
            "φ rate (denial)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: zero violations everywhere (Lemma 16). Equivocators can only\n\
         *deny* agreement (φ), never *split* it — and with few cheaters even denial is\n\
         rare because exposed equivocators are ejected from the majority set."
    );
}
