//! E11 — whole-system simulation throughput (supplementary): physical
//! rounds per second of a full ULS network by size, authentication mode,
//! and round-engine configuration.
//!
//! Not a paper claim, but the number a user sizing an experiment wants: how
//! much wall-clock a unit costs at each scale, what the session-MAC mode
//! buys at the system level (E9 measures it per message), and what the
//! persistent worker pool buys over the serial engine.
//!
//! Three parts:
//!
//! 1. a single-run **n = 64** refresh unit (`e11/refresh/n64`), timed with
//!    its peak RSS recorded — run *first* so the process high-water mark
//!    reflects this run alone;
//! 2. a criterion group (`e11/unit`) timing one refresh unit at small `n`
//!    with `Throughput::Elements(rounds)`, so the report carries rounds/s;
//! 3. a round-engine **ablation** at `n ∈ {13, 32}` (single timed runs —
//!    a full n=32 unit is too slow to sample repeatedly), including a
//!    `serial-nobundle` row with `bundle_evidence` off, printed as a table
//!    and appended to the `CRITERION_JSON` file when set.
//!
//! n = 64 used to be infeasible here: PARTIAL-AGREEMENT step 3 relayed every
//! majority member's certified message to every node through DISPERSE —
//! Θ(n³) envelopes per node per refresh, >10⁸ transient envelopes (tens of
//! GB) for one n = 64 unit. Evidence bundling (`Blob::EvidenceBundle`: one
//! DISPERSE send per destination per subject) cuts that to Θ(n²), and the
//! shared-payload outbox makes each remaining envelope a handle, not a copy;
//! the `serial-nobundle` ablation row measures exactly what the bundling is
//! worth. Set `PROAUTH_E11=n64` to run only the n = 64 part (CI does).
//!
//! Run `CRITERION_JSON=BENCH_e11.json cargo bench --bench
//! e11_system_throughput` to regenerate the recorded baseline.

use criterion::{Criterion, Throughput};
use proauth_bench::print_table;
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::disperse::DisperseMode;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::report::ThroughputSummary;
use proauth_sim::runner::{run_ul, SimConfig, SimStats};
use proauth_sim::Telemetry;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Round engine under test.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Serial,
    Pool(usize),
}

impl Engine {
    fn label(self) -> String {
        match self {
            Engine::Serial => "serial".into(),
            Engine::Pool(w) => format!("pool{w}"),
        }
    }
}

fn sim_cfg(n: usize, t: usize, units: u64, engine: Engine) -> SimConfig {
    let schedule = uls_schedule(8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = 87;
    match engine {
        Engine::Serial => cfg.parallel = false,
        Engine::Pool(w) => {
            cfg.parallel = true;
            cfg.threads = w;
        }
    }
    cfg
}

fn run_one(
    n: usize,
    t: usize,
    mode: AuthMode,
    engine: Engine,
    units: u64,
    bundle: bool,
) -> (SimStats, u64, Duration) {
    run_one_tele(n, t, mode, engine, units, bundle, false)
}

#[allow(clippy::too_many_arguments)]
fn run_one_tele(
    n: usize,
    t: usize,
    mode: AuthMode,
    engine: Engine,
    units: u64,
    bundle: bool,
    telemetry: bool,
) -> (SimStats, u64, Duration) {
    let mut cfg = sim_cfg(n, t, units, engine);
    if telemetry {
        // Metrics + an in-memory flight recorder: the full recording path
        // minus file I/O, isolating the instrumentation cost itself.
        let (tele, _buf) = Telemetry::with_memory_sink();
        cfg.telemetry = tele;
    }
    let total_rounds = cfg.total_rounds;
    let group = Group::new(GroupId::Toy64);
    let start = Instant::now();
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            c.auth_mode = mode;
            c.bundle_evidence = bundle;
            // Large networks use the §6 relaxation so DISPERSE volume stays
            // O(n·t) instead of O(n²).
            if n >= 32 {
                c.disperse = DisperseMode::Relaxed { fanout: 2 * t + 1 };
            }
            UlsNode::new(c, id, HeartbeatApp::default())
        },
        &mut FaithfulUl,
    );
    (result.stats, total_rounds, start.elapsed())
}

/// The process peak resident set (`VmHWM`), in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Part 0: one full refresh unit at n = 64 (§6 relaxed fan-out), single
/// timed run with peak RSS. Must run before anything else so `VmHWM`
/// reflects this run, not an earlier allocation peak.
fn refresh_n64() {
    let (n, t) = (64usize, 3usize);
    let (stats, total_rounds, elapsed) = run_one(n, t, AuthMode::SessionMac, Engine::Serial, 1, true);
    let tp = ThroughputSummary::from_run(&stats, total_rounds, elapsed);
    let rss = peak_rss_bytes().unwrap_or(0);
    print_table(
        "E11 — one refresh unit at n = 64 (serial, session-MAC, 2t+1 fan-out)",
        &["n", "t", "rounds", "messages", "rounds/s", "msgs/s", "peak RSS MiB"],
        &[vec![
            n.to_string(),
            t.to_string(),
            total_rounds.to_string(),
            stats.messages_sent.to_string(),
            format!("{:.1}", tp.rounds_per_sec),
            format!("{:.0}", tp.msgs_per_sec),
            format!("{:.0}", rss as f64 / (1024.0 * 1024.0)),
        ]],
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"id\": \"e11/refresh/n64\", \"elapsed_ns\": {}, \
                 \"rounds_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \
                 \"peak_rss_bytes\": {rss}}}",
                elapsed.as_nanos(),
                tp.rounds_per_sec,
                tp.msgs_per_sec,
            );
        }
    }
}

/// Part 1: sampled timings of one 2-unit run at small n, rounds/s reported
/// via the criterion `Throughput` API.
fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11/unit");
    for n in [5usize, 9, 13] {
        let t = (n - 1) / 2;
        let rounds = uls_schedule(8).unit_rounds * 2;
        group.throughput(Throughput::Elements(rounds));
        for (mode, label) in [(AuthMode::Sign, "sign"), (AuthMode::SessionMac, "mac")] {
            group.bench_function(format!("n{n}/{label}"), |b| {
                b.iter(|| run_one(n, t, mode, Engine::Serial, 2, true));
            });
        }
    }
    group.finish();
}

/// Part 2: round-engine, evidence-bundling, and telemetry ablation, one
/// timed run per row. The `serial-nobundle` row restores the pre-bundle
/// per-member Evidence relays (Θ(n³) envelopes per refresh); the
/// `serial-tele` row runs the identical serial config with the flight
/// recorder on (memory sink), measuring the full instrumentation cost —
/// the gap to `serial` is what `PROAUTH_TRACE` costs, and the gap between
/// `serial` and the recorded baseline is what the disabled-path branch
/// checks cost (budget: ≤ 2%).
fn ablation() {
    let configs: [(Engine, bool, bool); 6] = [
        (Engine::Serial, true, false),
        (Engine::Serial, true, true),
        (Engine::Serial, false, false),
        (Engine::Pool(1), true, false),
        (Engine::Pool(2), true, false),
        (Engine::Pool(8), true, false),
    ];
    let mut rows = Vec::new();
    let mut json_lines = Vec::new();
    for (n, t) in [(13usize, 6usize), (32, 3)] {
        for (engine, bundle, telemetry) in configs {
            let label = match (bundle, telemetry) {
                (true, false) => engine.label(),
                (true, true) => format!("{}-tele", engine.label()),
                (false, _) => format!("{}-nobundle", engine.label()),
            };
            let (stats, total_rounds, elapsed) =
                run_one_tele(n, t, AuthMode::SessionMac, engine, 2, bundle, telemetry);
            let tp = ThroughputSummary::from_run(&stats, total_rounds, elapsed);
            rows.push(vec![
                n.to_string(),
                t.to_string(),
                label.clone(),
                stats.messages_sent.to_string(),
                format!("{:.1}", tp.rounds_per_sec),
                format!("{:.0}", tp.msgs_per_sec),
                format!("{:.0}", tp.bytes_per_sec / 1024.0),
            ]);
            json_lines.push(format!(
                "{{\"id\": \"e11/ablation/n{n}/{label}\", \"elapsed_ns\": {}, \
                 \"rounds_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \
                 \"bytes_per_sec\": {:.1}}}",
                elapsed.as_nanos(),
                tp.rounds_per_sec,
                tp.msgs_per_sec,
                tp.bytes_per_sec,
            ));
        }
    }
    print_table(
        "E11 — engine + bundling + telemetry ablation (2 units, session-MAC, toy group)",
        &["n", "t", "engine", "messages", "rounds/s", "msgs/s", "KiB/s"],
        &rows,
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for line in &json_lines {
                let _ = writeln!(file, "{line}");
            }
        }
    }
    println!(
        "\nExpected shape: the nobundle row restores the pre-bundle Θ(n³)\n\
         evidence relays and should trail the bundled serial row by a widening\n\
         factor as n grows (≈ the PA majority size on evidence rounds). The pool\n\
         engines approach the serial engine at 1 worker (handshake overhead only)\n\
         and win once cores × per-round crypto outweigh scheduling. On a\n\
         single-core host all engines tie — record the core count with the run."
    );
}

/// Part 3: the §6 two-level hierarchy, serial vs pool engine, one timed run
/// per row. Cluster-local PDS work is what the pool parallelises best (√n
/// independent clusters per round), so this is the configuration where the
/// pool engine should earn its keep on a multi-core host — and the rounds/s
/// figure a user sizing a hierarchy deployment actually needs.
fn hierarchy() {
    use proauth_core::hier::{HierConfig, HierNode, HIER_SETUP_ROUNDS};

    let mut rows = Vec::new();
    let mut json_lines = Vec::new();
    for n in [16usize, 64] {
        for engine in [Engine::Serial, Engine::Pool(4)] {
            let schedule = uls_schedule(8);
            let mut cfg = SimConfig::new(n, 1, schedule);
            cfg.setup_rounds = HIER_SETUP_ROUNDS;
            cfg.total_rounds = schedule.unit_rounds * 2;
            cfg.seed = 87;
            match engine {
                Engine::Serial => cfg.parallel = false,
                Engine::Pool(w) => {
                    cfg.parallel = true;
                    cfg.threads = w;
                }
            }
            let mut hcfg = HierConfig::new(Group::new(GroupId::Toy64), n);
            hcfg.auth_mode = AuthMode::SessionMac;
            cfg.clusters = Some(hcfg.partition.clusters.clone());
            let clusters = hcfg.partition.cluster_count();
            let total_rounds = cfg.total_rounds;
            let start = Instant::now();
            let result = run_ul(
                cfg,
                |id| HierNode::new(hcfg.clone(), id, HeartbeatApp::default()),
                &mut FaithfulUl,
            );
            let elapsed = start.elapsed();
            let tp = ThroughputSummary::from_run(&result.stats, total_rounds, elapsed);
            let label = engine.label();
            rows.push(vec![
                n.to_string(),
                clusters.to_string(),
                label.clone(),
                result.stats.messages_sent.to_string(),
                format!("{:.1}", tp.rounds_per_sec),
                format!("{:.0}", tp.msgs_per_sec),
            ]);
            json_lines.push(format!(
                "{{\"id\": \"e11/hier/n{n}/{label}\", \"elapsed_ns\": {}, \
                 \"rounds_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}}}",
                elapsed.as_nanos(),
                tp.rounds_per_sec,
                tp.msgs_per_sec,
            ));
        }
    }
    print_table(
        "E11 — two-level hierarchy throughput (2 units, session-MAC, toy group)",
        &["n", "clusters", "engine", "messages", "rounds/s", "msgs/s"],
        &rows,
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for line in &json_lines {
                let _ = writeln!(file, "{line}");
            }
        }
    }
}

fn main() {
    // `PROAUTH_E11=n64`: the n = 64 refresh only (the vendored criterion
    // shim has no CLI filtering; CI uses this to keep the run bounded).
    refresh_n64();
    if std::env::var("PROAUTH_E11").as_deref() == Ok("n64") {
        return;
    }
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    bench_units(&mut criterion);
    ablation();
    hierarchy();
}
