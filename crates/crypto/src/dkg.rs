//! Joint-Feldman distributed key generation.
//!
//! Every node deals a random Feldman sharing; the group secret key is the sum
//! of the dealt secrets, each node's share is the sum of the shares it
//! received, and the public key is the product of the secret commitments.
//! Nobody ever holds the full secret — exactly the property the paper's PDS
//! needs (§1.3: "the secret key … is not kept by any single node").
//!
//! This module is *pure*: it computes dealings and aggregates them. Deciding
//! **which** dealings count (the qualified set) is a protocol concern handled
//! by the AL-model PDS driver in `proauth-pds`, which runs the dealings over
//! an echo-broadcast so all honest nodes aggregate the same set.
//!
//! # Examples
//!
//! ```
//! use proauth_crypto::group::{Group, GroupId};
//! use proauth_crypto::dkg;
//!
//! let group = Group::new(GroupId::Toy64);
//! let mut rng = rand::thread_rng();
//! let (n, t) = (5usize, 2usize);
//! let dealings: Vec<_> = (1..=n as u32)
//!     .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
//!     .collect();
//! // Node 1 aggregates everything addressed to it.
//! let inputs: Vec<_> = dealings
//!     .iter()
//!     .map(|(dealer, d)| dkg::ReceivedDealing {
//!         dealer: *dealer,
//!         commitments: d.commitments.clone(),
//!         share: d.share_for(1).clone(),
//!     })
//!     .collect();
//! let key = dkg::aggregate(&group, t, n, 1, &inputs).unwrap();
//! assert!(group.contains(&key.public_key));
//! ```

use crate::feldman::{self, Commitments, Dealing, ShareCheck};
use crate::group::Group;
use proauth_primitives::bigint::BigUint;

/// Deals one node's random contribution to the joint key.
pub fn deal<R: rand::RngCore>(group: &Group, threshold: usize, n: usize, rng: &mut R) -> Dealing {
    let secret = group.random_scalar(rng);
    Dealing::deal(group, threshold, n, secret, rng)
}

/// One dealing as received by a specific node.
#[derive(Debug, Clone)]
pub struct ReceivedDealing {
    /// Index of the dealer (1-based).
    pub dealer: u32,
    /// The dealer's public coefficient commitments.
    pub commitments: Commitments,
    /// The private share addressed to the receiving node.
    pub share: BigUint,
}

impl ReceivedDealing {
    /// Checks this dealing is consistent for receiver `me`.
    pub fn verify(&self, group: &Group, threshold: usize, me: u32) -> bool {
        self.commitments.degree() == threshold
            && self.commitments.verify_share_in(group, me, &self.share)
    }
}

/// A node's slice of the distributed key after DKG (or after a refresh).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyShare {
    /// This node's index (1-based).
    pub index: u32,
    /// The secret share `f(index)` of the joint polynomial.
    pub share: BigUint,
    /// The joint public key `y = g^{f(0)}`.
    pub public_key: BigUint,
    /// Per-node share verification keys `X_i = g^{f(i)}`, 1-based
    /// (`share_keys[i-1]`). Used to verify partial signatures and recovery
    /// values without interaction.
    pub share_keys: Vec<BigUint>,
    /// The dealers whose contributions were aggregated.
    pub qualified: Vec<u32>,
}

impl KeyShare {
    /// Share verification key of node `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn share_key(&self, i: u32) -> &BigUint {
        &self.share_keys[(i - 1) as usize]
    }

    /// Number of nodes in the sharing.
    pub fn n(&self) -> usize {
        self.share_keys.len()
    }

    /// Consistency check: this node's own share matches its share key.
    pub fn self_consistent(&self, group: &Group) -> bool {
        group.exp_g(&self.share) == *self.share_key(self.index)
    }
}

/// Aggregates verified dealings into this node's [`KeyShare`].
///
/// All dealings must already be verified (see [`ReceivedDealing::verify`]);
/// invalid ones are rejected here as well, returning `None`. `None` is also
/// returned if the dealing set is empty.
///
/// **Consistency requirement**: all honest nodes must call this with dealings
/// from the *same* dealer set, otherwise their shares lie on different
/// polynomials. The protocol layer guarantees this via echo-broadcast.
pub fn aggregate(
    group: &Group,
    threshold: usize,
    n: usize,
    me: u32,
    dealings: &[ReceivedDealing],
) -> Option<KeyShare> {
    if dealings.is_empty() {
        return None;
    }
    // Degree checks are per-dealing; the share checks collapse into one
    // batched random-linear-combination verification, falling back to the
    // per-dealing equation only when the batch rejects (to pinpoint which
    // dealing is bad — here that just means rejecting the whole set).
    if dealings
        .iter()
        .any(|d| d.commitments.degree() != threshold)
    {
        return None;
    }
    let checks: Vec<ShareCheck<'_>> = dealings
        .iter()
        .map(|d| ShareCheck {
            commitments: &d.commitments,
            index: me,
            share: &d.share,
        })
        .collect();
    if !feldman::batch_verify_shares(group, &checks)
        && !dealings.iter().all(|d| d.verify(group, threshold, me))
    {
        return None;
    }
    let mut share = BigUint::zero();
    let mut public_key = group.identity();
    let mut share_keys = vec![group.identity(); n];
    let mut qualified = Vec::with_capacity(dealings.len());
    for d in dealings {
        share = group.scalar_add(&share, &d.share);
        public_key = group.mul(&public_key, d.commitments.secret_commitment());
        for (slot, sk) in share_keys.iter_mut().enumerate() {
            let i = (slot + 1) as u32;
            *sk = group.mul(sk, &d.commitments.eval_in_exponent(group, i));
        }
        qualified.push(d.dealer);
    }
    qualified.sort_unstable();
    Some(KeyShare {
        index: me,
        share,
        public_key,
        share_keys,
        qualified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use crate::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_dkg(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
            .map(|i| (i, deal(&group, t, n, &mut rng)))
            .collect();
        let shares: Vec<KeyShare> = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, shares)
    }

    #[test]
    fn all_nodes_agree_on_public_key() {
        let (_, shares) = run_dkg(5, 2, 31);
        let pk = &shares[0].public_key;
        assert!(shares.iter().all(|s| &s.public_key == pk));
        assert!(shares.iter().all(|s| s.qualified == vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn shares_interpolate_to_secret_key() {
        let (group, shares) = run_dkg(5, 2, 32);
        let points: Vec<(u32, BigUint)> = shares[0..3]
            .iter()
            .map(|s| (s.index, s.share.clone()))
            .collect();
        let secret = shamir::interpolate_at_zero(&group, &points);
        assert_eq!(group.exp_g(&secret), shares[0].public_key);
        // A different subset reconstructs the same secret.
        let points2: Vec<(u32, BigUint)> = shares[2..5]
            .iter()
            .map(|s| (s.index, s.share.clone()))
            .collect();
        assert_eq!(shamir::interpolate_at_zero(&group, &points2), secret);
    }

    #[test]
    fn share_keys_are_consistent() {
        let (group, shares) = run_dkg(4, 1, 33);
        for s in &shares {
            assert!(s.self_consistent(&group));
        }
        // All nodes computed the same share-key vector.
        assert!(shares
            .iter()
            .all(|s| s.share_keys == shares[0].share_keys));
    }

    #[test]
    fn bad_dealing_rejected() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(34);
        let d = deal(&group, 2, 3, &mut rng);
        let mut bad = ReceivedDealing {
            dealer: 1,
            commitments: d.commitments.clone(),
            share: d.share_for(1).clone(),
        };
        assert!(bad.verify(&group, 2, 1));
        bad.share = group.scalar_add(&bad.share, &BigUint::one());
        assert!(!bad.verify(&group, 2, 1));
        assert!(aggregate(&group, 2, 3, 1, &[bad]).is_none());
        assert!(aggregate(&group, 2, 3, 1, &[]).is_none());
    }

    #[test]
    fn wrong_degree_dealing_rejected() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(35);
        let d = deal(&group, 3, 5, &mut rng); // degree 3, expected 2
        let rd = ReceivedDealing {
            dealer: 2,
            commitments: d.commitments.clone(),
            share: d.share_for(1).clone(),
        };
        assert!(!rd.verify(&group, 2, 1));
    }

    #[test]
    fn subset_of_dealers_still_works() {
        // Aggregating only dealings 1..3 (consistently) still yields a valid key.
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(36);
        let n = 5;
        let t = 2;
        let dealings: Vec<(u32, Dealing)> = (1..=3u32)
            .map(|i| (i, deal(&group, t, n, &mut rng)))
            .collect();
        let shares: Vec<KeyShare> = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        let points: Vec<(u32, BigUint)> = shares[1..4]
            .iter()
            .map(|s| (s.index, s.share.clone()))
            .collect();
        let secret = shamir::interpolate_at_zero(&group, &points);
        assert_eq!(group.exp_g(&secret), shares[0].public_key);
        assert_eq!(shares[0].qualified, vec![1, 2, 3]);
    }
}
