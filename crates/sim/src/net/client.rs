//! The collector: gathers each node process's streamed output events and
//! end-of-run report into one place, mirroring the surface the in-process
//! engine's `SimResult` provides — per-node output logs, per-node ROMs, and
//! aggregate statistics — plus the daemon-only *goodput* figure (accepted
//! application payload bytes per wall-clock second).

use super::msg::{NetMsg, NodeReport};
use super::peer::{AddrPlan, Conn, NetListener};
use super::poll;
use crate::message::{NodeId, OutputEvent, OutputLog};
use crate::process::Rom;
use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// Collector deployment parameters.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Number of node processes expected to report.
    pub n: usize,
    /// Address plan (the collector listens at `plan.collector()`).
    pub plan: AddrPlan,
    /// Scenario digest; Hellos with a different `run_id` are rejected.
    pub run_id: u64,
    /// Exit with an error if nothing arrives for this long.
    pub idle_timeout_ms: u64,
}

/// Everything a finished daemon deployment produced, assembled from the
/// per-node streams. The shape deliberately parallels `SimResult`: output
/// logs and ROMs indexed by node, so outcome comparison against an
/// in-process run is direct equality.
#[derive(Debug, Clone)]
pub struct DaemonOutcome {
    /// Per-node output logs, rebuilt from the event stream (index = node idx).
    pub outputs: Vec<OutputLog>,
    /// Per-node ROMs as frozen at end of setup, from the final reports.
    pub roms: Vec<Rom>,
    /// Per-node final reports.
    pub reports: Vec<NodeReport>,
    /// Wall-clock duration from first Hello to last Bye.
    pub wall: Duration,
}

impl DaemonOutcome {
    /// Total application payload bytes accepted as authentic across all
    /// nodes (the numerator of goodput).
    pub fn accepted_bytes(&self) -> u64 {
        self.outputs
            .iter()
            .flatten()
            .map(|(_, e)| match e {
                OutputEvent::Accepted { msg, .. } => msg.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Authenticated goodput: accepted payload bytes per wall-clock second.
    pub fn goodput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.accepted_bytes() as f64 / secs
    }

    /// Count of events matching `f` across all nodes.
    pub fn count_events(&self, f: impl Fn(&OutputEvent) -> bool) -> u64 {
        self.outputs
            .iter()
            .flatten()
            .filter(|(_, e)| f(e))
            .count() as u64
    }

    /// Rounds per wall-clock second, taken from the maximum reported round
    /// count (all nodes execute the same schedule).
    pub fn rounds_per_sec(&self) -> f64 {
        let rounds = self.reports.iter().map(|r| r.rounds).max().unwrap_or(0);
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        rounds as f64 / secs
    }
}

/// The collector process body.
pub struct Collector {
    cfg: CollectorConfig,
    listener: NetListener,
    conns: Vec<Option<Conn>>,
    limbo: Vec<Conn>,
    outputs: Vec<OutputLog>,
    reports: Vec<Option<NodeReport>>,
    done: Vec<bool>,
}

impl Collector {
    /// Binds the collector endpoint. Bind *before* launching nodes so their
    /// report dials never race it.
    pub fn bind(cfg: CollectorConfig) -> io::Result<Self> {
        let listener = NetListener::bind(&cfg.plan.collector())?;
        let n = cfg.n;
        Ok(Collector {
            cfg,
            listener,
            conns: (0..n).map(|_| None).collect(),
            limbo: Vec::new(),
            outputs: vec![Vec::new(); n],
            reports: vec![None; n],
            done: vec![false; n],
        })
    }

    /// Gathers until every node sent its report and Bye (or the idle timeout
    /// hits). Returns the assembled outcome.
    pub fn run(mut self) -> io::Result<DaemonOutcome> {
        let idle = Duration::from_millis(self.cfg.idle_timeout_ms);
        let start = Instant::now();
        let mut last_traffic = Instant::now();
        while !self.done.iter().all(|&d| d) {
            if last_traffic.elapsed() > idle {
                let missing: Vec<usize> = self
                    .done
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| !d)
                    .map(|(i, _)| i + 1)
                    .collect();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("collector idle {}ms; nodes missing: {missing:?}", self.cfg.idle_timeout_ms),
                ));
            }
            if self.pump()? {
                last_traffic = Instant::now();
            }
        }
        let wall = start.elapsed();
        let roms = self
            .reports
            .iter()
            .map(|r| match r {
                Some(rep) => Rom::from_entries(
                    rep.rom_keys
                        .iter()
                        .cloned()
                        .zip(rep.rom_values.iter().cloned()),
                ),
                None => Rom::new(),
            })
            .collect();
        Ok(DaemonOutcome {
            outputs: self.outputs,
            roms,
            reports: self
                .reports
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
            wall,
        })
    }

    /// One poll iteration; returns whether any traffic moved.
    fn pump(&mut self) -> io::Result<bool> {
        let mut fds: Vec<(RawFd, bool)> = Vec::new();
        enum Slot {
            Node(usize),
            Limbo,
            Listener,
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (idx, conn) in self.conns.iter().enumerate() {
            if let Some(c) = conn {
                if !c.closed {
                    fds.push((c.raw_fd(), false));
                    slots.push(Slot::Node(idx));
                }
            }
        }
        for (k, c) in self.limbo.iter().enumerate() {
            if !c.closed {
                fds.push((c.raw_fd(), false));
                slots.push(Slot::Limbo);
                let _ = k;
            }
        }
        fds.push((self.listener.raw_fd(), false));
        slots.push(Slot::Listener);

        let ready = poll::poll(&fds, Some(50))?;
        let mut moved = false;
        let mut inbound: Vec<(usize, NetMsg)> = Vec::new();
        for (slot, r) in slots.iter().zip(&ready) {
            match slot {
                Slot::Node(idx) => {
                    let conn = self.conns[*idx].as_mut().expect("slot maps live conn");
                    if r.readable || r.hangup {
                        for m in conn.recv() {
                            inbound.push((*idx, m));
                        }
                        // EOF after the report is a normal departure.
                        if conn.closed && self.reports[*idx].is_some() {
                            self.done[*idx] = true;
                        }
                    }
                }
                Slot::Limbo => {}
                Slot::Listener => {
                    if r.readable {
                        while let Some(stream) = self.listener.accept()? {
                            self.limbo.push(Conn::new(stream));
                            moved = true;
                        }
                    }
                }
            }
        }
        self.adopt_identified();
        for (idx, msg) in inbound {
            moved = true;
            self.ingest(idx, msg);
        }
        Ok(moved)
    }

    /// Claims limbo connections whose Hello arrived.
    fn adopt_identified(&mut self) {
        let mut k = 0;
        while k < self.limbo.len() {
            let msgs = self.limbo[k].recv();
            let mut hello_from: Option<u32> = None;
            let mut rest: Vec<NetMsg> = Vec::new();
            for m in msgs {
                match m {
                    NetMsg::Hello { node, run_id } => {
                        if run_id == self.cfg.run_id && node >= 1 && node as usize <= self.cfg.n {
                            hello_from = Some(node);
                        }
                    }
                    other => rest.push(other),
                }
            }
            if let Some(node) = hello_from {
                let conn = self.limbo.remove(k);
                let idx = NodeId(node).idx();
                self.conns[idx] = Some(conn);
                for m in rest {
                    self.ingest(idx, m);
                }
            } else {
                if self.limbo[k].closed {
                    self.limbo.remove(k);
                    continue;
                }
                k += 1;
            }
        }
    }

    /// Consumes one message from the node at `idx`.
    fn ingest(&mut self, idx: usize, msg: NetMsg) {
        match msg {
            NetMsg::Event { node, round, event } => {
                // Trust the connection's identity over the frame's claim.
                let _ = node;
                self.outputs[idx].push((round, event));
            }
            NetMsg::Report(report) => {
                self.reports[idx] = Some(report);
            }
            NetMsg::Bye { .. } => {
                self.done[idx] = true;
            }
            // Protocol traffic never reaches the collector.
            _ => {}
        }
    }
}

/// Convenience: bind and run in one call.
pub fn collect(cfg: CollectorConfig) -> io::Result<DaemonOutcome> {
    Collector::bind(cfg)?.run()
}
