//! Minimal hex encoding/decoding helpers.

/// Encodes bytes as lowercase hex.
///
/// # Examples
///
/// ```
/// assert_eq!(proauth_primitives::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string (even length, case-insensitive).
///
/// # Errors
///
/// Returns `None` on odd length or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks(2) {
        out.push(val(pair[0])? << 4 | val(pair[1])?);
    }
    Some(out)
}

fn val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = vec![0u8, 1, 127, 128, 255];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_none());
        assert!(decode("zz").is_none());
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(decode("DEADBEEF").unwrap(), decode("deadbeef").unwrap());
    }
}
