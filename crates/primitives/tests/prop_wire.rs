//! Property tests for the canonical wire encoding: roundtrips, strictness,
//! and injectivity of composite encodings.

use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, Reader, Writer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(Vec::<u8>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".{0,80}") {
        prop_assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn nested_vec_roundtrip(v in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..20), 0..10)) {
        prop_assert_eq!(Vec::<Vec<u8>>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn option_roundtrip(v in proptest::option::of(any::<u32>())) {
        prop_assert_eq!(Option::<u32>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn biguint_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..5)) {
        let v = BigUint::from_limbs(limbs);
        prop_assert_eq!(BigUint::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn trailing_byte_always_rejected(v in any::<u64>(), extra in any::<u8>()) {
        let mut bytes = v.to_bytes();
        bytes.push(extra);
        prop_assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_always_rejected(v in proptest::collection::vec(any::<u8>(), 1..100)) {
        let bytes = v.to_bytes();
        // Drop the last byte: must fail (either EOF or BadLength).
        prop_assert!(Vec::<u8>::from_bytes(&bytes[..bytes.len()-1]).is_err());
    }

    #[test]
    fn pair_encoding_injective(
        a1 in proptest::collection::vec(any::<u8>(), 0..20),
        b1 in proptest::collection::vec(any::<u8>(), 0..20),
        a2 in proptest::collection::vec(any::<u8>(), 0..20),
        b2 in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let enc = |a: &[u8], b: &[u8]| {
            let mut w = Writer::new();
            w.put_bytes(a);
            w.put_bytes(b);
            w.into_bytes()
        };
        if (a1.clone(), b1.clone()) != (a2.clone(), b2.clone()) {
            prop_assert_ne!(enc(&a1, &b1), enc(&a2, &b2));
        }
    }

    #[test]
    fn reader_remaining_decreases(v in proptest::collection::vec(any::<u8>(), 8..64)) {
        let mut r = Reader::new(&v);
        let before = r.remaining();
        let _ = r.get_u32().unwrap();
        prop_assert_eq!(r.remaining(), before - 4);
    }
}
