//! Long-horizon churn tests: mobile break-ins sweeping the whole network
//! over many time units, recovery denial by link cutting, and conformance
//! under sustained attack — the "repeated and transient" break-in story of
//! the paper's title.

use proauth_adversary::{Composed, CorruptMode, LimitObserver, LinkCutter, MobileBreakins};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn cfg(total_units: u64, seed: u64) -> SimConfig {
    let schedule = uls_schedule(NORMAL);
    let mut c = SimConfig::new(N, T, schedule);
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = schedule.unit_rounds * total_units;
    c.seed = seed;
    c
}

fn make_node(id: NodeId) -> UlsNode<HeartbeatApp> {
    let group = Group::new(GroupId::Toy64);
    UlsNode::new(UlsConfig::new(group, N, T), id, HeartbeatApp::default())
}

#[test]
fn every_node_gets_broken_eventually_and_the_network_survives() {
    // 1 wipe per unit, rotating: after 5 units every node has been broken
    // into at least once. The paper's point: the adversary may break into
    // ALL nodes over time, just not too many at once.
    let sched = uls_schedule(NORMAL);
    let units = 6u64;
    let inner = MobileBreakins::<HeartbeatApp>::rotating(
        N,
        1,
        units - 1,
        sched.unit_rounds,
        sched.refresh_rounds() + 2,
        4,
        CorruptMode::Wipe,
    );
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(units, 201), make_node, &mut adv);

    // Every node was visited.
    for id in NodeId::all(N) {
        assert!(
            result.stats.broken_rounds[id.idx()] > 0,
            "{id} was never broken"
        );
    }
    // Everyone is operational at the end.
    assert!(result.final_operational.iter().all(|&b| b));
    // The adversary stayed within limits throughout. (Note: a wiped node is
    // impaired for the rest of its unit and through the next refresh, so the
    // per-unit impairment can reach 2 — still ≤ t.)
    assert!(adv.max_impaired() <= T, "max impaired {}", adv.max_impaired());
    // Authenticated traffic flowed in the last unit.
    let last_unit_start = (units - 1) * sched.unit_rounds;
    let accepted_late = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(round, ev)| {
            *round > last_unit_start && matches!(ev, OutputEvent::Accepted { .. })
        })
        .count();
    assert!(accepted_late > 0);
}

#[test]
fn spy_breakins_expose_keys_but_never_break_authenticity() {
    // Read-only espionage on 2 nodes per unit: no state corruption, but key
    // exposure. The refresh makes the stolen material worthless.
    let sched = uls_schedule(NORMAL);
    let inner = MobileBreakins::<HeartbeatApp>::rotating(
        N,
        2,
        3,
        sched.unit_rounds,
        sched.refresh_rounds() + 2,
        2,
        CorruptMode::Spy,
    );
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(4, 202), make_node, &mut adv);
    // Spied-on nodes keep operating (their state was read, not modified) —
    // no alerts anywhere.
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
    assert!(result.final_operational.iter().all(|&b| b));
    let checker = IdealChecker::new(T);
    assert!(checker.check_no_forgery(&result.outputs, &[]).is_empty());
}

#[test]
fn garbled_share_is_detected_and_recovered_transparently() {
    let sched = uls_schedule(NORMAL);
    let inner = MobileBreakins::<HeartbeatApp>::rotating(
        N,
        1,
        2,
        sched.unit_rounds,
        sched.refresh_rounds() + 2,
        2,
        CorruptMode::GarbleShare(0xBAD),
    );
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(4, 203), make_node, &mut adv);
    // Self-consistency checks catch the garbage; recovery restores the
    // share; the network ends fully operational.
    assert!(result.final_operational.iter().all(|&b| b));
}

#[test]
fn recovery_denied_by_isolation_then_granted_when_attack_stops() {
    // Wipe node 2 in unit 0 AND isolate it through the unit-1 refresh: it
    // cannot recover (alert). When the cutter stops, the unit-2 refresh
    // rescues it.
    let sched = uls_schedule(NORMAL);
    let unit1 = sched.unit_rounds;
    let unit2 = 2 * sched.unit_rounds;
    let breakin = MobileBreakins::<HeartbeatApp>::new(
        vec![proauth_adversary::Visit {
            node: NodeId(2),
            break_at: 4,
            leave_at: 8,
        }],
        CorruptMode::Wipe,
    );
    let cutter = LinkCutter::isolate(NodeId(2), N).during(unit1, unit1 + sched.refresh_rounds());
    let mut adv = LimitObserver::new(Composed {
        first: breakin,
        second: cutter,
    });
    let result = run_ul(cfg(3, 204), make_node, &mut adv);

    // Unit 1: recovery denied → alert from node 2.
    assert!(
        result.alerted_in_unit(NodeId(2), 1, &sched),
        "isolated node alerts when it cannot re-certify"
    );
    // Unit 2: recovered and heard from again.
    let accepted_from_2_late = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(2).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, ev)| {
            *round > unit2 + sched.refresh_rounds()
                && matches!(ev, OutputEvent::Accepted { from, .. } if *from == NodeId(2))
        })
        .count();
    assert!(accepted_from_2_late > 0, "node 2 back after the attack ends");
    assert!(result.final_operational[NodeId(2).idx()]);
    // Throughout, the adversary impaired at most t nodes per unit.
    assert!(adv.max_impaired() <= T);
}

#[test]
fn isolation_without_breakin_costs_only_the_victim() {
    // Cut node 5 off for a whole unit, never break in anywhere: the other
    // four keep full service; node 5 alerts and rejoins afterwards.
    let sched = uls_schedule(NORMAL);
    let unit1 = sched.unit_rounds;
    let mut adv = LinkCutter::isolate(NodeId(5), N).during(unit1, 2 * unit1);
    let result = run_ul(cfg(3, 205), make_node, &mut adv);
    assert!(result.alerted_in_unit(NodeId(5), 1, &sched));
    assert!(result.final_operational.iter().all(|&b| b));
    // The other nodes exchanged heartbeats during the isolation unit.
    let accepted_mid = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(5).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, ev)| {
            *round > unit1 + sched.refresh_rounds()
                && *round < 2 * unit1
                && matches!(ev, OutputEvent::Accepted { from, .. } if *from != NodeId(5))
        })
        .count();
    assert!(accepted_mid > 0);
}

/// Crash-stop `target` at `crash_at` (volatile state lost) and restart it as
/// a blank instance at `restart_at`.
struct CrashRestart {
    target: NodeId,
    crash_at: u64,
    restart_at: u64,
}

impl proauth_sim::adversary::UlAdversary for CrashRestart {
    fn plan(&mut self, view: &proauth_sim::adversary::NetView<'_>) -> proauth_sim::adversary::BreakPlan {
        use proauth_sim::adversary::BreakPlan;
        if view.time.round == self.crash_at {
            BreakPlan::crash([self.target])
        } else if view.time.round == self.restart_at {
            BreakPlan::restart([self.target])
        } else {
            BreakPlan::none()
        }
    }
    fn deliver(
        &mut self,
        sent: &[proauth_sim::message::Envelope],
        _view: &proauth_sim::adversary::NetView<'_>,
    ) -> Vec<proauth_sim::message::Envelope> {
        sent.to_vec()
    }
}

#[test]
fn crash_during_refresh_recovers_share_without_corrupting_joint_key() {
    // Node 3 crash-stops in the middle of refresh Part II of unit 1 — mid
    // zero-sharing share update — and loses all volatile state, including
    // whatever partial update it held. It restarts a few rounds later as a
    // blank instance and takes the §4.2 recovery path at the next refresh.
    let sched = uls_schedule(NORMAL);
    let part2_mid = sched.unit_rounds + sched.part1_rounds + sched.part2_rounds / 2;
    let mut adv = LimitObserver::new(CrashRestart {
        target: NodeId(3),
        crash_at: part2_mid,
        restart_at: part2_mid + 4,
    });
    let result = run_ul(cfg(3, 206), make_node, &mut adv);
    assert_eq!(result.stats.crashes, 1);
    assert_eq!(result.stats.restarts, 1);
    assert!(result.stats.crashed_rounds[NodeId(3).idx()] > 0);
    // One crash victim stays within the (s,t) budget throughout.
    assert!(adv.max_impaired() <= T, "max impaired {}", adv.max_impaired());

    // Losing one mid-update share must not corrupt the joint key: the other
    // nodes finish the refresh and authenticated traffic flows among them
    // for the rest of unit 1...
    let unit2 = 2 * sched.unit_rounds;
    let accepted_among_others = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(3).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, ev)| {
            *round > part2_mid
                && *round < unit2
                && matches!(ev, OutputEvent::Accepted { from, .. } if *from != NodeId(3))
        })
        .count();
    assert!(accepted_among_others > 0, "survivors keep serving in unit 1");
    // ...and no forgery ever becomes possible.
    assert!(IdealChecker::new(T)
        .check_no_forgery(&result.outputs, &[])
        .is_empty());

    // The restarted node recovers its share at the unit-2 refresh: it ends
    // operational and its messages are accepted again afterwards.
    assert!(result.final_operational.iter().all(|&b| b));
    let recovered_at = unit2 + sched.refresh_rounds();
    let accepted_from_3_late = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != NodeId(3).idx())
        .flat_map(|(_, l)| l.iter())
        .filter(|(round, ev)| {
            *round > recovered_at
                && matches!(ev, OutputEvent::Accepted { from, .. } if *from == NodeId(3))
        })
        .count();
    assert!(accepted_from_3_late > 0, "node 3 re-certified and heard from");
}
