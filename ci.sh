#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# The round engine must be invisible in results: the full suite runs once
# with a single-worker pool and once with four workers (PROAUTH_THREADS
# defaults SimConfig::parallel to true), and must pass identically. This
# matrix includes the telemetry determinism gates — `golden_trace` (JSONL
# flight-recorder trace byte-identical across engines, n = 13 under an
# active adversary) and the telemetry-enabled `prop_engine_determinism`
# variant — in both legs.
PROAUTH_THREADS=1 cargo test -q
PROAUTH_THREADS=4 cargo test -q

cargo clippy --workspace --all-targets -- -D warnings

# Envelope-budget regression at n = 32 (release: the legacy Θ(n³) ablation
# inside is minutes-long in debug builds): evidence bundling must keep
# refresh traffic O(n²·fanout) and beat the pre-bundle encoding ≥10×.
cargo test -q -p proauth-core --release --test envelope_budget -- --ignored

# One full refresh unit at n = 64 (was infeasible pre-bundling); records
# throughput and peak RSS.
PROAUTH_E11=n64 cargo bench -p proauth-bench --bench e11_system_throughput
