//! Montgomery-form modular exponentiation.
//!
//! The protocol stack's cost is dominated by `modpow` over 256–1024-bit
//! odd moduli (group exponentiation and scalar inversion). The generic
//! square-and-multiply in [`crate::bigint`] performs a full Knuth division
//! per step; this module replaces the reduction with Montgomery REDC,
//! cutting each step to two schoolbook multiplications plus carries.
//!
//! [`BigUint::modpow`] dispatches here automatically for odd multi-limb
//! moduli; the bench `e9_crypto` includes the ablation
//! (`modpow_generic` vs `modpow_montgomery`).
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::bigint::BigUint;
//! use proauth_primitives::montgomery::Montgomery;
//!
//! let m = BigUint::from_hex("ffffffffffffffc5").unwrap(); // odd
//! let ctx = Montgomery::new(&m).unwrap();
//! let base = BigUint::from_u64(7);
//! let exp = BigUint::from_u64(65537);
//! assert_eq!(ctx.modpow(&base, &exp), base.modpow_generic(&exp, &m));
//! ```

use crate::bigint::BigUint;

/// Precomputed context for Montgomery arithmetic modulo an odd `m`.
#[derive(Debug, Clone)]
pub struct Montgomery {
    m: BigUint,
    /// Limb count of `m` (the Montgomery radix is `R = 2^(64·n)`).
    n: usize,
    /// `-m^{-1} mod 2^64`.
    m_inv_neg: u64,
    /// `R² mod m`, used to enter the Montgomery domain.
    r2: BigUint,
}

impl Montgomery {
    /// Builds a context for the odd modulus `m`.
    ///
    /// Returns `None` if `m` is even or `≤ 1` (Montgomery reduction requires
    /// `gcd(m, 2^64) = 1`).
    pub fn new(m: &BigUint) -> Option<Self> {
        if m.is_even() || m.is_zero() || m.is_one() {
            return None;
        }
        let n = m.limbs().len();
        // Newton–Hensel: invert m mod 2^64 (5 iterations double precision
        // each time: 2^4 → 2^64).
        let m0 = m.limbs()[0];
        let mut inv: u64 = m0; // correct mod 2^4 for odd m0 (actually mod 8)
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let m_inv_neg = inv.wrapping_neg();
        // R² mod m via shifting (2n limbs = 128·n bits doubling).
        let r2 = BigUint::one().shl(128 * n).rem(m);
        Some(Montgomery {
            m: m.clone(),
            n,
            m_inv_neg,
            r2,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// Montgomery reduction: given `t < m·R`, returns `t·R^{-1} mod m`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let n = self.n;
        let m_limbs = self.m.limbs();
        let mut work: Vec<u64> = vec![0; 2 * n + 1];
        let t_limbs = t.limbs();
        work[..t_limbs.len()].copy_from_slice(t_limbs);
        for i in 0..n {
            let u = work[i].wrapping_mul(self.m_inv_neg);
            // work += u * m << (64*i)
            let mut carry: u128 = 0;
            for (j, &mj) in m_limbs.iter().enumerate() {
                let cur = work[i + j] as u128 + (u as u128) * (mj as u128) + carry;
                work[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + n;
            while carry != 0 {
                let cur = work[k] as u128 + carry;
                work[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BigUint::from_limbs(work[n..].to_vec());
        if out >= self.m {
            out = out.sub(&self.m);
        }
        out
    }

    /// Montgomery product: `a·b·R^{-1} mod m` for `a, b < m`.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&a.mul(b))
    }

    /// Converts into the Montgomery domain: `a·R mod m`.
    fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(&a.rem(&self.m), &self.r2)
    }

    /// `base^exp mod m` using left-to-right square-and-multiply in the
    /// Montgomery domain.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bits();
        if bits == 0 {
            return BigUint::one().rem(&self.m);
        }
        let base_m = self.to_mont(base);
        let one_m = self.to_mont(&BigUint::one());
        let mut acc = one_m;
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // Leave the Montgomery domain: multiply by 1 (i.e. REDC once).
        self.redc(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&b(10)).is_none());
        assert!(Montgomery::new(&b(0)).is_none());
        assert!(Montgomery::new(&b(1)).is_none());
        assert!(Montgomery::new(&b(9)).is_some());
    }

    #[test]
    fn matches_generic_small() {
        let m = b(1_000_000_007);
        let ctx = Montgomery::new(&m).unwrap();
        for (base, exp) in [(0u64, 5u64), (1, 0), (2, 10), (12345, 67890), (999, 1)] {
            assert_eq!(
                ctx.modpow(&b(base), &b(exp)),
                b(base).modpow_generic(&b(exp), &m),
                "{base}^{exp}"
            );
        }
    }

    #[test]
    fn matches_generic_multi_limb() {
        let mut rng = StdRng::seed_from_u64(42);
        for limbs in [2usize, 4, 8] {
            let bound = BigUint::one().shl(64 * limbs);
            let mut m = BigUint::random_below(&mut rng, &bound);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = Montgomery::new(&m).unwrap();
            for _ in 0..10 {
                let base = BigUint::random_below(&mut rng, &bound);
                let exp = BigUint::random_below(&mut rng, &BigUint::one().shl(96));
                assert_eq!(
                    ctx.modpow(&base, &exp),
                    base.modpow_generic(&exp, &m),
                    "limbs {limbs}"
                );
            }
        }
    }

    #[test]
    fn base_larger_than_modulus_reduced() {
        let m = b(101);
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(
            ctx.modpow(&b(10_000), &b(3)),
            b(10_000).modpow_generic(&b(3), &m)
        );
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // Known 128-bit prime: 2^127 − 1.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&p).unwrap();
        let a = b(123_456_789);
        let exp = p.sub(&BigUint::one());
        assert!(ctx.modpow(&a, &exp).is_one());
    }
}
