//! Slice randomisation (mirror of `rand::seq::SliceRandom`).

use crate::{Rng, RngCore};

/// Extension methods on slices (mirror of upstream `SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, upstream draw order).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

/// Uniform index below `ubound`, using the same type-width split as
/// upstream `gen_index` (u32 sampling for small bounds).
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
