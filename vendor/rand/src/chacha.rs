//! ChaCha12 block generator, word-compatible with `rand_chacha`'s
//! `ChaCha12Rng` as used by `rand::rngs::StdRng` in rand 0.8.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha stream cipher core with 12 rounds and a 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12 {
    /// Builds the generator from a 32-byte key, counter 0, stream 0.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha12 {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// Next 32-bit output word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next 64-bit output (two consecutive words, little-endian order —
    /// the same pairing `rand_core::block::BlockRng` uses).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest`, consuming whole output words (matching `BlockRng`).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ChaCha block function itself is round-count-parameterised; check
    /// the underlying 20-round variant against RFC 8439 §2.3.2 to validate
    /// the quarter-round wiring, then trust the 12-round reduction.
    #[test]
    fn rfc8439_block_function_vector() {
        let mut state: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, 0x03020100, 0x07060504, 0x0b0a0908,
            0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, 0x00000001, 0x09000000,
            0x4a000000, 0x00000000,
        ];
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        assert_eq!(state[0], 0xe4e7f110);
        assert_eq!(state[15], 0x4e3c50a2);
    }

    #[test]
    fn deterministic_and_word_serialised() {
        let mut a = ChaCha12::from_seed([7u8; 32]);
        let mut b = ChaCha12::from_seed([7u8; 32]);
        let x = a.next_u64();
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(x, lo | (hi << 32));
    }
}
