//! Case execution (mirror of `proptest::test_runner`, no shrinking).

use crate::strategy::Reason;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only `cases` is honored by this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case is skipped and does not count toward `cases`.
    Reject(Reason),
    /// The property failed; the whole test fails.
    Fail(Reason),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<Reason>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<Reason>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Attaches the generated input values to a failure message.
    pub fn with_values(self, values: String) -> Self {
        match self {
            TestCaseError::Fail(r) => {
                TestCaseError::Fail(format!("{r}\n  with inputs: {values}").into())
            }
            reject => reject,
        }
    }
}

/// The result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `f` until `config.cases` cases pass; panics on the first failure.
///
/// Each case gets a fresh `StdRng` seeded from the test name and case
/// number, so failures are reproducible by rerunning the same test binary.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = (config.cases as u64) * 10 + 100;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} (seed {seed:#x}):\n  {reason}"
                );
            }
        }
        attempt += 1;
    }
}
