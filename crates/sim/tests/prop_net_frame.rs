//! Property tests for the daemon-mode frame codec: round-trips under
//! arbitrary chunking, and robustness against truncated, oversized, and
//! garbage input — the decoder must reject or wait, never panic, and must
//! resume correctly after any partial delivery.

use proauth_primitives::wire::{Decode, Encode};
use proauth_sim::message::NodeId;
use proauth_sim::net::{encode_frame, FrameDecoder, FrameError, NetMsg, MAX_FRAME};
use proptest::prelude::*;

/// Drains every complete frame currently buffered.
fn drain(dec: &mut FrameDecoder) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame()? {
        out.push(f);
    }
    Ok(out)
}

/// Splits `stream` into chunks at the given cut points (fractions of the
/// stream length), so chunk boundaries land anywhere relative to frame
/// boundaries.
fn chunked(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| stream[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    /// Any sequence of payloads, fed through any chunking, comes out intact
    /// and in order.
    #[test]
    fn roundtrip_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 0..12),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            encode_frame(&mut stream, p);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            dec.push(&chunk);
            got.extend(drain(&mut dec).unwrap());
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated stream is never an error: the decoder yields exactly the
    /// complete frames and waits for the rest.
    #[test]
    fn truncation_yields_prefix_and_waits(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100), 1..8),
        cut_seed in any::<usize>(),
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            encode_frame(&mut stream, p);
            boundaries.push(stream.len());
        }
        let cut = cut_seed % stream.len(); // strictly truncated
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let got = drain(&mut dec).unwrap();
        prop_assert_eq!(got.len(), complete, "exactly the fully-delivered frames");
        prop_assert_eq!(&got[..], &payloads[..complete]);
        // Feeding the remainder completes the run with nothing lost.
        dec.push(&stream[cut..]);
        let rest = drain(&mut dec).unwrap();
        prop_assert_eq!(&rest[..], &payloads[complete..]);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// An oversized length prefix is rejected as an error — after any number
    /// of valid frames, and regardless of what garbage follows it.
    #[test]
    fn oversized_always_rejected(
        prefix in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..50), 0..4),
        announced in (MAX_FRAME as u64 + 1..=u32::MAX as u64),
        tail in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let mut stream = Vec::new();
        for p in &prefix {
            encode_frame(&mut stream, p);
        }
        stream.extend_from_slice(&(announced as u32).to_be_bytes());
        stream.extend_from_slice(&tail);
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        // The valid prefix still decodes...
        for p in &prefix {
            let frame = dec.next_frame().unwrap();
            prop_assert_eq!(frame.as_deref(), Some(&p[..]));
        }
        // ...then the poisoned header errors, and keeps erroring (the stream
        // cannot be resynchronized).
        prop_assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversized { announced: announced as usize })
        );
        prop_assert!(dec.next_frame().is_err());
    }

    /// Arbitrary garbage never panics the codec stack: framing either
    /// yields "frames" (which then face the `NetMsg` decoder) or errors.
    /// `NetMsg::decode` on those frames must reject or decode, never panic.
    #[test]
    fn garbage_never_panics(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600), 0..8),
    ) {
        let mut dec = FrameDecoder::new();
        'outer: for chunk in &chunks {
            dec.push(chunk);
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => {
                        // Whatever framing produced, message decode must not
                        // panic; Ok and Err are both acceptable.
                        let _ = NetMsg::from_bytes(&frame);
                    }
                    Ok(None) => break,
                    Err(_) => break 'outer, // poisoned: connection would close
                }
            }
        }
    }

    /// Reconnect mid-frame: a connection dies while a frame is partially
    /// delivered (the daemon kill/RST case). The torn decoder never invents
    /// a frame from its dangling tail, and the fresh decoder on the new
    /// connection — to which the sender re-transmits from a frame boundary —
    /// yields exactly the re-sent frames. No state bleeds across the
    /// re-handshake.
    #[test]
    fn reconnect_mid_frame_never_leaks_across_streams(
        delivered in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 0..6),
        torn in proptest::collection::vec(any::<u8>(), 1..120),
        resent in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..6),
        cut_seed in any::<usize>(),
    ) {
        // Old connection: `delivered` frames arrive whole, then the stream
        // dies somewhere strictly inside the `torn` frame's encoding.
        let mut old_stream = Vec::new();
        for p in &delivered {
            encode_frame(&mut old_stream, p);
        }
        let boundary = old_stream.len();
        encode_frame(&mut old_stream, &torn);
        let cut = boundary + cut_seed % (old_stream.len() - boundary);
        let mut old_dec = FrameDecoder::new();
        old_dec.push(&old_stream[..cut]);
        let got = drain(&mut old_dec).unwrap();
        prop_assert_eq!(&got[..], &delivered[..], "whole frames only");
        // The dangling tail never materializes as a frame, no matter how
        // often the torn decoder is polled.
        prop_assert_eq!(old_dec.next_frame().unwrap(), None);
        prop_assert_eq!(old_dec.next_frame().unwrap(), None);

        // New connection, fresh decoder: the sender re-transmits from the
        // frame boundary (the torn frame first, then new traffic).
        let mut new_stream = Vec::new();
        encode_frame(&mut new_stream, &torn);
        for p in &resent {
            encode_frame(&mut new_stream, p);
        }
        let mut new_dec = FrameDecoder::new();
        new_dec.push(&new_stream);
        let mut want: Vec<Vec<u8>> = vec![torn.clone()];
        want.extend(resent.iter().cloned());
        prop_assert_eq!(drain(&mut new_dec).unwrap(), want);
        prop_assert_eq!(new_dec.pending(), 0);
    }

    /// The re-handshake byte (`Hello` first on every fresh stream) survives
    /// arriving glued to, or split across, the frames that follow it — the
    /// exact arrival patterns a rejoining node's burst produces.
    #[test]
    fn rejoin_burst_decodes_under_any_chunking(
        node in 1u32..200,
        run_id in any::<u64>(),
        watermark in any::<u64>(),
        rounds in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..10),
    ) {
        let mut msgs = vec![NetMsg::Hello { node, run_id }];
        msgs.push(NetMsg::Rejoin { node, run_id, watermark });
        for (round, seq) in &rounds {
            msgs.push(NetMsg::Round {
                round: *round,
                seq: *seq,
                from: NodeId(node),
                to: NodeId(node % 7 + 1),
                payload: vec![0xAB; (*seq % 64) as usize],
            });
        }
        let mut stream = Vec::new();
        for m in &msgs {
            encode_frame(&mut stream, &m.to_bytes());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            dec.push(&chunk);
            for frame in drain(&mut dec).unwrap() {
                got.push(NetMsg::from_bytes(&frame).unwrap());
            }
        }
        prop_assert_eq!(got, msgs);
    }

    /// Message-layer round-trip through the framing layer: a `NetMsg` framed
    /// and unframed decodes to itself (spot-checking the variants daemon
    /// traffic actually uses).
    #[test]
    fn netmsg_roundtrip_through_frames(
        node in 1u32..200,
        run_id in any::<u64>(),
        round in any::<u64>(),
        seq in any::<u32>(),
        to in 1u32..200,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let msgs = [
            NetMsg::Hello { node, run_id },
            NetMsg::Round {
                round,
                seq,
                from: NodeId(node),
                to: NodeId(to),
                payload: payload.clone(),
            },
            NetMsg::RoundMark { round, from: NodeId(node) },
            NetMsg::Bye { node },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            encode_frame(&mut stream, &m.to_bytes());
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        for want in &msgs {
            let frame = dec.next_frame().unwrap().expect("frame present");
            prop_assert_eq!(&NetMsg::from_bytes(&frame).unwrap(), want);
        }
    }
}
