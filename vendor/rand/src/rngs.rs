//! RNG implementations: [`StdRng`] (ChaCha12, as upstream rand 0.8) and
//! [`ThreadRng`] (OS-entropy-seeded `StdRng`).

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha12, identical stream to `rand 0.8`'s `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng(ChaCha12);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaCha12::from_seed(seed))
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// An OS-entropy-seeded RNG, handed out by [`crate::thread_rng`].
///
/// Unlike upstream this is an owned generator rather than a thread-local
/// handle; each `thread_rng()` call seeds a fresh one.
#[derive(Debug, Clone)]
pub struct ThreadRng(ChaCha12);

impl ThreadRng {
    pub(crate) fn new() -> Self {
        let mut seed = [0u8; 32];
        fill_os_entropy(&mut seed);
        ThreadRng(ChaCha12::from_seed(seed))
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Fills `dest` with OS entropy (`/dev/urandom`), falling back to clock and
/// address-space jitter if unavailable.
pub(crate) fn fill_os_entropy(dest: &mut [u8]) {
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        if f.read_exact(dest).is_ok() {
            return;
        }
    }
    // Fallback: mix the clock and an ASLR-influenced address through the
    // seed expander. Not cryptographic; only reached on exotic hosts.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let addr = dest.as_ptr() as u64;
    let mut mixer = StdRng::seed_from_u64(now ^ addr.rotate_left(32));
    mixer.fill_bytes(dest);
}
