//! # proauth-adversary
//!
//! Adversary strategies against the `proauth` protocol stack — the attack
//! catalogue of §1.1/§1.3/§5.1 of Canetti–Halevi–Herzberg plus the
//! instrumentation that checks an attack stayed `(s,t)`-limited
//! (Definition 7):
//!
//! * [`strategies`] — link-level attacks: cutting, dropping, injecting,
//!   replaying, composition;
//! * [`breakins`] — mobile break-in schedules with memory-corruption modes;
//! * [`impersonation`] — the key-theft and certification-hijack attacks the
//!   awareness property exists to expose;
//! * [`limits`] — per-unit impairment accounting;
//! * [`sweep`] — the degradation sweep driver: ramp chaos intensity across
//!   the `(s,t)` boundary and report graceful degradation.

pub mod breakins;
pub mod impersonation;
pub mod limits;
pub mod strategies;
pub mod sweep;

pub use breakins::{CorruptMode, MobileBreakins, Visit};
pub use impersonation::{forge_app_message, Hijacker, KeyThief};
pub use limits::LimitObserver;
pub use sweep::{run_sweep, Intensity, SweepConfig, SweepPoint};
pub use strategies::{
    Composed, Delayer, Duplicator, Injector, LinkCutter, RandomDropper, Reorderer, Replayer,
};
