//! The ideal signature process of §3.1 as a conformance oracle.
//!
//! In the ideal process an incorruptible trusted party keeps a database `M`
//! of signed messages: `(m, u)` enters `M` only when `t+1` signers request
//! it in the same unit, and verification is a database lookup. Definition 12
//! declares a real PDS secure iff its global output is indistinguishable
//! from an ideal one.
//!
//! Rather than re-proving indistinguishability, the experiments check the
//! *hard invariants* every ideal output satisfies — any violation in a real
//! run is a concrete counterexample to Theorem 14:
//!
//! * **no forgery**: nothing verifies unless `t+1` distinct signers were
//!   asked to sign it in that unit (counting broken nodes as adversarially
//!   askable);
//! * **threshold liveness**: if ≥ `t+1` nodes that stayed honest and
//!   operational were asked, a signature appears.

use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent, OutputLog};
use std::collections::{BTreeMap, BTreeSet};

/// A conformance violation: the real execution did something no ideal-model
/// execution can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `(msg, unit)` was reported signed/verified with fewer than `t+1`
    /// distinct sign requests in that unit.
    SignedWithoutQuorum {
        /// The message.
        msg: Vec<u8>,
        /// The unit it claims to be signed in.
        unit: u64,
        /// How many distinct nodes were actually asked.
        requesters: usize,
    },
    /// ≥ `t+1` consistently-honest nodes requested `(msg, unit)` but no node
    /// ever reported it signed.
    QuorumWithoutSignature {
        /// The message.
        msg: Vec<u8>,
        /// The unit of the requests.
        unit: u64,
    },
}

/// The ideal-process invariant checker.
#[derive(Debug, Clone)]
pub struct IdealChecker {
    /// The signing threshold `t`.
    pub t: usize,
}

impl IdealChecker {
    /// Creates a checker for threshold `t`.
    pub fn new(t: usize) -> Self {
        IdealChecker { t }
    }

    /// Collects, per `(msg, unit)`, the distinct nodes that logged a
    /// `SignRequested` in that unit.
    fn requests(&self, outputs: &[OutputLog]) -> BTreeMap<(Vec<u8>, u64), BTreeSet<NodeId>> {
        let mut map: BTreeMap<(Vec<u8>, u64), BTreeSet<NodeId>> = BTreeMap::new();
        for (idx, log) in outputs.iter().enumerate() {
            for (_, ev) in log {
                if let OutputEvent::SignRequested { msg, unit } = ev {
                    map.entry((msg.clone(), *unit))
                        .or_default()
                        .insert(NodeId::from_idx(idx));
                }
            }
        }
        map
    }

    /// Collects every `(msg, unit)` any node reported as signed, plus any the
    /// external verifier accepted.
    fn signed(
        &self,
        outputs: &[OutputLog],
        externally_verified: &[(Vec<u8>, u64)],
    ) -> BTreeSet<(Vec<u8>, u64)> {
        let mut set: BTreeSet<(Vec<u8>, u64)> = externally_verified.iter().cloned().collect();
        for log in outputs {
            for (_, ev) in log {
                if let OutputEvent::Signed { msg, unit } = ev {
                    set.insert((msg.clone(), *unit));
                }
            }
        }
        set
    }

    /// **No-forgery check**: every signed/verified `(msg, unit)` had a
    /// quorum of sign requests. `externally_verified` lists message/unit
    /// pairs whose signatures the (unbreakable) verifier accepted.
    pub fn check_no_forgery(
        &self,
        outputs: &[OutputLog],
        externally_verified: &[(Vec<u8>, u64)],
    ) -> Vec<Violation> {
        let requests = self.requests(outputs);
        self.signed(outputs, externally_verified)
            .into_iter()
            .filter_map(|(msg, unit)| {
                let requesters = requests
                    .get(&(msg.clone(), unit))
                    .map(BTreeSet::len)
                    .unwrap_or(0);
                if requesters < self.t + 1 {
                    Some(Violation::SignedWithoutQuorum {
                        msg,
                        unit,
                        requesters,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// **Liveness check**: for each `(msg, unit)` requested by ≥ `t+1` nodes
    /// in `reliable_nodes` (nodes the caller knows stayed honest and
    /// connected), a signature must have appeared somewhere.
    pub fn check_liveness(
        &self,
        outputs: &[OutputLog],
        reliable_nodes: &[NodeId],
        externally_verified: &[(Vec<u8>, u64)],
    ) -> Vec<Violation> {
        let requests = self.requests(outputs);
        let signed = self.signed(outputs, externally_verified);
        let reliable: BTreeSet<NodeId> = reliable_nodes.iter().copied().collect();
        requests
            .into_iter()
            .filter_map(|((msg, unit), who)| {
                let reliable_requesters = who.intersection(&reliable).count();
                if reliable_requesters > self.t && !signed.contains(&(msg.clone(), unit)) {
                    Some(Violation::QuorumWithoutSignature { msg, unit })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Convenience: both checks at once.
    pub fn check(
        &self,
        outputs: &[OutputLog],
        reliable_nodes: &[NodeId],
        externally_verified: &[(Vec<u8>, u64)],
        _schedule: &Schedule,
    ) -> Vec<Violation> {
        let mut v = self.check_no_forgery(outputs, externally_verified);
        v.extend(self.check_liveness(outputs, reliable_nodes, externally_verified));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(events: Vec<OutputEvent>) -> OutputLog {
        events.into_iter().map(|e| (0, e)).collect()
    }

    #[test]
    fn quorum_signature_accepted() {
        let checker = IdealChecker::new(1);
        let outputs = vec![
            log_with(vec![
                OutputEvent::SignRequested {
                    msg: b"m".to_vec(),
                    unit: 1,
                },
                OutputEvent::Signed {
                    msg: b"m".to_vec(),
                    unit: 1,
                },
            ]),
            log_with(vec![OutputEvent::SignRequested {
                msg: b"m".to_vec(),
                unit: 1,
            }]),
        ];
        assert!(checker.check_no_forgery(&outputs, &[]).is_empty());
    }

    #[test]
    fn forgery_detected() {
        let checker = IdealChecker::new(1);
        // Only one requester but the verifier accepted it.
        let outputs = vec![log_with(vec![OutputEvent::SignRequested {
            msg: b"m".to_vec(),
            unit: 1,
        }])];
        let violations = checker.check_no_forgery(&outputs, &[(b"m".to_vec(), 1)]);
        assert_eq!(
            violations,
            vec![Violation::SignedWithoutQuorum {
                msg: b"m".to_vec(),
                unit: 1,
                requesters: 1,
            }]
        );
    }

    #[test]
    fn unit_mismatch_is_forgery() {
        // Requests in unit 1 do not justify a signature bound to unit 2.
        let checker = IdealChecker::new(0);
        let outputs = vec![log_with(vec![OutputEvent::SignRequested {
            msg: b"m".to_vec(),
            unit: 1,
        }])];
        let violations = checker.check_no_forgery(&outputs, &[(b"m".to_vec(), 2)]);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn liveness_violation_detected() {
        let checker = IdealChecker::new(1);
        let outputs = vec![
            log_with(vec![OutputEvent::SignRequested {
                msg: b"m".to_vec(),
                unit: 1,
            }]),
            log_with(vec![OutputEvent::SignRequested {
                msg: b"m".to_vec(),
                unit: 1,
            }]),
        ];
        let v = checker.check_liveness(&outputs, &[NodeId(1), NodeId(2)], &[]);
        assert_eq!(
            v,
            vec![Violation::QuorumWithoutSignature {
                msg: b"m".to_vec(),
                unit: 1
            }]
        );
        // With an unreliable requester, no liveness obligation.
        let v = checker.check_liveness(&outputs, &[NodeId(1)], &[]);
        assert!(v.is_empty());
    }
}
