//! Span-style phase timing keyed to the clock's time-unit / refreshment
//! schedule (Fig. 1 of the paper).
//!
//! The engine calls [`PhaseTimer::on_round`] once per round with the
//! schedule-derived phase label; the timer emits `phase_start` /
//! `phase_end` events at transitions (a new label *or* a new unit opens a
//! new span) and records each span's wall time into a per-phase histogram.
//! Round indices in the events are deterministic; wall durations ride in
//! `wall_ns` fields and histograms only.

use crate::Telemetry;
use std::time::Instant;

/// Phase labels the engine derives from `clock::Phase`.
pub const PHASE_NORMAL: &str = "normal";
/// Refresh Part I (local key certification with old keys).
pub const PHASE_REFRESH1: &str = "refresh1";
/// Refresh Part II (PDS share refresh with new keys).
pub const PHASE_REFRESH2: &str = "refresh2";

/// Maps a phase label to its static histogram name.
fn hist_name(label: &str) -> &'static str {
    match label {
        PHASE_REFRESH1 => "phase/refresh1_ns",
        PHASE_REFRESH2 => "phase/refresh2_ns",
        _ => "phase/normal_ns",
    }
}

#[derive(Debug)]
struct Span {
    label: &'static str,
    unit: u64,
    start_round: u64,
    start: Instant,
}

/// Tracks the current schedule phase as a span over physical rounds.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    current: Option<Span>,
}

impl PhaseTimer {
    /// A timer with no open span.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Advances the timer to `round`, opening/closing spans on transitions.
    pub fn on_round(&mut self, tele: &Telemetry, round: u64, unit: u64, label: &'static str) {
        if !tele.is_on() {
            return;
        }
        let same = self
            .current
            .as_ref()
            .is_some_and(|s| s.label == label && s.unit == unit);
        if same {
            return;
        }
        self.close(tele, round);
        tele.emit_event("phase_start", |ev| {
            ev.u64("round", round).u64("unit", unit).str("phase", label);
        });
        self.current = Some(Span {
            label,
            unit,
            start_round: round,
            start: Instant::now(),
        });
    }

    /// Closes any open span at `end_round` (exclusive), e.g. at run end.
    pub fn finish(&mut self, tele: &Telemetry, end_round: u64) {
        self.close(tele, end_round);
    }

    fn close(&mut self, tele: &Telemetry, end_round: u64) {
        let Some(span) = self.current.take() else {
            return;
        };
        let wall_ns = span.start.elapsed().as_nanos() as u64;
        tele.observe_ns(hist_name(span.label), wall_ns);
        tele.emit_event("phase_end", |ev| {
            ev.u64("round", end_round)
                .u64("unit", span.unit)
                .str("phase", span.label)
                .u64("rounds", end_round.saturating_sub(span.start_round))
                .u64("wall_ns", wall_ns);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::strip_wall_fields;

    #[test]
    fn spans_open_and_close_on_transitions() {
        let (tele, buf) = Telemetry::with_memory_sink();
        let mut timer = PhaseTimer::new();
        timer.on_round(&tele, 0, 0, PHASE_NORMAL);
        timer.on_round(&tele, 1, 0, PHASE_NORMAL); // same span
        timer.on_round(&tele, 2, 1, PHASE_REFRESH1); // transition
        timer.finish(&tele, 4);
        drop(tele);
        let text = strip_wall_fields(&crate::sink::memory_contents(&buf));
        assert_eq!(
            text,
            "{\"ev\":\"phase_start\",\"round\":0,\"unit\":0,\"phase\":\"normal\"}\n\
             {\"ev\":\"phase_end\",\"round\":2,\"unit\":0,\"phase\":\"normal\",\"rounds\":2}\n\
             {\"ev\":\"phase_start\",\"round\":2,\"unit\":1,\"phase\":\"refresh1\"}\n\
             {\"ev\":\"phase_end\",\"round\":4,\"unit\":1,\"phase\":\"refresh1\",\"rounds\":2}\n"
        );
    }

    #[test]
    fn disabled_timer_is_inert() {
        let tele = Telemetry::off();
        let mut timer = PhaseTimer::new();
        timer.on_round(&tele, 0, 0, PHASE_NORMAL);
        timer.finish(&tele, 1);
    }
}
